#ifndef BIGDAWG_CORE_PLACEMENT_H_
#define BIGDAWG_CORE_PLACEMENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace bigdawg::core {

/// \brief Hysteresis tuning for the adaptive-placement decision loop.
///
/// Every knob exists to stop the controller from thrashing. A migration
/// is proposed only after `min_samples` timings on BOTH the current home
/// and the challenger engine, only when the challenger's p95 beats the
/// home's by the `gap_ratio` margin, and at most once per `cooldown_ms`
/// per object. Every applied migration opens a revert watch: if the
/// post-migration p95 (over `revert_min_samples` fresh client timings
/// inside `revert_window_ms`) regresses past `revert_ratio` x the
/// pre-migration p95, the controller proposes moving the object back and
/// blacklists it from further decisions for `blacklist_ms`.
struct PlacementPolicy {
  /// Timings required on both sides of a comparison before it counts.
  int64_t min_samples = 6;
  /// Challenger p95 must be below gap_ratio * home p95 to win.
  double gap_ratio = 0.6;
  /// Minimum spacing between decisions for one object.
  double cooldown_ms = 500;
  /// How long after a migration fresh regressions can still revert it.
  double revert_window_ms = 5000;
  /// Post-migration p95 above revert_ratio * pre-migration p95 reverts.
  double revert_ratio = 1.3;
  /// Client timings on the new home needed before the revert check runs.
  int64_t revert_min_samples = 4;
  /// Decision freeze applied to an object after a revert (or failed
  /// action) — much longer than the cooldown, so a misjudged object
  /// cannot oscillate.
  double blacklist_ms = 10000;
  /// When > 0: an object with no better whole-engine home, at least this
  /// many client timings, and a home p95 >= shard_p95_ms is proposed for
  /// sharding across `shard_count` instances instead. 0 disables the
  /// shard action.
  int64_t shard_min_accesses = 0;
  double shard_p95_ms = 0;
  int shard_count = 4;
  /// Record decisions (history, counters, cooldowns) without asking the
  /// executor to apply them — observe mode.
  bool dry_run = false;
  /// Bounded reservoir capacity per (object, engine) score cell.
  size_t window_capacity = 128;
  /// At most this many objects are tracked; timings for further objects
  /// are dropped (placement interest follows the hot set).
  size_t max_objects = 64;
  /// Bounded length of the decision-history ring.
  size_t history_capacity = 64;
};

enum class PlacementAction : int { kMigrate, kRevert, kShard };

const char* PlacementActionName(PlacementAction action);

/// \brief One decision the controller produced, with the evidence that
/// drove it. `applied`/`status` are filled by OnActionResult once the
/// executor has tried (or, in dry-run, declined) to act.
struct PlacementDecision {
  int64_t seq = 0;
  PlacementAction action = PlacementAction::kMigrate;
  std::string object;
  std::string from_engine;
  std::string to_engine;
  /// p95 of the side the decision moves away from / regresses against.
  double current_p95_ms = 0;
  /// p95 of the winning side (for reverts: the pre-migration baseline).
  double candidate_p95_ms = 0;
  int64_t current_samples = 0;
  int64_t candidate_samples = 0;
  std::string reason;
  /// Milliseconds since controller construction, on the injected clock.
  double decided_at_ms = 0;
  bool applied = false;
  std::string status = "pending";
};

/// \brief One row of the (object, engine) scoreboard.
struct PlacementScore {
  std::string object;
  std::string engine;
  bool is_home = false;
  int64_t samples = 0;
  double p95_ms = 0;
  double mean_ms = 0;
};

/// \brief Lifetime action counters.
struct PlacementCounters {
  int64_t decisions = 0;
  int64_t migrations = 0;
  int64_t reverts = 0;
  int64_t shards = 0;
  int64_t failures = 0;
  int64_t dry_runs = 0;
};

/// \brief The decision half of the monitor->migrator feedback loop.
///
/// Scores every tracked object per engine with bounded SampleWindow
/// percentiles: client completions feed the object's current home, shadow
/// re-executions (exec::AdaptivePlacement) feed the candidate engines.
/// Evaluate/MaybeRevert turn sustained score gaps into migration
/// proposals under the PlacementPolicy's hysteresis; the caller executes
/// them (BigDawg::MigrateObject via the query service's engine locks, or
/// ShardObject) and reports back through OnActionResult, which updates
/// the home, resets the object's windows (old timings describe the old
/// placement), arms the revert watch, and appends to the bounded
/// decision-history ring served by the /placement admin endpoint.
///
/// Thread-safe; at most one decision per object is outstanding at a time
/// (Evaluate/MaybeRevert mark the object in-flight until OnActionResult).
class PlacementController {
 public:
  PlacementController(PlacementPolicy policy, const obs::Clock* clock);

  PlacementController(const PlacementController&) = delete;
  PlacementController& operator=(const PlacementController&) = delete;

  /// Records a client-observed end-to-end timing for `object`, currently
  /// homed on `home_engine`. A home that differs from the last recorded
  /// one means the object moved outside this controller (manual
  /// migration): the windows reset and the watch is cancelled.
  void RecordClient(const std::string& object, const std::string& home_engine,
                    double elapsed_ms);

  /// Records a shadow-execution timing for `object` as measured on
  /// `engine` (either side of the baseline/candidate pair).
  void RecordShadow(const std::string& object, const std::string& engine,
                    double elapsed_ms);

  /// Proposes a migrate/shard action for `object` when the hysteresis
  /// gates all pass; marks the object decision-in-flight. `sharded`
  /// suppresses the shard action for already-sharded objects.
  std::optional<PlacementDecision> Evaluate(const std::string& object,
                                            bool sharded = false);

  /// Proposes undoing the object's most recent migration when the revert
  /// watch sees a sustained regression; marks the object in-flight.
  std::optional<PlacementDecision> MaybeRevert(const std::string& object);

  /// Reports what the executor did with a decision returned by
  /// Evaluate/MaybeRevert. Must be called exactly once per decision;
  /// `applied` false with an OK status means dry-run (observed, not
  /// acted on).
  void OnActionResult(const PlacementDecision& decision, bool applied,
                      const Status& status);

  /// Most recent decisions, oldest first (bounded ring).
  std::vector<PlacementDecision> History() const;
  std::vector<PlacementScore> Scoreboard() const;
  PlacementCounters counters() const;
  const PlacementPolicy& policy() const { return policy_; }

  /// Snapshot-semantics gauges (bigdawg_placement_*) into `registry`.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct ObjectState {
    std::string home;
    /// engine -> timings observed with the object's data on that engine.
    std::map<std::string, obs::SampleWindow> windows;
    int64_t client_samples = 0;
    bool sharded = false;
    bool decision_in_flight = false;
    obs::Clock::TimePoint cooldown_until{};
    // ---- Revert watch (armed by an applied migration) ----
    bool watching = false;
    std::string watch_prev_engine;
    double watch_pre_p95 = 0;
    int64_t watch_samples = 0;
    obs::Clock::TimePoint watch_until{};
  };

  /// The tracked state for `object`, or null when the tracking budget
  /// (policy_.max_objects) is spent on other objects.
  ObjectState* StateFor(const std::string& object);
  obs::SampleWindow& WindowFor(ObjectState& state, const std::string& engine);
  double NowMs() const;

  const PlacementPolicy policy_;
  const obs::Clock* clock_;
  const obs::Clock::TimePoint origin_;

  mutable std::mutex mu_;
  std::map<std::string, ObjectState> objects_;
  std::deque<PlacementDecision> history_;
  PlacementCounters counters_;
  int64_t next_seq_ = 1;
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_PLACEMENT_H_
