#ifndef BIGDAWG_CORE_SHARDING_H_
#define BIGDAWG_CORE_SHARDING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "array/array_engine.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "core/catalog.h"
#include "d4m/assoc_array.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "relational/database.h"
#include "relational/table.h"

namespace bigdawg::core {

// ---------------------------------------------------------------------------
// Partitioning functions (pure; no engine state)
// ---------------------------------------------------------------------------

/// FNV-1a over the canonical key string — the one hash every component
/// (partitioner, planner's shard pruning, stream age-out routing) must
/// agree on, or rows would be written to one shard and looked up on
/// another.
uint64_t ShardHash(const std::string& key);

/// Canonical partition-key string of a value. Integer-valued doubles and
/// int64s intentionally hash differently (they are different types); NULL
/// keys all land on one shard.
std::string ShardKeyString(const Value& v);

/// Owning shard of a hash-partitioned key.
int HashShardOf(const Value& key, int shard_count);

/// Owning shard of a range-partitioned coordinate. `splits` are ascending
/// exclusive upper bounds, one per shard except the last (unbounded).
int RangeShardOf(int64_t coord, const std::vector<int64_t>& splits);

/// Native name of shard `shard`'s fragment under placement epoch `epoch`:
/// "<native>__p<epoch>_s<shard>". Epoch-stamped so a repartition can lay
/// down the new fragments before retiring the old ones — readers on the
/// old epoch keep finding their names until the atomic placement swap.
std::string ShardFragmentName(const std::string& native, int64_t epoch,
                              int shard);

/// Splits a table into `placement.shard_count` fragments by hashing the
/// key column (placement.key; InvalidArgument if absent from the schema).
/// Every fragment keeps the full schema; empty fragments are real tables.
Result<std::vector<relational::Table>> PartitionTable(
    const relational::Table& table, const ShardPlacement& placement);

/// Splits an array into fragments by range on the partition dimension.
/// Every fragment keeps the FULL original dimension bounds (so empty
/// fragments are representable and the merge stitches cells back into an
/// array identical to the original), with cells assigned by
/// RangeShardOf(coordinate on placement.key).
Result<std::vector<array::Array>> PartitionArray(const array::Array& array,
                                                 const ShardPlacement& placement);

/// Splits an assoc array into fragments by hashing the row key (rows are
/// never split across shards, so per-row operators like ROWSUM stay
/// exact under pushdown).
Result<std::vector<d4m::AssocArray>> PartitionAssoc(
    const d4m::AssocArray& assoc, const ShardPlacement& placement);

/// Union of table fragments: schema from fragment 0, rows concatenated in
/// shard order. Row order is NOT the pre-partition order (hash scatter
/// does not remember it); consumers needing an order must sort.
///
/// Zero-copy fast paths: a single fragment is returned by pointer swap
/// (the common case when per-shard cache hits collapse the gather), and
/// a uniquely owned fragment's rows are moved, not copied. Fragments
/// sharing storage with a cache entry are read without thawing, so the
/// merge never deep-copies a cached block just to consume it.
Result<relational::Table> MergeTableFragments(
    std::vector<relational::Table> fragments);

/// Dimension-stitch: all fragments share identical dims/attrs, cells are
/// disjoint, so the merge reproduces the original array exactly. A
/// single fragment is returned by pointer swap.
Result<array::Array> MergeArrayFragments(std::vector<array::Array> fragments);

/// Assoc-merge of row-disjoint fragments; exact. A single fragment is
/// returned by pointer swap.
Result<d4m::AssocArray> MergeAssocFragments(
    std::vector<d4m::AssocArray> fragments);

// ---------------------------------------------------------------------------
// Shard runtime
// ---------------------------------------------------------------------------

/// One middleware-resident associative-store instance (the d4m "engine"
/// is a locked map inside the middleware; its shard instances are too).
class AssocShard {
 public:
  Result<d4m::AssocArray> Get(const std::string& native) const;
  void Put(const std::string& native, d4m::AssocArray assoc);
  void Erase(const std::string& native);

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, d4m::AssocArray> objects_;
};

/// Counters behind the bigdawg_shard_* metrics.
struct ShardStats {
  std::atomic<int64_t> scatters{0};       // gather operations started
  std::atomic<int64_t> shard_calls{0};    // per-shard subqueries attempted
  std::atomic<int64_t> shard_failures{0}; // subqueries that ultimately failed
  std::atomic<int64_t> hedges{0};         // duplicate requests launched
  std::atomic<int64_t> retries{0};        // Unavailable retries within a call
  std::atomic<int64_t> repartitions{0};   // ShardObject/UnshardObject runs
  std::atomic<int64_t> pruned{0};         // scatter fan-outs avoided by key routing
};

/// Deadline/cancellation/hedging policy for one scatter, carved from the
/// active execution context by the runtime's policy provider.
struct ShardCallPolicy {
  const obs::Clock* clock = nullptr;  // defaulted to the system clock
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  const std::atomic<bool>* cancelled = nullptr;
  /// Launch a duplicate request against a shard still unfinished after
  /// this many wall-clock milliseconds; 0 disables hedging.
  double hedge_after_ms = 0;
};

/// \brief The pool of numbered engine instances sharded objects live on,
/// plus the scatter-gather machinery every island reuses.
///
/// Instance `i` of an engine is an independent, internally synchronized
/// engine object (`relational::Database`, `array::ArrayEngine`, or
/// `AssocShard`), created lazily and never destroyed while the runtime
/// lives — so raw pointers handed out stay valid without locking.
///
/// Scatter tasks run on a shared ThreadPool. Each per-shard call gets one
/// immediate retry on `Unavailable`; a shard still silent after the hedge
/// window gets a duplicate request (first completion wins). The gather
/// returns all fragments or a typed error — never a truncated subset.
class ShardRuntime {
 public:
  explicit ShardRuntime(size_t pool_threads = 4);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  // ---- Instance pools ----

  relational::Database* Relational(int shard);
  array::ArrayEngine* ArrayAt(int shard);
  AssocShard* AssocAt(int shard);

  // ---- Wiring (set once by BigDawg's constructor) ----

  /// The fault-plane gate, called with shard-instance names
  /// ("postgres#2") before every per-shard engine touch.
  void SetInstanceCheck(std::function<Status(const std::string&)> check);
  /// Fault-plane check of one shard instance of `engine`.
  Status CheckInstance(const std::string& engine, int shard);
  /// Routing check mirroring BigDawg::EngineConsideredDown for instances.
  void SetInstanceDownCheck(std::function<bool(const std::string&)> down);
  bool InstanceConsideredDown(const std::string& engine, int shard);
  /// Supplies the active execution's deadline/cancel/clock per scatter.
  void SetPolicyProvider(std::function<ShardCallPolicy()> provider);

  // ---- Scatter-gather ----

  /// Runs `fn(shard)` for every shard on the pool and gathers the results
  /// in shard order. Per-shard semantics: one immediate retry on
  /// `Unavailable`, then a hedge after the policy's window; the slot's
  /// first completion wins. Fails as a whole with the first shard's error
  /// (shards keep their typed statuses; no partial results escape).
  /// Deadline and cancellation are checked while waiting, so a scatter
  /// never outlives its query's budget — abandoned tasks finish on the
  /// pool against shared-ownership slots and are discarded. Because
  /// those abandoned tasks (and late hedges) can run AFTER this call
  /// returns, `fn` must own everything it touches: capture by value (or
  /// shared_ptr), never by reference to the caller's stack. On failure,
  /// `failed_shard` (when non-null) receives the failing shard's index so
  /// the caller — on the query's own thread — can stamp the shard
  /// instance onto the execution context for per-instance breakers.
  template <typename T>
  Result<std::vector<T>> ScatterGather(int shard_count,
                                       const std::function<Result<T>(int)>& fn,
                                       int* failed_shard = nullptr);

  /// Serializes ShardObject/UnshardObject (one repartition at a time).
  std::mutex& repartition_mu() { return repartition_mu_; }

  ShardStats& stats() { return stats_; }
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  /// Runs every queued scatter task to completion and joins the pool
  /// workers. Abandoned tasks and late hedges capture the owning
  /// BigDawg, so its destructor MUST call this before any member the
  /// tasks touch (engines, catalog, cast cache) is torn down.
  void DrainPool();

 private:
  template <typename T>
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::optional<Result<T>> result;
  };

  template <typename T>
  void SubmitShardCall(const std::shared_ptr<Slot<T>>& slot,
                       const std::function<Result<T>(int)>& fn, int shard,
                       const ShardCallPolicy& policy);

  ShardCallPolicy CurrentPolicy();
  ThreadPool* pool();

  const size_t pool_threads_;
  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;  // lazily started

  std::mutex instances_mu_;
  std::vector<std::unique_ptr<relational::Database>> relational_;
  std::vector<std::unique_ptr<array::ArrayEngine>> arrays_;
  std::vector<std::unique_ptr<AssocShard>> assocs_;

  std::function<Status(const std::string&)> check_instance_;
  std::function<bool(const std::string&)> instance_down_;
  std::function<ShardCallPolicy()> policy_provider_;

  std::mutex repartition_mu_;
  ShardStats stats_;
};

// ---------------------------------------------------------------------------
// Template implementations
// ---------------------------------------------------------------------------

template <typename T>
void ShardRuntime::SubmitShardCall(const std::shared_ptr<Slot<T>>& slot,
                                   const std::function<Result<T>(int)>& fn,
                                   int shard, const ShardCallPolicy& policy) {
  stats_.shard_calls.fetch_add(1, std::memory_order_relaxed);
  ShardStats* stats = &stats_;
  pool()->Submit([slot, fn, shard, stats, policy] {
    // The per-shard deadline is whatever remains of the query deadline: a
    // shard call that starts after the budget is spent never runs.
    const bool expired = policy.has_deadline && policy.clock != nullptr &&
                         policy.clock->Now() >= policy.deadline;
    Result<T> r =
        expired ? Result<T>(Status::DeadlineExceeded(
                      "shard call started past the query deadline"))
                : fn(shard);
    if (!expired && !r.ok() &&
        r.status().code() == StatusCode::kUnavailable) {
      // One immediate retry: transient faults (FailNextCalls-style
      // schedules, brief blips) clear without surfacing to the gather.
      stats->retries.fetch_add(1, std::memory_order_relaxed);
      r = fn(shard);
    }
    std::lock_guard lock(slot->mu);
    if (!slot->done) {
      slot->result.emplace(std::move(r));
      slot->done = true;
      slot->cv.notify_all();
    }
    // else: a hedge already completed this slot; drop the duplicate.
  });
}

template <typename T>
Result<std::vector<T>> ShardRuntime::ScatterGather(
    int shard_count, const std::function<Result<T>(int)>& fn,
    int* failed_shard) {
  if (shard_count < 1) return Status::InvalidArgument("shard_count < 1");
  stats_.scatters.fetch_add(1, std::memory_order_relaxed);
  const ShardCallPolicy policy = CurrentPolicy();

  std::vector<std::shared_ptr<Slot<T>>> slots;
  slots.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    slots.push_back(std::make_shared<Slot<T>>());
  }
  for (int i = 0; i < shard_count; ++i) {
    SubmitShardCall(slots[i], fn, i, policy);
  }

  // Gather in shard order. Waits are sliced so cancellation and the
  // query deadline (measured on the injected clock, which may be fake)
  // are honored even while a shard task is stuck.
  const auto slice = std::chrono::milliseconds(1);
  const std::chrono::steady_clock::time_point scatter_start =
      std::chrono::steady_clock::now();
  std::vector<bool> hedged(static_cast<size_t>(shard_count), false);
  std::vector<T> out;
  out.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    Slot<T>& slot = *slots[i];
    std::unique_lock lock(slot.mu);
    while (!slot.done) {
      slot.cv.wait_for(lock, slice);
      if (slot.done) break;
      if (policy.cancelled != nullptr &&
          policy.cancelled->load(std::memory_order_relaxed)) {
        return Status::Cancelled("query cancelled during shard scatter");
      }
      if (policy.has_deadline && policy.clock != nullptr &&
          policy.clock->Now() >= policy.deadline) {
        return Status::DeadlineExceeded(
            "query deadline exceeded during shard scatter");
      }
      if (policy.hedge_after_ms > 0 && !hedged[static_cast<size_t>(i)] &&
          std::chrono::steady_clock::now() - scatter_start >
              std::chrono::duration<double, std::milli>(
                  policy.hedge_after_ms)) {
        // The shard is the straggler of this scatter: race a duplicate
        // request against it and take whichever finishes first.
        hedged[static_cast<size_t>(i)] = true;
        stats_.hedges.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        SubmitShardCall(slots[i], fn, i, policy);
        lock.lock();
      }
    }
    Result<T>& r = *slot.result;
    if (!r.ok()) {
      stats_.shard_failures.fetch_add(1, std::memory_order_relaxed);
      if (failed_shard != nullptr) *failed_shard = i;
      return r.status();
    }
    out.push_back(std::move(*r));
  }
  return out;
}

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_SHARDING_H_
