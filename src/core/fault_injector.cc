#include "core/fault_injector.h"

#include <algorithm>

namespace bigdawg::core {

void FaultInjector::SetClock(const obs::Clock* clock) {
  std::lock_guard lock(mu_);
  clock_ = clock != nullptr ? clock : obs::Clock::System();
}

FaultInjector::Schedule& FaultInjector::ScheduleFor(const std::string& engine) {
  if (IsShardInstanceName(engine)) return instance_schedules_[engine];
  int ordinal = EngineOrdinal(engine);
  // Callers pass canonical engine names; Reset-ed slot 0 absorbs typos in
  // test scripts rather than corrupting a real engine's schedule.
  return schedules_[ordinal < 0 ? 0 : static_cast<size_t>(ordinal)];
}

const FaultInjector::Schedule* FaultInjector::BaseScheduleFor(
    const std::string& name) const {
  if (!IsShardInstanceName(name)) return nullptr;
  int ordinal = EngineOrdinal(ShardBaseEngine(name));
  if (ordinal < 0) return nullptr;
  return &schedules_[static_cast<size_t>(ordinal)];
}

bool FaultInjector::DownLocked(const Schedule& s) const {
  if (s.down) return true;
  return s.has_down_window && clock_->Now() < s.down_until;
}

void FaultInjector::SetLatencyMs(const std::string& engine, double ms) {
  std::lock_guard lock(mu_);
  ScheduleFor(engine).latency_ms = ms;
}

void FaultInjector::SetDownForMs(const std::string& engine, double ms) {
  std::lock_guard lock(mu_);
  Schedule& s = ScheduleFor(engine);
  s.has_down_window = true;
  s.down_until = clock_->Now() + obs::Clock::FromMillis(ms);
}

void FaultInjector::SetDown(const std::string& engine, bool down) {
  std::lock_guard lock(mu_);
  Schedule& s = ScheduleFor(engine);
  s.down = down;
  if (!down) s.has_down_window = false;
}

void FaultInjector::FailNextCalls(const std::string& engine, int64_t n) {
  std::lock_guard lock(mu_);
  ScheduleFor(engine).fail_next = n;
}

void FaultInjector::FailEveryNth(const std::string& engine, int64_t n) {
  std::lock_guard lock(mu_);
  ScheduleFor(engine).every_nth = n;
}

void FaultInjector::FailWithProbability(const std::string& engine, double p,
                                        uint64_t seed) {
  std::lock_guard lock(mu_);
  Schedule& s = ScheduleFor(engine);
  s.fail_probability = p;
  s.rng = Rng(seed);
}

void FaultInjector::Reset() {
  std::lock_guard lock(mu_);
  for (Schedule& s : schedules_) s = Schedule{};
  instance_schedules_.clear();
}

Status FaultInjector::OnCall(const std::string& engine) {
  if (!enabled()) return Status::OK();

  double sleep_ms = 0;
  bool fault = false;
  const obs::Clock* clock = nullptr;
  {
    std::lock_guard lock(mu_);
    clock = clock_;
    Schedule& s = ScheduleFor(engine);
    ++s.calls;
    sleep_ms = s.latency_ms;
    if (DownLocked(s)) {
      fault = true;
    } else if (s.fail_next > 0) {
      --s.fail_next;
      fault = true;
    } else if (s.every_nth > 0 && s.calls % s.every_nth == 0) {
      fault = true;
    } else if (s.fail_probability > 0 && s.rng.NextBool(s.fail_probability)) {
      fault = true;
    }
    // A shard instance also inherits its base engine's down state and
    // latency: an engine-wide outage takes every shard with it.
    if (const Schedule* base = BaseScheduleFor(engine)) {
      sleep_ms = std::max(sleep_ms, base->latency_ms);
      if (!fault && DownLocked(*base)) fault = true;
    }
    if (fault) ++s.faults;
  }
  if (sleep_ms > 0) {
    // Loop because SleepFor may return early (FakeClock wakes sleepers on
    // every advance); the injected latency is measured on this clock.
    const obs::Clock::TimePoint wake =
        clock->Now() + obs::Clock::FromMillis(sleep_ms);
    for (obs::Clock::TimePoint now = clock->Now(); now < wake;
         now = clock->Now()) {
      clock->SleepFor(wake - now);
    }
  }
  if (fault) {
    return Status::Unavailable("engine " + engine + " fault injected");
  }
  return Status::OK();
}

bool FaultInjector::IsDown(const std::string& engine) const {
  if (!enabled()) return false;
  std::lock_guard lock(mu_);
  if (IsShardInstanceName(engine)) {
    auto it = instance_schedules_.find(engine);
    if (it != instance_schedules_.end() && DownLocked(it->second)) return true;
    const Schedule* base = BaseScheduleFor(engine);
    return base != nullptr && DownLocked(*base);
  }
  int ordinal = EngineOrdinal(engine);
  if (ordinal < 0) return false;
  return DownLocked(schedules_[static_cast<size_t>(ordinal)]);
}

FaultInjector::EngineCounters FaultInjector::CountersFor(
    const std::string& engine) const {
  EngineCounters out;
  std::lock_guard lock(mu_);
  if (IsShardInstanceName(engine)) {
    auto it = instance_schedules_.find(engine);
    if (it == instance_schedules_.end()) return out;
    out.calls = it->second.calls;
    out.faults_injected = it->second.faults;
    return out;
  }
  int ordinal = EngineOrdinal(engine);
  if (ordinal < 0) return out;
  const Schedule& s = schedules_[static_cast<size_t>(ordinal)];
  out.calls = s.calls;
  out.faults_injected = s.faults;
  return out;
}

}  // namespace bigdawg::core
