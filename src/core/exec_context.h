#ifndef BIGDAWG_CORE_EXEC_CONTEXT_H_
#define BIGDAWG_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/clock.h"

namespace bigdawg::obs {
class Trace;
}  // namespace bigdawg::obs

namespace bigdawg::core {

/// \brief Per-execution state for one top-level BigDawg::Execute call.
///
/// Each concurrent execution carries its own context, so CAST temporary
/// objects (their names, ownership, and cleanup) never collide across
/// clients. The query service threads one context per submitted query
/// with the session id baked into `temp_prefix`; the plain
/// BigDawg::Execute(query) overload creates an anonymous context with a
/// process-unique prefix internally.
struct ExecContext {
  /// Namespace for CAST temp objects. Must be unique among live contexts
  /// and start with "__cast_" (the monitor ignores that prefix when
  /// attributing accesses).
  std::string temp_prefix = "__cast_";
  int64_t temp_counter = 0;
  /// Temp objects created by this execution; dropped when the outermost
  /// Execute finishes (depth returns to zero).
  std::vector<std::string> temporaries;
  /// Nesting depth of Execute() — CAST arguments may themselves be
  /// island-scoped subqueries.
  int depth = 0;

  /// Cooperative cancellation flag (owned by the submitter); checked
  /// between execution steps.
  const std::atomic<bool>* cancelled = nullptr;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  /// Resilience bookkeeping, filled in by the core as this execution
  /// runs: the engine whose fault check last failed (drives the query
  /// service's per-engine circuit breakers) and how many reads were
  /// served by failing over to a replica.
  std::string unavailable_engine;
  int64_t failovers = 0;

  /// How the cast cache served the most recent Fetch* call on this
  /// context: "hit", "miss", "coalesced", or null when the cache was not
  /// consulted (native same-model read, temp object, or cache disabled).
  /// RewriteCasts resets it before each fetch and copies it onto the
  /// cast span's `cache` tag.
  const char* cast_cache_outcome = nullptr;
  /// Byte estimate recorded with the served cache entry (>= 0 when the
  /// cache was consulted), so traced casts reuse it instead of re-scanning
  /// the result.
  int64_t cast_cache_bytes = -1;

  /// Time source for the deadline check and everything downstream that
  /// reads it (island latency timing, span timestamps). The query service
  /// injects its configured clock; tests inject a FakeClock. Never null.
  const obs::Clock* clock = obs::Clock::System();

  /// Span recorder for this execution; null (the default) disables
  /// tracing — every emission site is one pointer test.
  obs::Trace* trace = nullptr;

  /// Marks a shadow re-execution by the adaptive-placement loop: a
  /// measurement run, not client traffic. Shadow executions skip monitor
  /// attribution (island latencies, object access counts, trace-mined
  /// affinities) and never root a trace in the process tracer, so the
  /// client-facing statistics describe only real queries.
  bool shadow = false;

  std::string NextTempName() {
    return temp_prefix + std::to_string(temp_counter++);
  }

  /// Cancelled / DeadlineExceeded when the query should stop; OK otherwise.
  Status Check() const {
    if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline && clock->Now() > deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_EXEC_CONTEXT_H_
