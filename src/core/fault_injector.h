#ifndef BIGDAWG_CORE_FAULT_INJECTOR_H_
#define BIGDAWG_CORE_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/catalog.h"
#include "obs/clock.h"

namespace bigdawg::core {

/// \brief Deterministic, seedable per-engine fault plane.
///
/// Every engine shim consults the injector before touching an engine
/// (`OnCall`), so the chaos test harness can script exactly when and how
/// the federation degrades:
///
///  * injected latency — every call to the engine sleeps first;
///  * hard down windows — calls fail with `Unavailable` until a
///    wall-clock window expires (`SetDownForMs`) or the fault is cleared
///    (`SetDown`);
///  * transient error schedules — the next N calls fail
///    (`FailNextCalls`), every N-th call fails (`FailEveryNth`), or each
///    call fails with seeded probability p (`FailWithProbability`).
///
/// Disabled (the default) the whole plane is one relaxed atomic load on
/// the call path — zero overhead for production use. All faults surface
/// as `Status::Unavailable`, the one retryable code, so the resilience
/// layer above (retries, breakers, failover) reacts exactly as it would
/// to a real engine outage.
///
/// Schedules may also target one shard instance by its canonical name
/// ("scidb#1"): the instance gets its own schedule, and calls to it
/// additionally inherit the base engine's down state and latency (an
/// engine-wide outage takes its shards with it; the base engine's
/// call-count schedules advance only on calls addressed to it).
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Time source for down windows and injected-latency sleeps. Call
  /// before Enable(); tests inject a FakeClock so down windows expire on
  /// fake time and latency injection needs no real sleeping.
  void SetClock(const obs::Clock* clock);

  // ---- Scripted fault schedules (all per engine) ----

  /// Every call to `engine` sleeps `ms` before proceeding.
  void SetLatencyMs(const std::string& engine, double ms);
  /// Calls to `engine` fail for the next `ms` of wall-clock time.
  void SetDownForMs(const std::string& engine, double ms);
  /// Marks `engine` hard-down (true) until cleared (false).
  void SetDown(const std::string& engine, bool down);
  /// The next `n` calls to `engine` fail, then it recovers.
  void FailNextCalls(const std::string& engine, int64_t n);
  /// Every `n`-th call to `engine` fails (1-based; 0 disables).
  void FailEveryNth(const std::string& engine, int64_t n);
  /// Each call to `engine` fails with probability `p`, drawn from a
  /// deterministic stream seeded with `seed`.
  void FailWithProbability(const std::string& engine, double p, uint64_t seed);
  /// Clears every schedule and counter (the enabled flag is untouched).
  void Reset();

  // ---- The plane consulted by engine shims ----

  /// Applies the engine's schedule to one call: sleeps any injected
  /// latency, then returns OK or `Unavailable`. No-op when disabled.
  Status OnCall(const std::string& engine);

  /// True while `engine` is inside a hard down window (flag or timed).
  /// Non-consuming: read by routing decisions (replica failover), does
  /// not advance call schedules. Always false when disabled.
  bool IsDown(const std::string& engine) const;

  // ---- Introspection for tests and the monitor ----

  struct EngineCounters {
    int64_t calls = 0;           // OnCall invocations
    int64_t faults_injected = 0; // calls that returned Unavailable
  };
  EngineCounters CountersFor(const std::string& engine) const;

 private:
  struct Schedule {
    double latency_ms = 0;
    bool down = false;
    bool has_down_window = false;
    obs::Clock::TimePoint down_until{};
    int64_t fail_next = 0;
    int64_t every_nth = 0;  // 0 = off
    double fail_probability = 0;
    Rng rng{0};
    int64_t calls = 0;
    int64_t faults = 0;
  };

  Schedule& ScheduleFor(const std::string& engine);  // mu_ held
  /// The base engine's schedule when `name` is a shard instance, else
  /// null. mu_ held.
  const Schedule* BaseScheduleFor(const std::string& name) const;
  bool DownLocked(const Schedule& s) const;

  std::atomic<bool> enabled_{false};
  const obs::Clock* clock_ = obs::Clock::System();
  mutable std::mutex mu_;
  std::array<Schedule, kNumEngines> schedules_;
  /// Schedules addressed to shard instances ("postgres#2"), created on
  /// first use.
  std::map<std::string, Schedule> instance_schedules_;
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_FAULT_INJECTOR_H_
