#include "core/wire_format.h"

#include <algorithm>
#include <cstring>

#include "common/columnar.h"
#include "common/macros.h"
#include "common/varint.h"

namespace bigdawg::core {

namespace {

constexpr char kMagic[4] = {'B', 'D', 'W', '1'};
constexpr uint8_t kKindTable = 1;
constexpr uint8_t kKindArray = 2;
constexpr uint8_t kKindAssoc = 3;

/// Per-column encoding byte: a uniform DataType code, or per-cell tags.
constexpr uint8_t kEncodingMixed = 0xff;

void PutLengthPrefixed(std::string* out, const std::string& s) {
  common::PutVarint64(out, s.size());
  out->append(s);
}

Result<std::string> GetLengthPrefixed(common::VarintReader* reader) {
  BIGDAWG_ASSIGN_OR_RETURN(uint64_t len, reader->GetVarint64());
  BIGDAWG_ASSIGN_OR_RETURN(const char* bytes, reader->GetBytes(len));
  return std::string(bytes, len);
}

/// Doubles travel as their exact 8-byte little-endian bit pattern so the
/// round trip is lossless (including -0.0 and NaN payloads).
void PutFixed64(std::string* out, uint64_t bits) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(bits >> (8 * i));
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(out, bits);
}

Result<double> GetDouble(common::VarintReader* reader) {
  BIGDAWG_ASSIGN_OR_RETURN(const char* bytes, reader->GetBytes(8));
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

/// Payload of one non-null cell, sans type tag.
void PutValuePayload(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kBool:
      out->push_back(v.bool_unchecked() ? 1 : 0);
      break;
    case DataType::kInt64:
      common::PutVarintSigned(out, v.int64_unchecked());
      break;
    case DataType::kDouble:
      PutDouble(out, v.double_unchecked());
      break;
    case DataType::kString:
      PutLengthPrefixed(out, v.string_unchecked());
      break;
    case DataType::kNull:
      break;  // unreachable: nulls live in the bitmap, not the payload
  }
}

Result<Value> GetValuePayload(common::VarintReader* reader, DataType type) {
  switch (type) {
    case DataType::kBool: {
      BIGDAWG_ASSIGN_OR_RETURN(uint8_t b, reader->GetByte());
      return Value(b != 0);
    }
    case DataType::kInt64: {
      BIGDAWG_ASSIGN_OR_RETURN(int64_t v, reader->GetVarintSigned());
      return Value(v);
    }
    case DataType::kDouble: {
      BIGDAWG_ASSIGN_OR_RETURN(double v, GetDouble(reader));
      return Value(v);
    }
    case DataType::kString: {
      BIGDAWG_ASSIGN_OR_RETURN(std::string s, GetLengthPrefixed(reader));
      return Value(std::move(s));
    }
    case DataType::kNull:
      return Value::Null();
  }
  return Status::InvalidArgument("bad value type tag");
}

Result<DataType> CheckTypeTag(uint64_t tag) {
  if (tag > static_cast<uint64_t>(DataType::kString)) {
    return Status::InvalidArgument("bad data type tag " + std::to_string(tag));
  }
  return static_cast<DataType>(tag);
}

void PutFrameHeader(std::string* out, uint8_t kind) {
  out->append(kMagic, 4);
  out->push_back(static_cast<char>(kind));
}

Status CheckFrameHeader(common::VarintReader* reader, uint8_t want_kind) {
  BIGDAWG_ASSIGN_OR_RETURN(const char* magic, reader->GetBytes(4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad wire magic");
  }
  BIGDAWG_ASSIGN_OR_RETURN(uint8_t kind, reader->GetByte());
  if (kind != want_kind) {
    return Status::InvalidArgument("wire frame kind mismatch: got " +
                                   std::to_string(kind) + ", want " +
                                   std::to_string(want_kind));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

std::string EncodeTable(const relational::Table& table) {
  std::string out;
  PutFrameHeader(&out, kKindTable);

  const Schema& schema = table.schema();
  common::PutVarint64(&out, schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& f = schema.field(i);
    PutLengthPrefixed(&out, f.name);
    out.push_back(static_cast<char>(f.type));
  }

  const size_t n = table.num_rows();
  common::PutVarint64(&out, n);

  for (size_t c = 0; c < schema.num_fields(); ++c) {
    common::ColumnView col = table.ColumnAt(c);

    // Uniform when every non-null cell shares one runtime type; cells may
    // diverge from the declared type via AppendUnchecked, hence the scan.
    DataType uniform = DataType::kNull;
    bool mixed = false;
    for (size_t r = 0; r < n; ++r) {
      if (col.IsNull(r)) continue;
      if (uniform == DataType::kNull) {
        uniform = col[r].type();
      } else if (col[r].type() != uniform) {
        mixed = true;
        break;
      }
    }
    out.push_back(mixed ? static_cast<char>(kEncodingMixed)
                        : static_cast<char>(uniform));

    // Null bitmap: raw little-endian 64-row words.
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = 0;
      for (size_t b = 0; b < 64 && w * 64 + b < n; ++b) {
        if (col.IsNull(w * 64 + b)) word |= uint64_t{1} << b;
      }
      PutFixed64(&out, word);
    }

    for (size_t r = 0; r < n; ++r) {
      if (col.IsNull(r)) continue;
      if (mixed) out.push_back(static_cast<char>(col[r].type()));
      PutValuePayload(&out, col[r]);
    }
  }
  return out;
}

Result<relational::Table> DecodeTable(const std::string& wire) {
  common::VarintReader reader(wire);
  BIGDAWG_RETURN_NOT_OK(CheckFrameHeader(&reader, kKindTable));

  BIGDAWG_ASSIGN_OR_RETURN(uint64_t num_fields, reader.GetVarint64());
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint64_t i = 0; i < num_fields; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(std::string name, GetLengthPrefixed(&reader));
    BIGDAWG_ASSIGN_OR_RETURN(uint8_t tag, reader.GetByte());
    BIGDAWG_ASSIGN_OR_RETURN(DataType type, CheckTypeTag(tag));
    fields.emplace_back(std::move(name), type);
  }

  BIGDAWG_ASSIGN_OR_RETURN(uint64_t n, reader.GetVarint64());
  // Column-major decode into row-major storage.
  std::vector<Row> rows(n);
  for (auto& row : rows) row.resize(num_fields);

  for (uint64_t c = 0; c < num_fields; ++c) {
    BIGDAWG_ASSIGN_OR_RETURN(uint8_t enc, reader.GetByte());
    const bool mixed = enc == kEncodingMixed;
    DataType uniform = DataType::kNull;
    if (!mixed) {
      BIGDAWG_ASSIGN_OR_RETURN(uniform, CheckTypeTag(enc));
    }

    const size_t words = (n + 63) / 64;
    std::vector<uint64_t> bitmap(words, 0);
    for (size_t w = 0; w < words; ++w) {
      BIGDAWG_ASSIGN_OR_RETURN(const char* bytes, reader.GetBytes(8));
      uint64_t word = 0;
      for (int i = 0; i < 8; ++i) {
        word |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i]))
                << (8 * i);
      }
      bitmap[w] = word;
    }

    for (uint64_t r = 0; r < n; ++r) {
      if ((bitmap[r >> 6] >> (r & 63)) & 1u) continue;  // stays null
      DataType type = uniform;
      if (mixed) {
        BIGDAWG_ASSIGN_OR_RETURN(uint8_t tag, reader.GetByte());
        BIGDAWG_ASSIGN_OR_RETURN(type, CheckTypeTag(tag));
      }
      BIGDAWG_ASSIGN_OR_RETURN(Value v, GetValuePayload(&reader, type));
      rows[r][c] = std::move(v);
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after table frame");
  }

  relational::Table out{Schema(std::move(fields))};
  for (Row& row : rows) out.AppendUnchecked(std::move(row));
  return out;
}

// ---------------------------------------------------------------------------
// Array
// ---------------------------------------------------------------------------

std::string EncodeArray(const array::Array& array) {
  std::string out;
  PutFrameHeader(&out, kKindArray);

  common::PutVarint64(&out, array.num_dims());
  for (const array::Dimension& d : array.dims()) {
    PutLengthPrefixed(&out, d.name);
    common::PutVarintSigned(&out, d.start);
    common::PutVarint64(&out, static_cast<uint64_t>(d.length));
    common::PutVarint64(&out, static_cast<uint64_t>(d.chunk_length));
  }
  common::PutVarint64(&out, array.num_attrs());
  for (const std::string& a : array.attrs()) PutLengthPrefixed(&out, a);

  // Canonical cell order: chunk iteration order is an unordered_map
  // artifact, so collect and sort by coordinates before emitting.
  struct Cell {
    array::Coordinates coords;
    std::vector<double> values;
  };
  std::vector<Cell> cells;
  array.Scan([&cells](const array::Coordinates& coords,
                      const std::vector<double>& values) {
    cells.push_back(Cell{coords, values});
    return true;
  });
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.coords < b.coords; });

  common::PutVarint64(&out, cells.size());
  for (const Cell& cell : cells) {
    for (int64_t c : cell.coords) common::PutVarintSigned(&out, c);
    for (double v : cell.values) PutDouble(&out, v);
  }
  return out;
}

Result<array::Array> DecodeArray(const std::string& wire) {
  common::VarintReader reader(wire);
  BIGDAWG_RETURN_NOT_OK(CheckFrameHeader(&reader, kKindArray));

  BIGDAWG_ASSIGN_OR_RETURN(uint64_t num_dims, reader.GetVarint64());
  std::vector<array::Dimension> dims;
  dims.reserve(num_dims);
  for (uint64_t i = 0; i < num_dims; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(std::string name, GetLengthPrefixed(&reader));
    BIGDAWG_ASSIGN_OR_RETURN(int64_t start, reader.GetVarintSigned());
    BIGDAWG_ASSIGN_OR_RETURN(uint64_t length, reader.GetVarint64());
    BIGDAWG_ASSIGN_OR_RETURN(uint64_t chunk_length, reader.GetVarint64());
    dims.emplace_back(std::move(name), start, static_cast<int64_t>(length),
                      static_cast<int64_t>(chunk_length));
  }
  BIGDAWG_ASSIGN_OR_RETURN(uint64_t num_attrs, reader.GetVarint64());
  std::vector<std::string> attrs;
  attrs.reserve(num_attrs);
  for (uint64_t i = 0; i < num_attrs; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(std::string a, GetLengthPrefixed(&reader));
    attrs.push_back(std::move(a));
  }

  BIGDAWG_ASSIGN_OR_RETURN(array::Array out,
                           array::Array::Create(std::move(dims),
                                                std::move(attrs)));
  BIGDAWG_ASSIGN_OR_RETURN(uint64_t cells, reader.GetVarint64());
  array::Coordinates coords(num_dims);
  std::vector<double> values(num_attrs);
  for (uint64_t i = 0; i < cells; ++i) {
    for (uint64_t d = 0; d < num_dims; ++d) {
      BIGDAWG_ASSIGN_OR_RETURN(coords[d], reader.GetVarintSigned());
    }
    for (uint64_t a = 0; a < num_attrs; ++a) {
      BIGDAWG_ASSIGN_OR_RETURN(values[a], GetDouble(&reader));
    }
    BIGDAWG_RETURN_NOT_OK(out.Set(coords, values));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after array frame");
  }
  return out;
}

// ---------------------------------------------------------------------------
// AssocArray
// ---------------------------------------------------------------------------

std::string EncodeAssoc(const d4m::AssocArray& assoc) {
  std::string out;
  PutFrameHeader(&out, kKindAssoc);
  common::PutVarint64(&out, assoc.NumNonEmpty());
  // ForEach visits in (row, col) key order: already canonical.
  assoc.ForEach([&out](const std::string& row, const std::string& col,
                       const Value& value) {
    PutLengthPrefixed(&out, row);
    PutLengthPrefixed(&out, col);
    out.push_back(static_cast<char>(value.type()));
    PutValuePayload(&out, value);
  });
  return out;
}

Result<d4m::AssocArray> DecodeAssoc(const std::string& wire) {
  common::VarintReader reader(wire);
  BIGDAWG_RETURN_NOT_OK(CheckFrameHeader(&reader, kKindAssoc));
  BIGDAWG_ASSIGN_OR_RETURN(uint64_t cells, reader.GetVarint64());
  d4m::AssocArray out;
  for (uint64_t i = 0; i < cells; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(std::string row, GetLengthPrefixed(&reader));
    BIGDAWG_ASSIGN_OR_RETURN(std::string col, GetLengthPrefixed(&reader));
    BIGDAWG_ASSIGN_OR_RETURN(uint8_t tag, reader.GetByte());
    BIGDAWG_ASSIGN_OR_RETURN(DataType type, CheckTypeTag(tag));
    BIGDAWG_ASSIGN_OR_RETURN(Value v, GetValuePayload(&reader, type));
    if (v.is_null()) {
      return Status::InvalidArgument("assoc wire cell with null value");
    }
    out.Set(std::move(row), std::move(col), std::move(v));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after assoc frame");
  }
  return out;
}

}  // namespace bigdawg::core
