#ifndef BIGDAWG_CORE_STREAM_AGEOUT_H_
#define BIGDAWG_CORE_STREAM_AGEOUT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"
#include "obs/metrics.h"

namespace bigdawg::core {

class BigDawg;

/// \brief Tuning for the stream -> array-engine age-out pipeline.
struct StreamAgeOutConfig {
  /// Pending aged-out rows buffered per stream before a flush into the
  /// array engine. Batching amortizes the cross-model store; 1 flushes
  /// every row (useful in tests).
  size_t flush_rows = 1024;
  /// Cap on history rows kept per stream; oldest rows beyond the cap are
  /// discarded at flush time (the history object is a bounded archive,
  /// not an unbounded log).
  size_t max_history_rows = 1 << 20;
  /// History objects are named `<stream><suffix>` in the catalog.
  std::string suffix = "__history";
};

/// First column of every history object: a monotonic per-stream arrival
/// sequence, prepended so the CAST to array gives each aged row a unique
/// cell (int64 columns become array dimensions; payload keys alone may
/// repeat) and the archive stays in age-out order.
inline constexpr char kHistorySeqColumn[] = "hist_seq";

/// \brief Counters describing the pipeline's progress.
struct StreamAgeOutStats {
  int64_t pending_rows = 0;   ///< aged-out rows awaiting a flush
  int64_t flushed_rows = 0;   ///< rows durably stored in the array engine
  int64_t flushes = 0;        ///< successful store operations
  int64_t flush_failures = 0; ///< failed stores (rows stay pending)
};

/// \brief The paper's waveform lifecycle, automated: hot recent tuples
/// live in S-Store's bounded stream buffers; what retention evicts is not
/// lost but CAST into the array engine as a growing history object —
/// exactly the demo's "recent data in S-Store, historical waveforms in
/// SciDB" split, maintained continuously instead of by hand.
///
/// Age-out delivery is exactly-once: the engine's retention calls
/// OnAgeOut once per evicted row; rows buffer as pending, and a flush
/// only moves them into the committed history after the array-engine
/// store succeeds. A failed store (engine down, fault injection) keeps
/// them pending for the next attempt — nothing is dropped and nothing is
/// double-appended.
///
/// Each flush rewrites the history object and bumps its catalog version
/// (MarkObjectWritten), so the cast-result cache can never serve
/// pre-flush bytes at a post-flush version.
///
/// Threading: OnAgeOut runs on the stream engine's executor thread with
/// the engine's state lock held, so this class never calls back into the
/// StreamEngine — schemas are snapshotted at Attach() time.
class StreamAgeOut {
 public:
  StreamAgeOut(BigDawg* dawg, StreamAgeOutConfig config);

  /// Snapshots every defined stream's schema and installs the engine's
  /// age-out handler. Call after streams are defined and before Start().
  Status Attach();

  /// The engine-facing handler target (also callable directly in tests).
  void OnAgeOut(const std::string& stream, const Row& row);

  /// Flushes every stream's pending rows now; returns the first error
  /// (remaining streams are still attempted, their rows stay pending).
  Status FlushAll();

  /// Catalog name of a stream's history object.
  std::string HistoryObjectName(const std::string& stream) const;

  StreamAgeOutStats GetStats() const;
  /// Publishes bigdawg_stream_ageout_* gauges.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct PerStream {
    /// History schema: kHistorySeqColumn + the stream's fields.
    Schema schema;
    /// Next hist_seq value; stamped onto rows as they age out.
    int64_t next_seq = 0;
    /// Rows already stored in the array engine (the committed archive,
    /// bounded by max_history_rows).
    std::vector<Row> history;
    /// Aged-out rows not yet stored; survive failed flushes.
    std::vector<Row> pending;
  };

  /// Stores history+pending as the stream's history object; commits the
  /// pending rows into history only on success. Caller holds mu_.
  Status FlushLocked(const std::string& stream, PerStream& ps);

  BigDawg* dawg_;
  const StreamAgeOutConfig config_;

  mutable std::mutex mu_;
  std::map<std::string, PerStream> streams_;

  std::atomic<int64_t> flushed_rows_{0};
  std::atomic<int64_t> flushes_{0};
  std::atomic<int64_t> flush_failures_{0};
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_STREAM_AGEOUT_H_
