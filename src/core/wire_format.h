#ifndef BIGDAWG_CORE_WIRE_FORMAT_H_
#define BIGDAWG_CORE_WIRE_FORMAT_H_

#include <string>

#include "array/array.h"
#include "common/result.h"
#include "d4m/assoc_array.h"
#include "relational/table.h"

namespace bigdawg::core {

/// \brief Compact, canonical binary wire format for the three data
/// models — the serialization leg of the zero-copy data plane.
///
/// Layout (all integers are LEB128 varints; signed values are zigzag
/// mapped so small magnitudes stay short):
///
///   frame    := magic "BDW1" | kind byte | body
///   table    := schema | varint row_count | column*
///   schema   := varint field_count | (varint name_len | name | type byte)*
///   column   := encoding byte | null bitmap (raw LE words, 64 rows each)
///               | non-null payloads
///   array    := dims | attrs | varint cell_count
///               | (zigzag coord* | fixed64 value*)*   -- coordinate-sorted
///   assoc    := varint cell_count | (row key | col key | tagged value)*
///
/// Columns whose non-null cells all match one runtime type use a uniform
/// encoding (one type byte for the whole column); schema-divergent
/// columns (possible via AppendUnchecked) fall back to per-cell tagged
/// payloads. int64 payloads are zigzag varints, doubles are fixed 8-byte
/// little-endian bit patterns (exact round-trip), bools one byte, strings
/// length-prefixed.
///
/// The encoding is canonical: array cells are emitted in coordinate
/// order and assoc cells in key order, so decode(encode(x)) re-encodes
/// byte-identically — the property the dataplane round-trip test pins.

std::string EncodeTable(const relational::Table& table);
Result<relational::Table> DecodeTable(const std::string& wire);

std::string EncodeArray(const array::Array& array);
Result<array::Array> DecodeArray(const std::string& wire);

std::string EncodeAssoc(const d4m::AssocArray& assoc);
Result<d4m::AssocArray> DecodeAssoc(const std::string& wire);

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_WIRE_FORMAT_H_
