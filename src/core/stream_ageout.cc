#include "core/stream_ageout.h"

#include <utility>

#include "common/macros.h"
#include "core/bigdawg.h"
#include "relational/table.h"

namespace bigdawg::core {

StreamAgeOut::StreamAgeOut(BigDawg* dawg, StreamAgeOutConfig config)
    : dawg_(dawg), config_(std::move(config)) {}

Status StreamAgeOut::Attach() {
  if (config_.flush_rows == 0) {
    return Status::InvalidArgument("flush_rows must be > 0");
  }
  // Snapshot the schemas up front: the age-out handler runs on the
  // executor thread with the engine state lock held, where calling back
  // into StreamEngine accessors would self-deadlock.
  //
  // Query the engine BEFORE taking mu_. OnAgeOut runs under the engine
  // state lock and takes mu_ (engine -> ageout); holding mu_ across
  // ListStreams/StreamSchema here would establish the reverse order
  // (ageout -> engine) — a lock-order inversion TSan rightly flags.
  std::vector<std::pair<std::string, Schema>> snapshot;
  for (const stream::StreamInfo& info : dawg_->sstore().ListStreams()) {
    BIGDAWG_ASSIGN_OR_RETURN(Schema schema, dawg_->sstore().StreamSchema(info.name));
    snapshot.emplace_back(info.name, std::move(schema));
  }
  {
    std::lock_guard lock(mu_);
    for (auto& [name, schema] : snapshot) {
      if (streams_.count(name) > 0) continue;
      // The history schema prepends a monotonic arrival sequence. CAST
      // to array keys cells by the int64 dimension columns, so without
      // a per-row unique dimension two aged rows with equal keys (same
      // patient, say) would collapse into one cell — silently losing
      // history. hist_seq makes every aged row a distinct cell and
      // keeps the archive in age-out order after the round-trip.
      std::vector<Field> fields;
      fields.reserve(schema.num_fields() + 1);
      fields.emplace_back(kHistorySeqColumn, DataType::kInt64);
      for (size_t i = 0; i < schema.num_fields(); ++i) {
        fields.push_back(schema.field(i));
      }
      PerStream ps;
      ps.schema = Schema(std::move(fields));
      streams_.emplace(name, std::move(ps));
    }
  }
  // Outside mu_: SetAgeOutHandler takes the engine state lock.
  dawg_->sstore().SetAgeOutHandler(
      [this](const std::string& stream, const Row& row) {
        OnAgeOut(stream, row);
      });
  return Status::OK();
}

std::string StreamAgeOut::HistoryObjectName(const std::string& stream) const {
  return stream + config_.suffix;
}

void StreamAgeOut::OnAgeOut(const std::string& stream, const Row& row) {
  std::lock_guard lock(mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) return;  // stream defined after Attach(): skip
  Row stamped;
  stamped.reserve(row.size() + 1);
  stamped.emplace_back(it->second.next_seq++);
  stamped.insert(stamped.end(), row.begin(), row.end());
  it->second.pending.push_back(std::move(stamped));
  if (it->second.pending.size() >= config_.flush_rows) {
    // Best-effort: a failed flush keeps the rows pending and is retried
    // on the next age-out (or an explicit FlushAll).
    (void)FlushLocked(stream, it->second);
  }
}

Status StreamAgeOut::FlushLocked(const std::string& stream, PerStream& ps) {
  if (ps.pending.empty()) return Status::OK();
  // Candidate archive = committed history + pending, oldest first,
  // trimmed to the cap. Built before the store so a failure commits
  // nothing (exactly-once: rows move to history only when stored).
  std::vector<Row> candidate;
  candidate.reserve(ps.history.size() + ps.pending.size());
  candidate.insert(candidate.end(), ps.history.begin(), ps.history.end());
  candidate.insert(candidate.end(), ps.pending.begin(), ps.pending.end());
  if (candidate.size() > config_.max_history_rows) {
    candidate.erase(candidate.begin(),
                    candidate.end() - static_cast<ptrdiff_t>(config_.max_history_rows));
  }
  relational::Table table(ps.schema, candidate);
  Status st = dawg_->StoreStreamHistory(HistoryObjectName(stream), table);
  if (!st.ok()) {
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  flushed_rows_.fetch_add(static_cast<int64_t>(ps.pending.size()),
                          std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  ps.history = std::move(candidate);
  ps.pending.clear();
  return Status::OK();
}

Status StreamAgeOut::FlushAll() {
  std::lock_guard lock(mu_);
  Status first = Status::OK();
  for (auto& [name, ps] : streams_) {
    Status st = FlushLocked(name, ps);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

StreamAgeOutStats StreamAgeOut::GetStats() const {
  StreamAgeOutStats s;
  {
    std::lock_guard lock(mu_);
    for (const auto& [name, ps] : streams_) {
      s.pending_rows += static_cast<int64_t>(ps.pending.size());
    }
  }
  s.flushed_rows = flushed_rows_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.flush_failures = flush_failures_.load(std::memory_order_relaxed);
  return s;
}

void StreamAgeOut::ExportMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const StreamAgeOutStats s = GetStats();
  registry->GetGauge("bigdawg_stream_ageout_pending_rows")
      ->Set(static_cast<double>(s.pending_rows));
  registry->GetGauge("bigdawg_stream_ageout_flushed_rows_total")
      ->Set(static_cast<double>(s.flushed_rows));
  registry->GetGauge("bigdawg_stream_ageout_flushes_total")
      ->Set(static_cast<double>(s.flushes));
  registry->GetGauge("bigdawg_stream_ageout_flush_failures_total")
      ->Set(static_cast<double>(s.flush_failures));
}

}  // namespace bigdawg::core
