#include "core/islands.h"

#include <cmath>
#include <deque>
#include <map>
#include <set>

#include "common/lexer.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/cast.h"
#include "myria/myria.h"
#include "relational/executor.h"
#include "relational/sql_parser.h"

namespace bigdawg::core {

namespace {

// Unqualified tail of a possibly-qualified column reference.
std::string UnqualifiedTail(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

// Flattens an AND tree into conjuncts (borrowed pointers).
void CollectAndConjuncts(const relational::Expr* expr,
                         std::vector<const relational::Expr*>* out) {
  const auto* bin = dynamic_cast<const relational::BinaryExpr*>(expr);
  if (bin != nullptr && bin->op() == relational::BinaryOp::kAnd) {
    CollectAndConjuncts(&bin->left(), out);
    CollectAndConjuncts(&bin->right(), out);
  } else {
    out->push_back(expr);
  }
}

// The single shard a point query can be pruned to, or -1 when the WHERE
// clause does not pin the placement's hash key to one literal. A
// `key = literal` conjunct means every qualifying row hashes to the
// literal's shard; the other shards cannot contribute to the aggregate.
int PrunedShard(const relational::SelectStatement& stmt,
                const ShardPlacement& placement) {
  if (placement.kind != PartitionKind::kHash || stmt.where == nullptr) {
    return -1;
  }
  std::vector<const relational::Expr*> conjuncts;
  CollectAndConjuncts(stmt.where.get(), &conjuncts);
  for (const relational::Expr* conjunct : conjuncts) {
    const auto* bin = dynamic_cast<const relational::BinaryExpr*>(conjunct);
    if (bin == nullptr || bin->op() != relational::BinaryOp::kEq) continue;
    const auto* col = dynamic_cast<const relational::ColumnExpr*>(&bin->left());
    const auto* lit = dynamic_cast<const relational::LiteralExpr*>(&bin->right());
    if (col == nullptr || lit == nullptr) {
      col = dynamic_cast<const relational::ColumnExpr*>(&bin->right());
      lit = dynamic_cast<const relational::LiteralExpr*>(&bin->left());
    }
    if (col == nullptr || lit == nullptr) continue;
    if (UnqualifiedTail(col->name()) != placement.key) continue;
    return HashShardOf(lit->value(), placement.shard_count);
  }
  return -1;
}

relational::Table RowsAsStringTable(const std::vector<Row>& rows) {
  size_t width = 0;
  for (const Row& r : rows) width = std::max(width, r.size());
  std::vector<Field> fields;
  for (size_t i = 0; i < width; ++i) {
    fields.emplace_back("c" + std::to_string(i), DataType::kString);
  }
  relational::Table out{Schema(std::move(fields))};
  for (const Row& r : rows) {
    Row padded;
    padded.reserve(width);
    for (size_t i = 0; i < width; ++i) {
      padded.push_back(i < r.size() ? Value(r[i].ToString()) : Value::Null());
    }
    out.AppendUnchecked(std::move(padded));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// RelationalIsland
// ---------------------------------------------------------------------------

Result<relational::Table> RelationalIsland::Execute(const std::string& query) {
  if (degenerate_) {
    return engines_.relational->ExecuteSql(query);
  }
  BIGDAWG_ASSIGN_OR_RETURN(relational::Statement stmt, relational::ParseSql(query));
  auto* select = std::get_if<relational::SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument(
        "the multi-engine relational island supports SELECT only (use the "
        "degenerate POSTGRES island for DDL/DML)");
  }
  // Distributive scalar aggregates over a sharded postgres table run as
  // per-shard partial queries instead of gathering the whole table; each
  // shard scans only its fragment (or a single shard, when the WHERE
  // clause pins the hash key). Any pushdown failure falls back to the
  // generic path, which retries across repartitions and applies replica
  // failover with typed errors.
  if (engines_.shards != nullptr && catalog_ != nullptr &&
      relational::IsDistributiveAggregate(*select)) {
    Result<ObjectSnapshot> snap = catalog_->Snapshot(select->from.name);
    if (snap.ok() && snap->placement.sharded() &&
        snap->location.engine == kEnginePostgres) {
      Result<relational::Table> pushed = ExecuteShardedAggregate(*select, *snap);
      if (pushed.ok()) return pushed;
    }
  }
  // Materialized shim tables must outlive execution.
  std::deque<relational::Table> arena;
  relational::TableResolver resolver =
      [this, &arena](const std::string& name) -> Result<const relational::Table*> {
    BIGDAWG_ASSIGN_OR_RETURN(relational::Table t, fetcher_(name));
    arena.push_back(std::move(t));
    return &arena.back();
  };
  return relational::ExecuteSelect(*select, resolver);
}

Result<relational::Table> RelationalIsland::ExecuteShardedAggregate(
    const relational::SelectStatement& stmt, const ObjectSnapshot& snap) {
  ShardRuntime& shards = *engines_.shards;
  const ShardPlacement& placement = snap.placement;
  // The per-shard statements are planned up front and owned by the task
  // lambda through a shared_ptr: a failed scatter returns before
  // abandoned tasks (and hedges) drain, so nothing they touch may live
  // on this stack frame.
  auto partial_stmts =
      std::make_shared<std::vector<relational::SelectStatement>>();
  partial_stmts->reserve(static_cast<size_t>(placement.shard_count));
  for (int s = 0; s < placement.shard_count; ++s) {
    BIGDAWG_ASSIGN_OR_RETURN(
        relational::SelectStatement partial,
        relational::BuildPartialAggregateSelect(
            stmt, ShardFragmentName(snap.location.native_name,
                                    placement.epoch, s)));
    partial_stmts->push_back(std::move(partial));
  }
  ShardRuntime* runtime = &shards;
  auto run_on = [runtime, partial_stmts](int shard) -> Result<relational::Table> {
    if (runtime->InstanceConsideredDown(kEnginePostgres, shard)) {
      return Status::Unavailable("shard instance " +
                                 ShardInstanceName(kEnginePostgres, shard) +
                                 " is down");
    }
    BIGDAWG_RETURN_NOT_OK(runtime->CheckInstance(kEnginePostgres, shard));
    return runtime->Relational(shard)->ExecuteSelect(
        (*partial_stmts)[static_cast<size_t>(shard)]);
  };

  std::vector<relational::Table> partials;
  const int pruned = PrunedShard(stmt, placement);
  if (pruned >= 0) {
    // Point query on the hash key: only the owning shard can hold
    // qualifying rows, so the scatter collapses to one call scanning
    // 1/N of the data.
    shards.stats().pruned.fetch_add(1, std::memory_order_relaxed);
    BIGDAWG_ASSIGN_OR_RETURN(relational::Table p, run_on(pruned));
    partials.push_back(std::move(p));
  } else {
    BIGDAWG_ASSIGN_OR_RETURN(
        partials, shards.ScatterGather<relational::Table>(
                      placement.shard_count, run_on));
  }
  if (!catalog_->PlacementIsCurrent(stmt.from.name, snap)) {
    return Status::NotFound("placement of " + stmt.from.name +
                            " changed during aggregate pushdown");
  }
  return relational::CombinePartialAggregates(stmt, partials);
}

// ---------------------------------------------------------------------------
// ArrayIsland
// ---------------------------------------------------------------------------

Result<array::Array> ArrayIsland::ExecuteToArray(const std::string& query) {
  if (degenerate_) {
    return engines_.array->Query(query);
  }
  // Shim pass: stage every referenced catalog object into a scratch array
  // engine (casting non-array objects), then run the AFL query there.
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  // Global `aggregate(NAME, FUNC, ATTR)` over a sharded scidb-homed array
  // runs as per-shard partials — each shard scans only its fragment — and
  // recombines exactly; any pushdown failure falls back to the shim path.
  if (engines_.shards != nullptr && catalog_ != nullptr &&
      tokens.size() >= 8 && tokens[0].type == TokenType::kIdentifier &&
      ToLower(tokens[0].text) == "aggregate" && tokens[1].IsSymbol("(") &&
      tokens[2].type == TokenType::kIdentifier && tokens[3].IsSymbol(",") &&
      tokens[4].type == TokenType::kIdentifier && tokens[5].IsSymbol(",") &&
      tokens[6].type == TokenType::kIdentifier && tokens[7].IsSymbol(")") &&
      (tokens.size() == 8 || tokens[8].type == TokenType::kEnd)) {
    Result<ObjectSnapshot> snap = catalog_->Snapshot(tokens[2].text);
    if (snap.ok() && snap->placement.sharded() &&
        snap->location.engine == kEngineSciDb) {
      Result<array::Array> pushed = ExecuteShardedAggregate(
          tokens[2].text, tokens[4].text, tokens[6].text, *snap);
      if (pushed.ok()) return pushed;
    }
  }
  array::ArrayEngine scratch;
  std::set<std::string> staged;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].type != TokenType::kIdentifier) continue;
    // Operator names are identifiers followed by '('.
    if (i + 1 < tokens.size() && tokens[i + 1].IsSymbol("(")) continue;
    const std::string& name = tokens[i].text;
    if (staged.count(name) > 0 || !catalog_->Contains(name)) continue;
    BIGDAWG_ASSIGN_OR_RETURN(array::Array a, fetcher_(name));
    BIGDAWG_RETURN_NOT_OK(scratch.PutArray(name, std::move(a)));
    staged.insert(name);
  }
  return scratch.Query(query);
}

Result<array::Array> ArrayIsland::ExecuteShardedAggregate(
    const std::string& object, const std::string& func_name,
    const std::string& attr, const ObjectSnapshot& snap) {
  BIGDAWG_ASSIGN_OR_RETURN(array::AggFunc func,
                           array::AggFuncFromString(ToLower(func_name)));
  ShardRuntime& shards = *engines_.shards;
  const ShardPlacement& placement = snap.placement;

  // One fragment's worth of the engine's aggregate accumulator. count,
  // sum and sumsq add across shards; min/max compare (cells are disjoint
  // under range partitioning), which makes every AggFunc — avg and stdev
  // included — recombine to the exact whole-array accumulator state.
  struct Partial {
    int64_t count = 0;
    double sum = 0;
    double sumsq = 0;
    double min = 0;
    double max = 0;
  };
  // By value (native/epoch/attr copies): a failed scatter returns before
  // abandoned tasks drain, so the lambda must own everything it touches.
  ShardRuntime* runtime = &shards;
  const std::string native = snap.location.native_name;
  const int64_t epoch = placement.epoch;
  auto run_on = [runtime, native, epoch, attr](int shard) -> Result<Partial> {
    if (runtime->InstanceConsideredDown(kEngineSciDb, shard)) {
      return Status::Unavailable("shard instance " +
                                 ShardInstanceName(kEngineSciDb, shard) +
                                 " is down");
    }
    BIGDAWG_RETURN_NOT_OK(runtime->CheckInstance(kEngineSciDb, shard));
    const std::string frag = ShardFragmentName(native, epoch, shard);
    BIGDAWG_ASSIGN_OR_RETURN(array::Array a,
                             runtime->ArrayAt(shard)->GetArray(frag));
    BIGDAWG_ASSIGN_OR_RETURN(size_t attr_idx, a.AttrIndex(attr));
    Partial p;
    a.Scan([&](const array::Coordinates&, const std::vector<double>& values) {
      const double v = values[attr_idx];
      if (p.count == 0) {
        p.min = p.max = v;
      } else {
        p.min = std::min(p.min, v);
        p.max = std::max(p.max, v);
      }
      ++p.count;
      p.sum += v;
      p.sumsq += v * v;
      return true;
    });
    return p;
  };

  BIGDAWG_ASSIGN_OR_RETURN(
      std::vector<Partial> partials,
      shards.ScatterGather<Partial>(placement.shard_count, run_on));
  if (!catalog_->PlacementIsCurrent(object, snap)) {
    return Status::NotFound("placement of " + object +
                            " changed during aggregate pushdown");
  }

  Partial total;
  for (const Partial& p : partials) {
    if (p.count == 0) continue;
    if (total.count == 0) {
      total.min = p.min;
      total.max = p.max;
    } else {
      total.min = std::min(total.min, p.min);
      total.max = std::max(total.max, p.max);
    }
    total.count += p.count;
    total.sum += p.sum;
    total.sumsq += p.sumsq;
  }

  // Finalize with the engine's exact semantics (array.cc AggState).
  double v = 0;
  switch (func) {
    case array::AggFunc::kCount:
      v = static_cast<double>(total.count);
      break;
    case array::AggFunc::kSum:
      v = total.sum;
      break;
    case array::AggFunc::kAvg:
      if (total.count == 0) {
        return Status::FailedPrecondition("avg of empty array");
      }
      v = total.sum / static_cast<double>(total.count);
      break;
    case array::AggFunc::kMin:
      if (total.count == 0) {
        return Status::FailedPrecondition("min of empty array");
      }
      v = total.min;
      break;
    case array::AggFunc::kMax:
      if (total.count == 0) {
        return Status::FailedPrecondition("max of empty array");
      }
      v = total.max;
      break;
    case array::AggFunc::kStdev: {
      if (total.count == 0) {
        return Status::FailedPrecondition("stdev of empty array");
      }
      double mean = total.sum / static_cast<double>(total.count);
      double var = total.sumsq / static_cast<double>(total.count) - mean * mean;
      v = std::sqrt(std::max(0.0, var));
      break;
    }
  }
  BIGDAWG_ASSIGN_OR_RETURN(
      array::Array out,
      array::Array::Create({array::Dimension("i", 0, 1, 1)},
                           {std::string(array::AggFuncToString(func)) + "_" +
                            attr}));
  BIGDAWG_RETURN_NOT_OK(out.Set({0}, {v}));
  return out;
}

Result<relational::Table> ArrayIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(array::Array result, ExecuteToArray(query));
  BIGDAWG_ASSIGN_OR_RETURN(relational::Table table, ArrayToTable(result));
  // Overall aggregates produce a synthetic one-cell array over the dummy
  // dimension "i"; present those as scalars (drop the placeholder column)
  // so they align with other islands' aggregate results.
  if (result.num_dims() == 1 && result.dims()[0].name == "i" &&
      result.dims()[0].length == 1 && table.num_rows() <= 1) {
    std::vector<Field> fields(table.schema().fields().begin() + 1,
                              table.schema().fields().end());
    relational::Table scalar{Schema(std::move(fields))};
    for (const Row& row : table.rows()) {
      scalar.AppendUnchecked(Row(row.begin() + 1, row.end()));
    }
    return scalar;
  }
  return table;
}

// ---------------------------------------------------------------------------
// TextIsland
// ---------------------------------------------------------------------------

Result<relational::Table> TextIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  TokenCursor cur(std::move(tokens));
  BIGDAWG_ASSIGN_OR_RETURN(std::string command, cur.ExpectIdentifier());
  command = ToUpper(command);

  if (command == "SEARCH") {
    std::vector<std::string> terms;
    while (!cur.AtEnd()) {
      BIGDAWG_ASSIGN_OR_RETURN(std::string term, cur.ExpectIdentifier());
      terms.push_back(std::move(term));
    }
    if (terms.empty()) return Status::InvalidArgument("SEARCH needs >= 1 term");
    relational::Table out{Schema({Field("doc_id", DataType::kString),
                                  Field("owner", DataType::kString),
                                  Field("score", DataType::kInt64)})};
    for (const kvstore::DocMatch& m : engines_.text->SearchAllTerms(terms)) {
      out.AppendUnchecked({Value(m.doc_id), Value(m.owner), Value(m.score)});
    }
    return out;
  }

  if (command == "PHRASE" || command == "OWNERS_WITH_PHRASE") {
    if (cur.Peek().type != TokenType::kString) {
      return Status::InvalidArgument(command + " needs a quoted phrase");
    }
    std::string phrase = cur.Next().text;
    if (command == "PHRASE") {
      if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
      relational::Table out{Schema({Field("doc_id", DataType::kString),
                                    Field("owner", DataType::kString),
                                    Field("occurrences", DataType::kInt64)})};
      for (const kvstore::DocMatch& m : engines_.text->SearchPhrase(phrase)) {
        out.AppendUnchecked({Value(m.doc_id), Value(m.owner), Value(m.score)});
      }
      return out;
    }
    int64_t min_docs = 1;
    if (cur.Peek().type == TokenType::kInteger) {
      min_docs = std::strtoll(cur.Next().text.c_str(), nullptr, 10);
    }
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    relational::Table out{Schema({Field("owner", DataType::kString),
                                  Field("matching_docs", DataType::kInt64)})};
    for (const auto& [owner, count] :
         engines_.text->OwnersWithPhraseCount(phrase, min_docs)) {
      out.AppendUnchecked({Value(owner), Value(count)});
    }
    return out;
  }

  if (command == "GET") {
    BIGDAWG_ASSIGN_OR_RETURN(std::string doc_id, cur.ExpectIdentifier());
    BIGDAWG_ASSIGN_OR_RETURN(std::string text, engines_.text->GetText(doc_id));
    BIGDAWG_ASSIGN_OR_RETURN(std::string owner, engines_.text->GetOwner(doc_id));
    relational::Table out{Schema({Field("doc_id", DataType::kString),
                                  Field("owner", DataType::kString),
                                  Field("text", DataType::kString)})};
    out.AppendUnchecked({Value(doc_id), Value(owner), Value(text)});
    return out;
  }

  return Status::InvalidArgument("unknown TEXT island command: " + command);
}

// ---------------------------------------------------------------------------
// StreamIsland
// ---------------------------------------------------------------------------

Result<relational::Table> StreamIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  TokenCursor cur(std::move(tokens));
  BIGDAWG_ASSIGN_OR_RETURN(std::string command, cur.ExpectIdentifier());
  command = ToUpper(command);

  if (command == "ALERTS") {
    return RowsAsStringTable(engines_.stream->TakeAlerts());
  }

  if (command == "STREAMS") {
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    relational::Table out{Schema({Field("stream", DataType::kString),
                                  Field("retention", DataType::kInt64),
                                  Field("buffered", DataType::kInt64),
                                  Field("total_appended", DataType::kInt64),
                                  Field("trigger", DataType::kString),
                                  Field("windows", DataType::kInt64)})};
    for (const stream::StreamInfo& info : engines_.stream->ListStreams()) {
      out.AppendUnchecked({Value(info.name),
                           Value(static_cast<int64_t>(info.retention)),
                           Value(static_cast<int64_t>(info.buffered)),
                           Value(info.total_appended), Value(info.trigger),
                           Value(static_cast<int64_t>(info.windows.size()))});
    }
    return out;
  }

  BIGDAWG_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
  if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");

  if (command == "STREAM") {
    BIGDAWG_ASSIGN_OR_RETURN(Schema schema, engines_.stream->StreamSchema(name));
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                             engines_.stream->StreamContents(name));
    return relational::Table(std::move(schema), std::move(rows));
  }
  if (command == "WINDOW") {
    BIGDAWG_ASSIGN_OR_RETURN(Schema schema, engines_.stream->WindowSchema(name));
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                             engines_.stream->WindowContents(name));
    return relational::Table(std::move(schema), std::move(rows));
  }
  if (command == "TABLE") {
    BIGDAWG_ASSIGN_OR_RETURN(Schema schema, engines_.stream->TableSchema(name));
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<Row> rows, engines_.stream->TableScan(name));
    return relational::Table(std::move(schema), std::move(rows));
  }
  if (command == "AGGREGATE") {
    // The window's incrementally maintained per-column aggregates —
    // answered from the aggregate bank in O(columns), never by
    // rescanning window rows.
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<stream::ColumnAggregate> aggs,
                             engines_.stream->WindowAggregates(name));
    relational::Table out{Schema({Field("column", DataType::kString),
                                  Field("count", DataType::kInt64),
                                  Field("sum", DataType::kDouble),
                                  Field("min", DataType::kDouble),
                                  Field("max", DataType::kDouble),
                                  Field("avg", DataType::kDouble)})};
    for (const stream::ColumnAggregate& a : aggs) {
      out.AppendUnchecked({Value(a.column), Value(a.agg.count), Value(a.agg.sum),
                           Value(a.agg.min), Value(a.agg.max), Value(a.agg.avg)});
    }
    return out;
  }
  return Status::InvalidArgument("unknown STREAM island command: " + command);
}

// ---------------------------------------------------------------------------
// D4mIsland
// ---------------------------------------------------------------------------

Result<relational::Table> D4mIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  TokenCursor cur(std::move(tokens));
  BIGDAWG_ASSIGN_OR_RETURN(std::string command, cur.ExpectIdentifier());
  command = ToUpper(command);

  auto fetch_next = [this, &cur]() -> Result<d4m::AssocArray> {
    BIGDAWG_ASSIGN_OR_RETURN(std::string object, cur.ExpectIdentifier());
    return fetcher_(object);
  };

  if (command == "TRIPLES" || command == "TRANSPOSE") {
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetch_next());
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    return AssocToTable(command == "TRIPLES" ? a : a.Transpose());
  }
  if (command == "ROWSUM") {
    BIGDAWG_ASSIGN_OR_RETURN(std::string object, cur.ExpectIdentifier());
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    // A sharded d4m-homed object sums per shard — row keys are disjoint
    // across the hash partition, so the merged sums are exact. Any
    // pushdown failure falls back to the whole-object gather below.
    if (engines_.shards != nullptr && catalog_ != nullptr) {
      Result<ObjectSnapshot> snap = catalog_->Snapshot(object);
      if (snap.ok() && snap->placement.sharded() &&
          snap->location.engine == kEngineD4m) {
        Result<relational::Table> pushed = ExecuteShardedRowSum(object, *snap);
        if (pushed.ok()) return pushed;
      }
    }
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetcher_(object));
    relational::Table out{Schema(
        {Field("row", DataType::kString), Field("sum", DataType::kDouble)})};
    for (const auto& [row, sum] : a.RowSums()) {
      out.AppendUnchecked({Value(row), Value(sum)});
    }
    return out;
  }
  if (command == "SUBROW") {
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetch_next());
    std::string prefix;
    if (cur.Peek().type == TokenType::kString ||
        cur.Peek().type == TokenType::kIdentifier) {
      prefix = cur.Next().text;
    } else {
      return Status::InvalidArgument("SUBROW needs a row-key prefix");
    }
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    return AssocToTable(a.SubRowPrefix(prefix));
  }
  if (command == "MATMUL" || command == "ADD" || command == "MULTIPLY") {
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetch_next());
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray b, fetch_next());
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    if (command == "MATMUL") return AssocToTable(a.MatMul(b));
    if (command == "ADD") return AssocToTable(a.Add(b));
    return AssocToTable(a.Multiply(b));
  }
  return Status::InvalidArgument("unknown D4M island command: " + command);
}

Result<relational::Table> D4mIsland::ExecuteShardedRowSum(
    const std::string& object, const ObjectSnapshot& snap) {
  ShardRuntime& shards = *engines_.shards;
  const ShardPlacement& placement = snap.placement;
  using RowSumMap = std::map<std::string, double>;
  // By value: a failed scatter returns before abandoned tasks drain.
  ShardRuntime* runtime = &shards;
  const std::string native = snap.location.native_name;
  const int64_t epoch = placement.epoch;
  auto run_on = [runtime, native, epoch](int shard) -> Result<RowSumMap> {
    if (runtime->InstanceConsideredDown(kEngineD4m, shard)) {
      return Status::Unavailable("shard instance " +
                                 ShardInstanceName(kEngineD4m, shard) +
                                 " is down");
    }
    BIGDAWG_RETURN_NOT_OK(runtime->CheckInstance(kEngineD4m, shard));
    const std::string frag = ShardFragmentName(native, epoch, shard);
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a,
                             runtime->AssocAt(shard)->Get(frag));
    return a.RowSums();
  };
  BIGDAWG_ASSIGN_OR_RETURN(
      std::vector<RowSumMap> partials,
      shards.ScatterGather<RowSumMap>(placement.shard_count, run_on));
  if (!catalog_->PlacementIsCurrent(object, snap)) {
    return Status::NotFound("placement of " + object +
                            " changed during ROWSUM pushdown");
  }
  RowSumMap merged;
  for (RowSumMap& m : partials) merged.merge(m);
  relational::Table out{Schema(
      {Field("row", DataType::kString), Field("sum", DataType::kDouble)})};
  for (const auto& [row, sum] : merged) {
    out.AppendUnchecked({Value(row), Value(sum)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// MyriaIsland
// ---------------------------------------------------------------------------

namespace {

// Extracts (left column, right column) from an equi-join condition.
Result<std::pair<std::string, std::string>> EquiColumns(const relational::Expr& on) {
  const auto* bin = dynamic_cast<const relational::BinaryExpr*>(&on);
  if (bin == nullptr || bin->op() != relational::BinaryOp::kEq) {
    return Status::NotImplemented(
        "MYRIA island joins require a simple equality condition");
  }
  const auto* l = dynamic_cast<const relational::ColumnExpr*>(&bin->left());
  const auto* r = dynamic_cast<const relational::ColumnExpr*>(&bin->right());
  if (l == nullptr || r == nullptr) {
    return Status::NotImplemented(
        "MYRIA island joins require column = column conditions");
  }
  return std::make_pair(l->name(), r->name());
}

}  // namespace

Result<relational::Table> MyriaIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(relational::Statement stmt, relational::ParseSql(query));
  auto* select = std::get_if<relational::SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("MYRIA island supports SELECT queries");
  }
  if (!select->order_by.empty() || select->limit >= 0 || select->distinct) {
    return Status::NotImplemented(
        "MYRIA island subset: no ORDER BY / LIMIT / DISTINCT");
  }
  if (!select->from.alias.empty()) {
    return Status::NotImplemented("MYRIA island subset: no table aliases");
  }

  // Stage every referenced base relation once; execution and the
  // optimizer's statistics both read from this materialization.
  std::map<std::string, relational::Table> staged;
  auto stage = [this, &staged](const std::string& name) -> Status {
    if (staged.count(name) > 0) return Status::OK();
    BIGDAWG_ASSIGN_OR_RETURN(relational::Table t, fetcher_(name));
    staged.emplace(name, std::move(t));
    return Status::OK();
  };
  BIGDAWG_RETURN_NOT_OK(stage(select->from.name));
  for (const relational::JoinClause& join : select->joins) {
    if (!join.table.alias.empty()) {
      return Status::NotImplemented("MYRIA island subset: no table aliases");
    }
    BIGDAWG_RETURN_NOT_OK(stage(join.table.name));
  }

  // Build the Myria plan: scans + joins, selection, aggregation/projection.
  myria::PlanPtr plan = myria::Scan(select->from.name);
  for (const relational::JoinClause& join : select->joins) {
    BIGDAWG_ASSIGN_OR_RETURN(auto cols, EquiColumns(*join.on));
    plan = myria::Join(std::move(plan), myria::Scan(join.table.name), cols.first,
                       cols.second);
  }
  if (select->where != nullptr) {
    plan = myria::Select(std::move(plan), select->where->Clone());
  }
  if (select->HasAggregates()) {
    std::vector<myria::MyriaAgg> aggs;
    std::vector<std::string> group = select->group_by;
    for (const relational::SelectItem& item : select->items) {
      if (item.agg == relational::AggregateFunc::kNone) continue;
      myria::MyriaAgg agg;
      agg.func = relational::AggregateFuncToString(item.agg);
      if (!item.count_star) {
        const auto* col = dynamic_cast<const relational::ColumnExpr*>(item.expr.get());
        if (col == nullptr) {
          return Status::NotImplemented(
              "MYRIA island aggregates take plain columns");
        }
        agg.column = col->name();
      }
      agg.alias = item.alias;
      aggs.push_back(std::move(agg));
    }
    plan = myria::Aggregate(std::move(plan), std::move(group), std::move(aggs));
  } else {
    bool star = false;
    std::vector<std::string> columns;
    std::vector<std::string> aliases;
    for (const relational::SelectItem& item : select->items) {
      if (item.is_star) {
        star = true;
        continue;
      }
      const auto* col = dynamic_cast<const relational::ColumnExpr*>(item.expr.get());
      if (col == nullptr) {
        return Status::NotImplemented(
            "MYRIA island projections take plain columns (or *)");
      }
      columns.push_back(col->name());
      aliases.push_back(item.alias);
    }
    if (!star && !columns.empty()) {
      plan = myria::Project(std::move(plan), std::move(columns), std::move(aliases));
    }
  }

  myria::CatalogStats stats;
  stats.row_count = [&staged](const std::string& name) -> Result<size_t> {
    auto it = staged.find(name);
    if (it == staged.end()) return Status::NotFound("not staged: " + name);
    return it->second.num_rows();
  };
  stats.schema = [&staged](const std::string& name) -> Result<Schema> {
    auto it = staged.find(name);
    if (it == staged.end()) return Status::NotFound("not staged: " + name);
    return it->second.schema();
  };
  myria::PlanPtr optimized = myria::Optimize(plan, stats);

  myria::Resolver resolver =
      [&staged](const std::string& name) -> Result<relational::Table> {
    auto it = staged.find(name);
    if (it == staged.end()) return Status::NotFound("not staged: " + name);
    return it->second;
  };
  return myria::ExecutePlan(*optimized, resolver, nullptr);
}

}  // namespace bigdawg::core
