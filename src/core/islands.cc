#include "core/islands.h"

#include <deque>
#include <set>

#include "common/lexer.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/cast.h"
#include "myria/myria.h"
#include "relational/executor.h"
#include "relational/sql_parser.h"

namespace bigdawg::core {

namespace {

relational::Table RowsAsStringTable(const std::vector<Row>& rows) {
  size_t width = 0;
  for (const Row& r : rows) width = std::max(width, r.size());
  std::vector<Field> fields;
  for (size_t i = 0; i < width; ++i) {
    fields.emplace_back("c" + std::to_string(i), DataType::kString);
  }
  relational::Table out{Schema(std::move(fields))};
  for (const Row& r : rows) {
    Row padded;
    padded.reserve(width);
    for (size_t i = 0; i < width; ++i) {
      padded.push_back(i < r.size() ? Value(r[i].ToString()) : Value::Null());
    }
    out.AppendUnchecked(std::move(padded));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// RelationalIsland
// ---------------------------------------------------------------------------

Result<relational::Table> RelationalIsland::Execute(const std::string& query) {
  if (degenerate_) {
    return engines_.relational->ExecuteSql(query);
  }
  BIGDAWG_ASSIGN_OR_RETURN(relational::Statement stmt, relational::ParseSql(query));
  auto* select = std::get_if<relational::SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument(
        "the multi-engine relational island supports SELECT only (use the "
        "degenerate POSTGRES island for DDL/DML)");
  }
  // Materialized shim tables must outlive execution.
  std::deque<relational::Table> arena;
  relational::TableResolver resolver =
      [this, &arena](const std::string& name) -> Result<const relational::Table*> {
    BIGDAWG_ASSIGN_OR_RETURN(relational::Table t, fetcher_(name));
    arena.push_back(std::move(t));
    return &arena.back();
  };
  return relational::ExecuteSelect(*select, resolver);
}

// ---------------------------------------------------------------------------
// ArrayIsland
// ---------------------------------------------------------------------------

Result<array::Array> ArrayIsland::ExecuteToArray(const std::string& query) {
  if (degenerate_) {
    return engines_.array->Query(query);
  }
  // Shim pass: stage every referenced catalog object into a scratch array
  // engine (casting non-array objects), then run the AFL query there.
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  array::ArrayEngine scratch;
  std::set<std::string> staged;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].type != TokenType::kIdentifier) continue;
    // Operator names are identifiers followed by '('.
    if (i + 1 < tokens.size() && tokens[i + 1].IsSymbol("(")) continue;
    const std::string& name = tokens[i].text;
    if (staged.count(name) > 0 || !catalog_->Contains(name)) continue;
    BIGDAWG_ASSIGN_OR_RETURN(array::Array a, fetcher_(name));
    BIGDAWG_RETURN_NOT_OK(scratch.PutArray(name, std::move(a)));
    staged.insert(name);
  }
  return scratch.Query(query);
}

Result<relational::Table> ArrayIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(array::Array result, ExecuteToArray(query));
  BIGDAWG_ASSIGN_OR_RETURN(relational::Table table, ArrayToTable(result));
  // Overall aggregates produce a synthetic one-cell array over the dummy
  // dimension "i"; present those as scalars (drop the placeholder column)
  // so they align with other islands' aggregate results.
  if (result.num_dims() == 1 && result.dims()[0].name == "i" &&
      result.dims()[0].length == 1 && table.num_rows() <= 1) {
    std::vector<Field> fields(table.schema().fields().begin() + 1,
                              table.schema().fields().end());
    relational::Table scalar{Schema(std::move(fields))};
    for (const Row& row : table.rows()) {
      scalar.AppendUnchecked(Row(row.begin() + 1, row.end()));
    }
    return scalar;
  }
  return table;
}

// ---------------------------------------------------------------------------
// TextIsland
// ---------------------------------------------------------------------------

Result<relational::Table> TextIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  TokenCursor cur(std::move(tokens));
  BIGDAWG_ASSIGN_OR_RETURN(std::string command, cur.ExpectIdentifier());
  command = ToUpper(command);

  if (command == "SEARCH") {
    std::vector<std::string> terms;
    while (!cur.AtEnd()) {
      BIGDAWG_ASSIGN_OR_RETURN(std::string term, cur.ExpectIdentifier());
      terms.push_back(std::move(term));
    }
    if (terms.empty()) return Status::InvalidArgument("SEARCH needs >= 1 term");
    relational::Table out{Schema({Field("doc_id", DataType::kString),
                                  Field("owner", DataType::kString),
                                  Field("score", DataType::kInt64)})};
    for (const kvstore::DocMatch& m : engines_.text->SearchAllTerms(terms)) {
      out.AppendUnchecked({Value(m.doc_id), Value(m.owner), Value(m.score)});
    }
    return out;
  }

  if (command == "PHRASE" || command == "OWNERS_WITH_PHRASE") {
    if (cur.Peek().type != TokenType::kString) {
      return Status::InvalidArgument(command + " needs a quoted phrase");
    }
    std::string phrase = cur.Next().text;
    if (command == "PHRASE") {
      if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
      relational::Table out{Schema({Field("doc_id", DataType::kString),
                                    Field("owner", DataType::kString),
                                    Field("occurrences", DataType::kInt64)})};
      for (const kvstore::DocMatch& m : engines_.text->SearchPhrase(phrase)) {
        out.AppendUnchecked({Value(m.doc_id), Value(m.owner), Value(m.score)});
      }
      return out;
    }
    int64_t min_docs = 1;
    if (cur.Peek().type == TokenType::kInteger) {
      min_docs = std::strtoll(cur.Next().text.c_str(), nullptr, 10);
    }
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    relational::Table out{Schema({Field("owner", DataType::kString),
                                  Field("matching_docs", DataType::kInt64)})};
    for (const auto& [owner, count] :
         engines_.text->OwnersWithPhraseCount(phrase, min_docs)) {
      out.AppendUnchecked({Value(owner), Value(count)});
    }
    return out;
  }

  if (command == "GET") {
    BIGDAWG_ASSIGN_OR_RETURN(std::string doc_id, cur.ExpectIdentifier());
    BIGDAWG_ASSIGN_OR_RETURN(std::string text, engines_.text->GetText(doc_id));
    BIGDAWG_ASSIGN_OR_RETURN(std::string owner, engines_.text->GetOwner(doc_id));
    relational::Table out{Schema({Field("doc_id", DataType::kString),
                                  Field("owner", DataType::kString),
                                  Field("text", DataType::kString)})};
    out.AppendUnchecked({Value(doc_id), Value(owner), Value(text)});
    return out;
  }

  return Status::InvalidArgument("unknown TEXT island command: " + command);
}

// ---------------------------------------------------------------------------
// StreamIsland
// ---------------------------------------------------------------------------

Result<relational::Table> StreamIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  TokenCursor cur(std::move(tokens));
  BIGDAWG_ASSIGN_OR_RETURN(std::string command, cur.ExpectIdentifier());
  command = ToUpper(command);

  if (command == "ALERTS") {
    return RowsAsStringTable(engines_.stream->TakeAlerts());
  }

  if (command == "STREAMS") {
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    relational::Table out{Schema({Field("stream", DataType::kString),
                                  Field("retention", DataType::kInt64),
                                  Field("buffered", DataType::kInt64),
                                  Field("total_appended", DataType::kInt64),
                                  Field("trigger", DataType::kString),
                                  Field("windows", DataType::kInt64)})};
    for (const stream::StreamInfo& info : engines_.stream->ListStreams()) {
      out.AppendUnchecked({Value(info.name),
                           Value(static_cast<int64_t>(info.retention)),
                           Value(static_cast<int64_t>(info.buffered)),
                           Value(info.total_appended), Value(info.trigger),
                           Value(static_cast<int64_t>(info.windows.size()))});
    }
    return out;
  }

  BIGDAWG_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
  if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");

  if (command == "STREAM") {
    BIGDAWG_ASSIGN_OR_RETURN(Schema schema, engines_.stream->StreamSchema(name));
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                             engines_.stream->StreamContents(name));
    return relational::Table(std::move(schema), std::move(rows));
  }
  if (command == "WINDOW") {
    BIGDAWG_ASSIGN_OR_RETURN(Schema schema, engines_.stream->WindowSchema(name));
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<Row> rows,
                             engines_.stream->WindowContents(name));
    return relational::Table(std::move(schema), std::move(rows));
  }
  if (command == "TABLE") {
    BIGDAWG_ASSIGN_OR_RETURN(Schema schema, engines_.stream->TableSchema(name));
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<Row> rows, engines_.stream->TableScan(name));
    return relational::Table(std::move(schema), std::move(rows));
  }
  if (command == "AGGREGATE") {
    // The window's incrementally maintained per-column aggregates —
    // answered from the aggregate bank in O(columns), never by
    // rescanning window rows.
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<stream::ColumnAggregate> aggs,
                             engines_.stream->WindowAggregates(name));
    relational::Table out{Schema({Field("column", DataType::kString),
                                  Field("count", DataType::kInt64),
                                  Field("sum", DataType::kDouble),
                                  Field("min", DataType::kDouble),
                                  Field("max", DataType::kDouble),
                                  Field("avg", DataType::kDouble)})};
    for (const stream::ColumnAggregate& a : aggs) {
      out.AppendUnchecked({Value(a.column), Value(a.agg.count), Value(a.agg.sum),
                           Value(a.agg.min), Value(a.agg.max), Value(a.agg.avg)});
    }
    return out;
  }
  return Status::InvalidArgument("unknown STREAM island command: " + command);
}

// ---------------------------------------------------------------------------
// D4mIsland
// ---------------------------------------------------------------------------

Result<relational::Table> D4mIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  TokenCursor cur(std::move(tokens));
  BIGDAWG_ASSIGN_OR_RETURN(std::string command, cur.ExpectIdentifier());
  command = ToUpper(command);

  auto fetch_next = [this, &cur]() -> Result<d4m::AssocArray> {
    BIGDAWG_ASSIGN_OR_RETURN(std::string object, cur.ExpectIdentifier());
    return fetcher_(object);
  };

  if (command == "TRIPLES" || command == "TRANSPOSE") {
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetch_next());
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    return AssocToTable(command == "TRIPLES" ? a : a.Transpose());
  }
  if (command == "ROWSUM") {
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetch_next());
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    relational::Table out{Schema(
        {Field("row", DataType::kString), Field("sum", DataType::kDouble)})};
    for (const auto& [row, sum] : a.RowSums()) {
      out.AppendUnchecked({Value(row), Value(sum)});
    }
    return out;
  }
  if (command == "SUBROW") {
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetch_next());
    std::string prefix;
    if (cur.Peek().type == TokenType::kString ||
        cur.Peek().type == TokenType::kIdentifier) {
      prefix = cur.Next().text;
    } else {
      return Status::InvalidArgument("SUBROW needs a row-key prefix");
    }
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    return AssocToTable(a.SubRowPrefix(prefix));
  }
  if (command == "MATMUL" || command == "ADD" || command == "MULTIPLY") {
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray a, fetch_next());
    BIGDAWG_ASSIGN_OR_RETURN(d4m::AssocArray b, fetch_next());
    if (!cur.AtEnd()) return Status::InvalidArgument("unexpected trailing input");
    if (command == "MATMUL") return AssocToTable(a.MatMul(b));
    if (command == "ADD") return AssocToTable(a.Add(b));
    return AssocToTable(a.Multiply(b));
  }
  return Status::InvalidArgument("unknown D4M island command: " + command);
}

// ---------------------------------------------------------------------------
// MyriaIsland
// ---------------------------------------------------------------------------

namespace {

// Extracts (left column, right column) from an equi-join condition.
Result<std::pair<std::string, std::string>> EquiColumns(const relational::Expr& on) {
  const auto* bin = dynamic_cast<const relational::BinaryExpr*>(&on);
  if (bin == nullptr || bin->op() != relational::BinaryOp::kEq) {
    return Status::NotImplemented(
        "MYRIA island joins require a simple equality condition");
  }
  const auto* l = dynamic_cast<const relational::ColumnExpr*>(&bin->left());
  const auto* r = dynamic_cast<const relational::ColumnExpr*>(&bin->right());
  if (l == nullptr || r == nullptr) {
    return Status::NotImplemented(
        "MYRIA island joins require column = column conditions");
  }
  return std::make_pair(l->name(), r->name());
}

}  // namespace

Result<relational::Table> MyriaIsland::Execute(const std::string& query) {
  BIGDAWG_ASSIGN_OR_RETURN(relational::Statement stmt, relational::ParseSql(query));
  auto* select = std::get_if<relational::SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("MYRIA island supports SELECT queries");
  }
  if (!select->order_by.empty() || select->limit >= 0 || select->distinct) {
    return Status::NotImplemented(
        "MYRIA island subset: no ORDER BY / LIMIT / DISTINCT");
  }
  if (!select->from.alias.empty()) {
    return Status::NotImplemented("MYRIA island subset: no table aliases");
  }

  // Stage every referenced base relation once; execution and the
  // optimizer's statistics both read from this materialization.
  std::map<std::string, relational::Table> staged;
  auto stage = [this, &staged](const std::string& name) -> Status {
    if (staged.count(name) > 0) return Status::OK();
    BIGDAWG_ASSIGN_OR_RETURN(relational::Table t, fetcher_(name));
    staged.emplace(name, std::move(t));
    return Status::OK();
  };
  BIGDAWG_RETURN_NOT_OK(stage(select->from.name));
  for (const relational::JoinClause& join : select->joins) {
    if (!join.table.alias.empty()) {
      return Status::NotImplemented("MYRIA island subset: no table aliases");
    }
    BIGDAWG_RETURN_NOT_OK(stage(join.table.name));
  }

  // Build the Myria plan: scans + joins, selection, aggregation/projection.
  myria::PlanPtr plan = myria::Scan(select->from.name);
  for (const relational::JoinClause& join : select->joins) {
    BIGDAWG_ASSIGN_OR_RETURN(auto cols, EquiColumns(*join.on));
    plan = myria::Join(std::move(plan), myria::Scan(join.table.name), cols.first,
                       cols.second);
  }
  if (select->where != nullptr) {
    plan = myria::Select(std::move(plan), select->where->Clone());
  }
  if (select->HasAggregates()) {
    std::vector<myria::MyriaAgg> aggs;
    std::vector<std::string> group = select->group_by;
    for (const relational::SelectItem& item : select->items) {
      if (item.agg == relational::AggregateFunc::kNone) continue;
      myria::MyriaAgg agg;
      agg.func = relational::AggregateFuncToString(item.agg);
      if (!item.count_star) {
        const auto* col = dynamic_cast<const relational::ColumnExpr*>(item.expr.get());
        if (col == nullptr) {
          return Status::NotImplemented(
              "MYRIA island aggregates take plain columns");
        }
        agg.column = col->name();
      }
      agg.alias = item.alias;
      aggs.push_back(std::move(agg));
    }
    plan = myria::Aggregate(std::move(plan), std::move(group), std::move(aggs));
  } else {
    bool star = false;
    std::vector<std::string> columns;
    std::vector<std::string> aliases;
    for (const relational::SelectItem& item : select->items) {
      if (item.is_star) {
        star = true;
        continue;
      }
      const auto* col = dynamic_cast<const relational::ColumnExpr*>(item.expr.get());
      if (col == nullptr) {
        return Status::NotImplemented(
            "MYRIA island projections take plain columns (or *)");
      }
      columns.push_back(col->name());
      aliases.push_back(item.alias);
    }
    if (!star && !columns.empty()) {
      plan = myria::Project(std::move(plan), std::move(columns), std::move(aliases));
    }
  }

  myria::CatalogStats stats;
  stats.row_count = [&staged](const std::string& name) -> Result<size_t> {
    auto it = staged.find(name);
    if (it == staged.end()) return Status::NotFound("not staged: " + name);
    return it->second.num_rows();
  };
  stats.schema = [&staged](const std::string& name) -> Result<Schema> {
    auto it = staged.find(name);
    if (it == staged.end()) return Status::NotFound("not staged: " + name);
    return it->second.schema();
  };
  myria::PlanPtr optimized = myria::Optimize(plan, stats);

  myria::Resolver resolver =
      [&staged](const std::string& name) -> Result<relational::Table> {
    auto it = staged.find(name);
    if (it == staged.end()) return Status::NotFound("not staged: " + name);
    return it->second;
  };
  return myria::ExecutePlan(*optimized, resolver, nullptr);
}

}  // namespace bigdawg::core
