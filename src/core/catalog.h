#ifndef BIGDAWG_CORE_CATALOG_H_
#define BIGDAWG_CORE_CATALOG_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace bigdawg::core {

/// \brief Canonical engine names used throughout the polystore.
inline constexpr char kEnginePostgres[] = "postgres";   // relational
inline constexpr char kEngineSciDb[] = "scidb";         // array
inline constexpr char kEngineAccumulo[] = "accumulo";   // text / key-value
inline constexpr char kEngineSStore[] = "sstore";       // streaming
inline constexpr char kEngineTileDb[] = "tiledb";       // tile matrix
inline constexpr char kEngineD4m[] = "d4m";             // associative store

inline constexpr int kNumEngines = 6;

/// Canonical ordinal of an engine name — the order above, which is also
/// the lock-bit order in exec/ and the health-mask order in the monitor.
/// Returns -1 for unknown names.
inline int EngineOrdinal(const std::string& engine) {
  if (engine == kEnginePostgres) return 0;
  if (engine == kEngineSciDb) return 1;
  if (engine == kEngineAccumulo) return 2;
  if (engine == kEngineSStore) return 3;
  if (engine == kEngineTileDb) return 4;
  if (engine == kEngineD4m) return 5;
  return -1;
}

/// \brief Where a logical object physically lives.
struct ObjectLocation {
  std::string object;       // logical, polystore-wide name
  std::string engine;       // one of the kEngine* constants
  std::string native_name;  // name inside the owning engine
};

/// \brief A consistent point-in-time view of one catalog entry.
///
/// `instance_id` is assigned once per Register and survives migration
/// (UpdateLocation) but not Remove+Register, so `(instance_id, version)`
/// uniquely identifies the data a reader is about to observe — the pair
/// the cast cache keys on.
struct ObjectSnapshot {
  ObjectLocation location;
  int64_t instance_id = 0;
  int64_t version = 0;
};

/// \brief A read replica of a logical object on another engine.
///
/// The paper leaves "data replication across systems" as future work;
/// this reproduction implements read replicas: the primary location stays
/// authoritative, replicas serve model-matched reads, and RefreshReplica
/// re-materializes a replica from the primary after writes.
struct ReplicaLocation {
  std::string engine;
  std::string native_name;
  /// Monotonic version of the primary this replica was materialized from.
  int64_t version = 0;
};

/// \brief The polystore catalog: logical object name -> physical location.
///
/// This is what gives BigDAWG location transparency — queries name
/// logical objects, and islands/shims resolve them here.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// AlreadyExists when the logical name is taken.
  Status Register(ObjectLocation location);

  Result<ObjectLocation> Lookup(const std::string& object) const;
  /// Location + instance id + primary version under one lock, so the
  /// three can never be observed torn across a concurrent write.
  Result<ObjectSnapshot> Snapshot(const std::string& object) const;
  /// True when `object` still names the same registration at the same
  /// version — i.e. a result read under `snapshot` is still current.
  bool SnapshotIsCurrent(const std::string& object,
                         const ObjectSnapshot& snapshot) const;
  bool Contains(const std::string& object) const;

  /// Repoints a logical object at a new engine/native name (migration).
  Status UpdateLocation(const std::string& object, const std::string& engine,
                        const std::string& native_name);

  Status Remove(const std::string& object);

  std::vector<ObjectLocation> List() const;
  /// Objects living on a given engine.
  std::vector<ObjectLocation> ListByEngine(const std::string& engine) const;

  // ---- Replication ----

  /// Registers a replica of `object` on `engine`; the replica starts at
  /// the primary's current version. AlreadyExists if one exists there.
  Status AddReplica(const std::string& object, const std::string& engine,
                    const std::string& native_name);
  Status RemoveReplica(const std::string& object, const std::string& engine);
  /// All replicas of an object (empty when unreplicated).
  std::vector<ReplicaLocation> Replicas(const std::string& object) const;
  /// The replica of `object` on `engine`, if any.
  Result<ReplicaLocation> ReplicaOn(const std::string& object,
                                    const std::string& engine) const;
  /// Current primary version (bumped by MarkPrimaryWritten).
  Result<int64_t> PrimaryVersion(const std::string& object) const;
  /// Records a write to the primary: replicas become stale.
  Status MarkPrimaryWritten(const std::string& object);
  /// Marks a replica as refreshed to the current primary version.
  Status MarkReplicaFresh(const std::string& object, const std::string& engine);
  /// True when the replica exists and matches the primary version.
  bool ReplicaIsFresh(const std::string& object, const std::string& engine) const;

 private:
  struct Entry {
    ObjectLocation primary;
    int64_t instance_id = 0;
    int64_t version = 0;
    std::vector<ReplicaLocation> replicas;
  };

  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> objects_;
  int64_t next_instance_id_ = 1;
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_CATALOG_H_
