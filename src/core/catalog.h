#ifndef BIGDAWG_CORE_CATALOG_H_
#define BIGDAWG_CORE_CATALOG_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace bigdawg::core {

/// \brief Canonical engine names used throughout the polystore.
inline constexpr char kEnginePostgres[] = "postgres";   // relational
inline constexpr char kEngineSciDb[] = "scidb";         // array
inline constexpr char kEngineAccumulo[] = "accumulo";   // text / key-value
inline constexpr char kEngineSStore[] = "sstore";       // streaming
inline constexpr char kEngineTileDb[] = "tiledb";       // tile matrix
inline constexpr char kEngineD4m[] = "d4m";             // associative store

inline constexpr int kNumEngines = 6;

/// Canonical ordinal of an engine name — the order above, which is also
/// the lock-bit order in exec/ and the health-mask order in the monitor.
/// Returns -1 for unknown names.
inline int EngineOrdinal(const std::string& engine) {
  if (engine == kEnginePostgres) return 0;
  if (engine == kEngineSciDb) return 1;
  if (engine == kEngineAccumulo) return 2;
  if (engine == kEngineSStore) return 3;
  if (engine == kEngineTileDb) return 4;
  if (engine == kEngineD4m) return 5;
  return -1;
}

/// Canonical name of shard instance `shard` of an engine: "postgres#2".
/// Shard instances flow through the same string-keyed resilience plumbing
/// as whole engines (fault schedules, breakers, ctx stamping) so a single
/// sick shard degrades like a single sick engine — without taking its
/// siblings with it.
inline std::string ShardInstanceName(const std::string& engine, int shard) {
  return engine + "#" + std::to_string(shard);
}

inline bool IsShardInstanceName(const std::string& name) {
  return name.find('#') != std::string::npos;
}

/// "postgres#2" -> "postgres"; plain engine names pass through.
inline std::string ShardBaseEngine(const std::string& name) {
  size_t hash = name.find('#');
  return hash == std::string::npos ? name : name.substr(0, hash);
}

/// \brief Where a logical object physically lives.
struct ObjectLocation {
  std::string object;       // logical, polystore-wide name
  std::string engine;       // one of the kEngine* constants
  std::string native_name;  // name inside the owning engine
};

/// How a sharded object's rows/cells are assigned to shard instances.
enum class PartitionKind : int {
  kHash,   // hash of a key column (relations) or the row key (assocs)
  kRange,  // contiguous ranges of one array dimension
};

/// \brief The placement map of one sharded object.
///
/// A sharded object's bytes live as per-shard fragments on numbered
/// instances of its home engine ("postgres#0" ... "postgres#N-1") under
/// epoch-stamped native names; the placement map is the authoritative
/// description of that layout. `shard_count == 0` means unsharded.
///
/// `epoch` increases monotonically across the object's whole life — every
/// repartition (and the final unshard) retires the previous epoch's
/// fragment names, which is what lets readers detect a concurrent
/// repartition and retry against the new layout instead of serving a
/// torn mix of old and new fragments.
///
/// `shard_versions[i]` is the write version of shard i alone. The cast
/// cache keys fragment entries on it, so writing (or migrating) one shard
/// invalidates only that shard's cached conversions and keeps the other
/// shards warm.
struct ShardPlacement {
  PartitionKind kind = PartitionKind::kHash;
  std::string key;     // hash column name / range dimension name
  int shard_count = 0;
  int64_t epoch = 0;
  /// kRange only: ascending exclusive upper bounds, one per shard except
  /// the last (which is unbounded above).
  std::vector<int64_t> range_splits;
  std::vector<int64_t> shard_versions;

  bool sharded() const { return shard_count > 0; }
};

/// \brief A consistent point-in-time view of one catalog entry.
///
/// `instance_id` is assigned once per Register and survives migration
/// (UpdateLocation) but not Remove+Register, so `(instance_id, version)`
/// uniquely identifies the data a reader is about to observe — the pair
/// the cast cache keys on.
struct ObjectSnapshot {
  ObjectLocation location;
  int64_t instance_id = 0;
  int64_t version = 0;
  /// The placement map at snapshot time (default-constructed, i.e.
  /// `!placement.sharded()`, for unsharded objects).
  ShardPlacement placement;
};

/// \brief A read replica of a logical object on another engine.
///
/// The paper leaves "data replication across systems" as future work;
/// this reproduction implements read replicas: the primary location stays
/// authoritative, replicas serve model-matched reads, and RefreshReplica
/// re-materializes a replica from the primary after writes.
struct ReplicaLocation {
  std::string engine;
  std::string native_name;
  /// Monotonic version of the primary this replica was materialized from.
  int64_t version = 0;
};

/// \brief The polystore catalog: logical object name -> physical location.
///
/// This is what gives BigDAWG location transparency — queries name
/// logical objects, and islands/shims resolve them here.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// AlreadyExists when the logical name is taken.
  Status Register(ObjectLocation location);

  Result<ObjectLocation> Lookup(const std::string& object) const;
  /// Location + instance id + primary version under one lock, so the
  /// three can never be observed torn across a concurrent write.
  Result<ObjectSnapshot> Snapshot(const std::string& object) const;
  /// True when `object` still names the same registration at the same
  /// version — i.e. a result read under `snapshot` is still current.
  bool SnapshotIsCurrent(const std::string& object,
                         const ObjectSnapshot& snapshot) const;
  bool Contains(const std::string& object) const;

  /// Repoints a logical object at a new engine/native name (migration).
  Status UpdateLocation(const std::string& object, const std::string& engine,
                        const std::string& native_name);

  Status Remove(const std::string& object);

  std::vector<ObjectLocation> List() const;
  /// Objects living on a given engine.
  std::vector<ObjectLocation> ListByEngine(const std::string& engine) const;

  // ---- Replication ----

  /// Registers a replica of `object` on `engine`; the replica starts at
  /// the primary's current version. AlreadyExists if one exists there.
  Status AddReplica(const std::string& object, const std::string& engine,
                    const std::string& native_name);
  Status RemoveReplica(const std::string& object, const std::string& engine);
  /// All replicas of an object (empty when unreplicated).
  std::vector<ReplicaLocation> Replicas(const std::string& object) const;
  /// The replica of `object` on `engine`, if any.
  Result<ReplicaLocation> ReplicaOn(const std::string& object,
                                    const std::string& engine) const;
  /// Current primary version (bumped by MarkPrimaryWritten).
  Result<int64_t> PrimaryVersion(const std::string& object) const;
  /// Records a write to the primary: replicas become stale.
  Status MarkPrimaryWritten(const std::string& object);
  /// Marks a replica as refreshed to the current primary version.
  Status MarkReplicaFresh(const std::string& object, const std::string& engine);
  /// True when the replica exists and matches the primary version.
  bool ReplicaIsFresh(const std::string& object, const std::string& engine) const;

  // ---- Sharding (placement map) ----

  /// Installs (or replaces) an object's placement map. The epoch must be
  /// strictly greater than the entry's last placement epoch — repartitions
  /// are serialized by the caller, so a stale epoch means a logic bug.
  /// `shard_versions` is reset to zeros for the new layout.
  Status SetPlacement(const std::string& object, ShardPlacement placement);
  /// The object's placement map; `!sharded()` when unsharded. The epoch
  /// field stays at its last value after RemovePlacement so a later
  /// re-shard continues the monotonic sequence.
  Result<ShardPlacement> Placement(const std::string& object) const;
  /// Returns the object to unsharded (keeps the epoch watermark).
  Status RemovePlacement(const std::string& object);
  /// Records a write to one shard: bumps that shard's version and the
  /// primary version (staling replicas and whole-object cache entries).
  Status MarkShardWritten(const std::string& object, int shard);
  /// True when `snapshot`'s view of shard `shard` is still current: same
  /// registration, same placement epoch, same per-shard version. The cast
  /// cache's insert validator for fragment entries.
  bool ShardStateIsCurrent(const std::string& object,
                           const ObjectSnapshot& snapshot, int shard) const;
  /// True when the object's placement epoch still matches the snapshot's
  /// (both unsharded counts as current). Gather's end-to-end check that
  /// no repartition raced the scatter.
  bool PlacementIsCurrent(const std::string& object,
                          const ObjectSnapshot& snapshot) const;
  /// Every sharded object with its placement, for the /shards endpoint.
  std::vector<std::pair<ObjectLocation, ShardPlacement>> ListPlacements() const;

 private:
  struct Entry {
    ObjectLocation primary;
    int64_t instance_id = 0;
    int64_t version = 0;
    std::vector<ReplicaLocation> replicas;
    ShardPlacement placement;
  };

  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> objects_;
  int64_t next_instance_id_ = 1;
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_CATALOG_H_
