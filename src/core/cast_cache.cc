#include "core/cast_cache.h"

#include <chrono>
#include <cstdlib>

#include "core/exec_context.h"

namespace bigdawg::core {

namespace {
// Coalesced waiters re-check their context at this cadence (the same
// slice InterruptibleBackoff uses), so cancellation and deadlines cut a
// wait short even when the leader is parked on a FakeClock.
constexpr std::chrono::milliseconds kWaitSlice{1};
}  // namespace

const char* CastTargetName(CastTarget target) {
  switch (target) {
    case CastTarget::kTable:
      return "relation";
    case CastTarget::kArray:
      return "array";
    case CastTarget::kAssoc:
      return "assoc";
  }
  return "?";
}

const char* CastCacheOutcomeName(CastCacheOutcome outcome) {
  switch (outcome) {
    case CastCacheOutcome::kHit:
      return "hit";
    case CastCacheOutcome::kMiss:
      return "miss";
    case CastCacheOutcome::kCoalesced:
      return "coalesced";
  }
  return "?";
}

std::string CastCacheKey::ToString() const {
  std::string out = object + "@v" + std::to_string(version) + "#" +
                    std::to_string(instance_id) + "->" + CastTargetName(target);
  if (!params.empty()) out += "(" + params + ")";
  return out;
}

CastCache::CastCache() {
  const char* env = std::getenv("BIGDAWG_CAST_CACHE");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') enabled_ = false;
}

bool CastCache::enabled() const {
  std::lock_guard lock(mu_);
  return enabled_;
}

void CastCache::SetEnabled(bool enabled) {
  std::lock_guard lock(mu_);
  if (enabled_ && !enabled) DropAllLocked();
  enabled_ = enabled;
}

int64_t CastCache::max_bytes() const {
  std::lock_guard lock(mu_);
  return max_bytes_;
}

void CastCache::SetMaxBytes(int64_t max_bytes) {
  std::lock_guard lock(mu_);
  max_bytes_ = max_bytes;
  while (bytes_ > max_bytes_ && !lru_.empty()) EvictOneLocked();
  PublishGaugesLocked();
}

void CastCache::SetClock(const obs::Clock* clock) {
  std::lock_guard lock(mu_);
  clock_ = clock;
}

void CastCache::Clear() {
  std::lock_guard lock(mu_);
  DropAllLocked();
}

Result<CastCache::Sized> CastCache::DoGetOrCompute(
    const CastCacheKey& key, const std::function<Result<Sized>()>& compute,
    const std::function<bool()>& still_current, const ExecContext* waiter_ctx,
    CastCacheOutcome* outcome) {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Hit: bump to the LRU front and hand out the shared pointer.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++it->second.hits;
      ++hits_;
      if (m_hits_ != nullptr) m_hits_->Increment();
      *outcome = CastCacheOutcome::kHit;
      return Sized{it->second.value, it->second.bytes};
    }
    std::shared_ptr<Flight>& slot = flights_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Flight>();
      leader = true;
      ++misses_;
      if (m_misses_ != nullptr) m_misses_->Increment();
    } else {
      ++coalesced_;
      if (m_coalesced_ != nullptr) m_coalesced_->Increment();
    }
    flight = slot;
  }

  if (!leader) {
    *outcome = CastCacheOutcome::kCoalesced;
    std::unique_lock flight_lock(flight->mu);
    while (!flight->done) {
      if (waiter_ctx != nullptr) {
        Status interrupted = waiter_ctx->Check();
        // Abandoning the wait leaves the leader to finish (and cache) on
        // its own; this caller just stops waiting for it.
        if (!interrupted.ok()) return interrupted;
      }
      flight->cv.wait_for(flight_lock, kWaitSlice);
    }
    if (!flight->status.ok()) return flight->status;
    return Sized{flight->value, flight->bytes};
  }

  *outcome = CastCacheOutcome::kMiss;
  // The conversion runs with no cache lock held: it may touch engines,
  // take engine locks, or recurse into the cache under a different key.
  Result<Sized> computed = compute();
  // Insert only while the catalog still shows the (instance, version) the
  // key was built from; a write that raced the conversion makes the entry
  // unreachable at best and mixed-version at worst, so skip it.
  const bool insertable =
      computed.ok() && (still_current == nullptr || still_current());
  {
    std::lock_guard lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
    if (insertable && enabled_) {
      InsertLocked(key, computed->value, computed->bytes);
    }
  }
  {
    std::lock_guard flight_lock(flight->mu);
    flight->done = true;
    if (computed.ok()) {
      flight->value = computed->value;
      flight->bytes = computed->bytes;
    } else {
      // Errors are never cached; waiters see this status and the dropped
      // flight means the next request retries from scratch.
      flight->status = computed.status();
    }
  }
  flight->cv.notify_all();
  return computed;
}

bool CastCache::Contains(const CastCacheKey& key) const {
  std::lock_guard lock(mu_);
  return entries_.count(key) > 0;
}

std::vector<CastCacheEntryView> CastCache::DumpEntries() const {
  std::lock_guard lock(mu_);
  std::vector<CastCacheEntryView> out;
  out.reserve(entries_.size());
  const obs::Clock::TimePoint now = clock_->Now();
  for (const CastCacheKey& key : lru_) {
    const Entry& entry = entries_.at(key);
    out.push_back({key, entry.bytes, entry.hits,
                   obs::Clock::ToMillis(now - entry.inserted_at)});
  }
  return out;
}

CastCacheStats CastCache::Stats() const {
  std::lock_guard lock(mu_);
  CastCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.coalesced_waits = coalesced_;
  stats.evictions = evictions_;
  stats.insertions = insertions_;
  stats.bytes = bytes_;
  stats.entries = static_cast<int64_t>(entries_.size());
  return stats;
}

void CastCache::BindMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard lock(mu_);
  m_hits_ = registry->GetCounter(
      obs::SeriesName("bigdawg_cast_cache_events_total", {{"event", "hit"}}));
  m_misses_ = registry->GetCounter(
      obs::SeriesName("bigdawg_cast_cache_events_total", {{"event", "miss"}}));
  m_coalesced_ = registry->GetCounter(obs::SeriesName(
      "bigdawg_cast_cache_events_total", {{"event", "coalesced_wait"}}));
  m_evictions_ = registry->GetCounter(obs::SeriesName(
      "bigdawg_cast_cache_events_total", {{"event", "eviction"}}));
  m_bytes_ = registry->GetGauge("bigdawg_cast_cache_bytes");
  m_entries_ = registry->GetGauge("bigdawg_cast_cache_entries");
  PublishGaugesLocked();
}

void CastCache::InsertLocked(const CastCacheKey& key, CachedValue value,
                             int64_t bytes) {
  // An entry bigger than the whole budget would evict everything and then
  // not fit; don't cache it.
  if (bytes > max_bytes_) return;
  if (entries_.count(key) > 0) return;
  lru_.push_front(key);
  Entry entry;
  entry.value = std::move(value);
  entry.bytes = bytes;
  entry.inserted_at = clock_->Now();
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_ += bytes;
  ++insertions_;
  while (bytes_ > max_bytes_ && !lru_.empty()) EvictOneLocked();
  PublishGaugesLocked();
}

void CastCache::EvictOneLocked() {
  const CastCacheKey victim = lru_.back();
  auto it = entries_.find(victim);
  bytes_ -= it->second.bytes;
  entries_.erase(it);
  lru_.pop_back();
  ++evictions_;
  if (m_evictions_ != nullptr) m_evictions_->Increment();
}

void CastCache::DropAllLocked() {
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  PublishGaugesLocked();
}

void CastCache::PublishGaugesLocked() {
  if (m_bytes_ != nullptr) m_bytes_->Set(static_cast<double>(bytes_));
  if (m_entries_ != nullptr) {
    m_entries_->Set(static_cast<double>(entries_.size()));
  }
}

}  // namespace bigdawg::core
