#ifndef BIGDAWG_CORE_CAST_H_
#define BIGDAWG_CORE_CAST_H_

#include <string>
#include <vector>

#include "array/array.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "d4m/assoc_array.h"
#include "relational/table.h"
#include "tiledb/tiledb.h"

namespace bigdawg::core {

/// \brief Data models objects can be CAST between.
enum class DataModel : int { kRelation, kArray, kAssociative, kTileMatrix };

Result<DataModel> DataModelFromString(const std::string& name);
const char* DataModelToString(DataModel model);

/// \brief The data model an engine natively stores (the text and stream
/// engines surface their data relationally through the shims). Used to
/// label the `from` side of CAST trace spans.
const char* DataModelNameForEngine(const std::string& engine);

/// \brief Rough wire size of a relation: 8 bytes per scalar cell, string
/// lengths for strings, 1 byte per NULL. This is the `bytes` tag on CAST
/// trace spans — an estimate of how much data the cast moved between
/// engines, not an exact allocation count. Delegates to the block-carried
/// Table::ByteSize() memo, so it is O(1) after the block's first
/// measurement instead of an O(cells) rescan.
int64_t EstimateTableBytes(const relational::Table& table);

/// \brief Rough resident size of an array: allocated chunk storage
/// (chunks x chunk volume x attributes x 8 bytes) plus the filled bitmap.
/// Used by the cast cache for its byte accounting. O(1): chunk-count
/// metadata, no cell scan.
int64_t EstimateArrayBytes(const array::Array& array);

/// \brief Rough resident size of an associative array: key lengths plus
/// 8 bytes per numeric value, string lengths for strings. Used by the
/// cast cache for its byte accounting. Delegates to the block-carried
/// AssocArray::ByteSize() memo — O(1) after the first measurement.
int64_t EstimateAssocBytes(const d4m::AssocArray& assoc);

// ---------------------------------------------------------------------------
// Direct (in-memory, binary) casts — the efficient path the paper calls
// for ("an access method that knows how to read binary data in parallel
// directly from another engine").
// ---------------------------------------------------------------------------

/// \brief Relation -> array. Integer columns become dimensions (in schema
/// order), numeric columns become attributes. Requires >= 1 int64 column
/// and >= 1 double column; rows with NULL dimension cells are rejected.
/// Dimension ranges are derived from the data; `chunk_length` applies to
/// every dimension.
Result<array::Array> TableToArray(const relational::Table& table,
                                  int64_t chunk_length = 256);

/// \brief Array -> relation: one row per non-empty cell, dimensions first
/// (int64), then attributes (double).
Result<relational::Table> ArrayToTable(const array::Array& array);

/// \brief Relation -> associative array. The first column supplies row
/// keys; every other column contributes a (row, column-name, value) cell.
Result<d4m::AssocArray> TableToAssoc(const relational::Table& table);

/// \brief Associative array -> relation of (row, col, value) triples; the
/// value column is double when all values are numeric, string otherwise.
Result<relational::Table> AssocToTable(const d4m::AssocArray& assoc);

/// \brief 2-D array (attribute 0) -> TileDB matrix.
Result<tiledb::TileDbArray> ArrayToTileMatrix(const array::Array& array,
                                              int64_t tile_rows = 64,
                                              int64_t tile_cols = 64);

/// \brief TileDB matrix -> 2-D array with attribute "val".
Result<array::Array> TileMatrixToArray(const tiledb::TileDbArray& matrix,
                                       int64_t chunk_length = 64);

/// \brief Associative array -> 2-D array: row/col keys are ordinally
/// encoded (sorted order); only numeric cells transfer.
Result<array::Array> AssocToArray(const d4m::AssocArray& assoc);

// ---------------------------------------------------------------------------
// Serialized casts. The binary pair is the wire format a cross-engine
// shim would stream; the CSV pair is the file-based import/export
// baseline the paper says direct casts must beat (experiment C4).
// ---------------------------------------------------------------------------

/// \brief Serializes a relation to the compact binary wire format.
std::string TableToBinary(const relational::Table& table);
/// \brief Parses the binary wire format back into a relation.
Result<relational::Table> TableFromBinary(const std::string& data);

/// \brief Chunked variant of the binary wire format that serializes and
/// parses row ranges concurrently on `pool` — the paper's "read binary
/// data in parallel directly from another engine". The chunked format is
/// distinct from (not interchangeable with) the TableToBinary format.
std::string TableToBinaryParallel(const relational::Table& table,
                                  ThreadPool* pool, size_t num_chunks = 0);
Result<relational::Table> TableFromBinaryParallel(const std::string& data,
                                                  ThreadPool* pool);

/// \brief Round-trips a relation through a CSV file on disk (export +
/// re-import), returning the re-imported table. Used as the slow-path
/// baseline; `path` is created/overwritten.
Result<relational::Table> TableViaCsvFile(const relational::Table& table,
                                          const std::string& path);

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_CAST_H_
