#ifndef BIGDAWG_CORE_ISLANDS_H_
#define BIGDAWG_CORE_ISLANDS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "array/array_engine.h"
#include "core/catalog.h"
#include "core/island.h"
#include "core/sharding.h"
#include "d4m/assoc_array.h"
#include "kvstore/text_store.h"
#include "relational/database.h"
#include "stream/stream_engine.h"
#include "tiledb/tiledb.h"

namespace bigdawg::core {

/// \brief Non-owning handles to every storage engine in the federation.
struct EngineSet {
  relational::Database* relational = nullptr;
  array::ArrayEngine* array = nullptr;
  kvstore::TextStore* text = nullptr;
  stream::StreamEngine* stream = nullptr;
  tiledb::TileDbEngine* tiledb = nullptr;
  /// Middleware-resident associative store (D4M materializations).
  std::map<std::string, d4m::AssocArray>* assoc = nullptr;
  /// Shard-instance pools + scatter machinery; islands consult it to push
  /// distributive work down to the shards of a partitioned object instead
  /// of gathering the whole object first. Null disables pushdown.
  ShardRuntime* shards = nullptr;
};

/// \brief Fetches any catalog object as a relational table (applying the
/// appropriate engine-specific conversion). Provided by BigDawg.
using ObjectFetcher =
    std::function<Result<relational::Table>(const std::string& object)>;

/// \brief Fetches any catalog object as an n-d array (casting relations
/// when needed).
using ArrayFetcher = std::function<Result<array::Array>(const std::string& object)>;

/// \brief Fetches any catalog object as a D4M associative array.
using AssocFetcher = std::function<Result<d4m::AssocArray>(const std::string& object)>;

/// \brief The relational island: SQL over every engine that can expose a
/// relation.
///
/// In multi-engine mode (the paper's intersection semantics) only reads
/// are allowed and table names resolve through the catalog, shimming
/// non-relational objects into relations. In degenerate mode it exposes
/// the full native functionality (DDL/DML included) of the relational
/// engine alone.
class RelationalIsland final : public Island {
 public:
  RelationalIsland(std::string name, EngineSet engines, Catalog* catalog,
                   ObjectFetcher fetcher, bool degenerate)
      : name_(std::move(name)),
        engines_(engines),
        catalog_(catalog),
        fetcher_(std::move(fetcher)),
        degenerate_(degenerate) {}

  std::string name() const override { return name_; }
  Result<relational::Table> Execute(const std::string& query) override;
  std::string language_summary() const override {
    return degenerate_ ? "full SQL (single engine)" : "SQL subset (reads, shimmed)";
  }

 private:
  /// Scalar-aggregate pushdown for a sharded postgres-homed table: plans
  /// one partial query per shard (pruned to the owning shard for
  /// key-equality point queries), scatters them, and recombines the
  /// distributive partials into the exact whole-table answer. Any failure
  /// falls back to the caller's gather path.
  Result<relational::Table> ExecuteShardedAggregate(
      const relational::SelectStatement& stmt, const ObjectSnapshot& snap);

  std::string name_;
  EngineSet engines_;
  Catalog* catalog_;
  ObjectFetcher fetcher_;
  bool degenerate_;
};

/// \brief The array island: AFL-style functional queries; non-array
/// catalog objects are shimmed in by CAST-to-array.
class ArrayIsland final : public Island {
 public:
  ArrayIsland(std::string name, EngineSet engines, Catalog* catalog,
              ArrayFetcher fetcher, bool degenerate)
      : name_(std::move(name)),
        engines_(engines),
        catalog_(catalog),
        fetcher_(std::move(fetcher)),
        degenerate_(degenerate) {}

  std::string name() const override { return name_; }
  Result<relational::Table> Execute(const std::string& query) override;
  std::string language_summary() const override {
    return "AFL-style operators (subarray/filter/aggregate/window/matmul)";
  }

  /// Raw array result (used when a caller needs the array, not a table).
  Result<array::Array> ExecuteToArray(const std::string& query);

 private:
  /// Global-aggregate pushdown for a sharded scidb-homed array: each
  /// shard scans only its fragment into {count, sum, sumsq, min, max}
  /// partials, recombined into the engine's exact one-cell output. Any
  /// failure falls back to the caller's gather path.
  Result<array::Array> ExecuteShardedAggregate(const std::string& object,
                                               const std::string& func_name,
                                               const std::string& attr,
                                               const ObjectSnapshot& snap);

  std::string name_;
  EngineSet engines_;
  Catalog* catalog_;
  ArrayFetcher fetcher_;
  bool degenerate_;
};

/// \brief The text island over the key-value engine:
///   SEARCH term [term...]          -> (doc_id, owner, score)
///   PHRASE 'text'                  -> (doc_id, owner, occurrences)
///   OWNERS_WITH_PHRASE 'text' N    -> (owner, matching_docs)
///   GET doc_id                     -> (doc_id, owner, text)
class TextIsland final : public Island {
 public:
  TextIsland(EngineSet engines) : engines_(engines) {}

  std::string name() const override { return "TEXT"; }
  Result<relational::Table> Execute(const std::string& query) override;
  std::string language_summary() const override {
    return "SEARCH / PHRASE / OWNERS_WITH_PHRASE / GET";
  }

 private:
  EngineSet engines_;
};

/// \brief The streaming island over the S-Store engine:
///   STREAM name      -> retained tuples
///   WINDOW name      -> current window contents
///   TABLE name       -> state-table scan
///   ALERTS           -> drains pending alerts
class StreamIsland final : public Island {
 public:
  explicit StreamIsland(EngineSet engines) : engines_(engines) {}

  std::string name() const override { return "STREAM"; }
  Result<relational::Table> Execute(const std::string& query) override;
  std::string language_summary() const override {
    return "STREAM / WINDOW / AGGREGATE / TABLE / ALERTS / STREAMS";
  }

 private:
  EngineSet engines_;
};

/// \brief The D4M island: associative-array algebra over shimmed objects:
///   TRIPLES obj                -> (row, col, value)
///   ROWSUM obj                 -> (row, sum)
///   SUBROW obj prefix          -> triples with row-key prefix
///   TRANSPOSE obj              -> triples
///   MATMUL a b                 -> triples of the associative product
///   ADD a b / MULTIPLY a b     -> triples
class D4mIsland final : public Island {
 public:
  D4mIsland(EngineSet engines, Catalog* catalog, AssocFetcher fetcher)
      : engines_(engines), catalog_(catalog), fetcher_(std::move(fetcher)) {}

  std::string name() const override { return "D4M"; }
  Result<relational::Table> Execute(const std::string& query) override;
  std::string language_summary() const override {
    return "TRIPLES / ROWSUM / SUBROW / TRANSPOSE / MATMUL / ADD / MULTIPLY";
  }

 private:
  /// ROWSUM pushdown for a sharded d4m-homed object: per-shard fragment
  /// row sums are disjoint under row-key hash partitioning, so their
  /// ordered merge is exactly the whole object's RowSums. Any failure
  /// falls back to the caller's gather path.
  Result<relational::Table> ExecuteShardedRowSum(const std::string& object,
                                                 const ObjectSnapshot& snap);

  EngineSet engines_;
  Catalog* catalog_;
  AssocFetcher fetcher_;
};

/// \brief The Myria island: SQL parsed into a Myria relational-algebra
/// plan, run through Myria's optimizer, executed over shimmed engines.
/// Iterative plans are available programmatically via myria::ExecutePlan.
class MyriaIsland final : public Island {
 public:
  MyriaIsland(EngineSet engines, Catalog* catalog, ObjectFetcher fetcher)
      : engines_(engines), catalog_(catalog), fetcher_(std::move(fetcher)) {}

  std::string name() const override { return "MYRIA"; }
  Result<relational::Table> Execute(const std::string& query) override;
  std::string language_summary() const override {
    return "SQL -> optimized relational algebra (+ iteration via API)";
  }

 private:
  EngineSet engines_;
  Catalog* catalog_;
  ObjectFetcher fetcher_;
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_ISLANDS_H_
