#ifndef BIGDAWG_CORE_BIGDAWG_H_
#define BIGDAWG_CORE_BIGDAWG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/array_engine.h"
#include "common/result.h"
#include "core/cast.h"
#include "core/catalog.h"
#include "core/island.h"
#include "core/islands.h"
#include "core/monitor.h"
#include "d4m/assoc_array.h"
#include "kvstore/text_store.h"
#include "relational/database.h"
#include "stream/stream_engine.h"
#include "tiledb/tiledb.h"

namespace bigdawg::core {

/// \brief The BigDAWG polystore facade.
///
/// Owns the federation's storage engines, the catalog mapping logical
/// objects to engines (location transparency), the eight islands of
/// information, and the cross-system monitor. Queries enter through
/// Execute(), which implements the paper's SCOPE/CAST surface:
///
///   RELATIONAL(SELECT * FROM CAST(W, relation) WHERE v > 5)
///   ARRAY(aggregate(W, avg, hr, patient))
///   TEXT(OWNERS_WITH_PHRASE 'very sick' 3)
///   STREAM(WINDOW hr_window)
///   D4M(ROWSUM adjacency)
///   MYRIA(SELECT race, COUNT(*) FROM patients GROUP BY race)
///
/// SCOPE = the island name wrapping the query; a query with no SCOPE
/// defaults to the RELATIONAL island. CAST(obj, model) materializes
/// `obj` in the target data model (relation | array | associative |
/// tilematrix) under a temporary catalog name before dispatch; the first
/// argument may itself be a scoped subquery.
class BigDawg {
 public:
  BigDawg();
  ~BigDawg();

  BigDawg(const BigDawg&) = delete;
  BigDawg& operator=(const BigDawg&) = delete;

  // ---- Engines (for loading data and native access) ----
  relational::Database& postgres() { return relational_; }
  array::ArrayEngine& scidb() { return array_; }
  kvstore::TextStore& accumulo() { return text_; }
  stream::StreamEngine& sstore() { return stream_; }
  tiledb::TileDbEngine& tiledb() { return tiledb_; }
  std::map<std::string, d4m::AssocArray>& assoc_store() { return assoc_store_; }

  Catalog& catalog() { return catalog_; }
  Monitor& monitor() { return monitor_; }

  /// Registers a logical object living on an engine. The native object
  /// must already exist there.
  Status RegisterObject(const std::string& object, const std::string& engine,
                        const std::string& native_name);

  // ---- The query surface ----

  /// Executes a (possibly SCOPE-wrapped, CAST-containing) query.
  Result<relational::Table> Execute(const std::string& query);

  /// Islands registered in this polystore (the paper's eight).
  std::vector<std::string> ListIslands() const;
  Result<Island*> GetIsland(const std::string& name);

  // ---- Cross-model access (shims; also used by CAST) ----

  Result<relational::Table> FetchAsTable(const std::string& object);
  Result<array::Array> FetchAsArray(const std::string& object);
  Result<d4m::AssocArray> FetchAsAssoc(const std::string& object);

  /// CAST + store + register: materializes `object` in `target` model
  /// under logical name `new_object`.
  Status CastAndStore(const std::string& object, DataModel target,
                      const std::string& new_object);

  // ---- Monitoring / migration ----

  /// Moves an object to another engine (converting its representation)
  /// and updates the catalog; the old physical copy is dropped.
  Status MigrateObject(const std::string& object, const std::string& target_engine);

  // ---- Replication (the paper's future-work extension) ----

  /// Materializes a read replica of `object` on `target_engine`.
  /// Model-matched fetches (FetchAsArray on a scidb replica, FetchAsTable
  /// on a postgres replica) are served from fresh replicas, avoiding the
  /// cross-model shim. Replicas are read-only; after writing the primary,
  /// call MarkObjectWritten + RefreshReplicas.
  Status ReplicateObject(const std::string& object, const std::string& target_engine);
  Status DropReplica(const std::string& object, const std::string& engine);
  /// Records a primary write (staling every replica).
  Status MarkObjectWritten(const std::string& object);
  /// Re-materializes every stale replica from the primary; returns the
  /// number refreshed.
  Result<int64_t> RefreshReplicas(const std::string& object);

  /// Applies every suggestion the monitor currently makes; returns the
  /// number of objects migrated.
  Result<int64_t> ApplyMigrations();

  /// Drops temporary objects created by CAST. Called automatically when
  /// the outermost Execute() finishes; public for manual cleanup after
  /// direct StoreTableAs-style use.
  void ClearTemporaries();

 private:
  Status StoreTableAs(const relational::Table& table, DataModel model,
                      const std::string& object, bool temporary);
  /// Stores a relation on an engine (converting as needed) under `native`.
  Status StoreTableOnEngine(const relational::Table& table,
                            const std::string& engine, const std::string& native);
  /// Drops a physical object from an engine (best-effort).
  void DropPhysical(const std::string& engine, const std::string& native);
  /// Reads an object's bytes from a specific physical location.
  Result<relational::Table> FetchTableFrom(const std::string& engine,
                                           const std::string& native);

  // SCOPE/CAST machinery (implemented in scope.cc).
  Result<relational::Table> ExecuteScoped(const std::string& island_name,
                                          const std::string& inner_query);
  Result<std::string> RewriteCasts(const std::string& query);

  relational::Database relational_;
  array::ArrayEngine array_;
  kvstore::TextStore text_;
  stream::StreamEngine stream_;
  tiledb::TileDbEngine tiledb_;
  std::map<std::string, d4m::AssocArray> assoc_store_;

  Catalog catalog_;
  Monitor monitor_;
  std::map<std::string, std::unique_ptr<Island>> islands_;
  std::vector<std::string> temporaries_;
  int64_t temp_counter_ = 0;
  int exec_depth_ = 0;
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_BIGDAWG_H_
