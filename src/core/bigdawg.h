#ifndef BIGDAWG_CORE_BIGDAWG_H_
#define BIGDAWG_CORE_BIGDAWG_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "array/array_engine.h"
#include "common/result.h"
#include "core/cast.h"
#include "core/cast_cache.h"
#include "core/catalog.h"
#include "core/exec_context.h"
#include "core/fault_injector.h"
#include "core/island.h"
#include "core/islands.h"
#include "core/monitor.h"
#include "core/sharding.h"
#include "d4m/assoc_array.h"
#include "kvstore/text_store.h"
#include "obs/trace.h"
#include "relational/database.h"
#include "stream/stream_engine.h"
#include "tiledb/tiledb.h"

namespace bigdawg::core {

class StreamAgeOut;
struct StreamAgeOutConfig;

/// One CAST site a query would perform, discovered by PlanCasts without
/// executing anything. Steps appear in execution order: a CAST nested
/// inside a scoped-subquery argument precedes the CAST that consumes it.
struct CastPlanStep {
  std::string source;         ///< the CAST's first argument, verbatim
  std::string from_model;     ///< source data model ("?" when unresolvable)
  std::string to_model;       ///< target data model
  std::string source_engine;  ///< engine homing the source ("" for subqueries)
  bool subquery = false;      ///< source is itself an island-scoped query
};

/// \brief The BigDAWG polystore facade.
///
/// Owns the federation's storage engines, the catalog mapping logical
/// objects to engines (location transparency), the eight islands of
/// information, and the cross-system monitor. Queries enter through
/// Execute(), which implements the paper's SCOPE/CAST surface:
///
///   RELATIONAL(SELECT * FROM CAST(W, relation) WHERE v > 5)
///   ARRAY(aggregate(W, avg, hr, patient))
///   TEXT(OWNERS_WITH_PHRASE 'very sick' 3)
///   STREAM(WINDOW hr_window)
///   D4M(ROWSUM adjacency)
///   MYRIA(SELECT race, COUNT(*) FROM patients GROUP BY race)
///
/// SCOPE = the island name wrapping the query; a query with no SCOPE
/// defaults to the RELATIONAL island. CAST(obj, model) materializes
/// `obj` in the target data model (relation | array | associative |
/// tilematrix) under a temporary catalog name before dispatch; the first
/// argument may itself be a scoped subquery.
class BigDawg {
 public:
  BigDawg();
  ~BigDawg();

  BigDawg(const BigDawg&) = delete;
  BigDawg& operator=(const BigDawg&) = delete;

  // ---- Engines (for loading data and native access) ----
  relational::Database& postgres() { return relational_; }
  array::ArrayEngine& scidb() { return array_; }
  kvstore::TextStore& accumulo() { return text_; }
  stream::StreamEngine& sstore() { return stream_; }
  tiledb::TileDbEngine& tiledb() { return tiledb_; }
  /// Raw access to the middleware-resident associative store, for
  /// single-threaded data loading; concurrent executions go through the
  /// internally locked paths.
  std::map<std::string, d4m::AssocArray>& assoc_store() { return assoc_store_; }

  Catalog& catalog() { return catalog_; }
  Monitor& monitor() { return monitor_; }
  /// The per-engine fault plane. Disabled by default (zero overhead);
  /// chaos tests enable it and script fault schedules. Every engine shim
  /// consults it, so injected faults surface exactly where real engine
  /// outages would.
  FaultInjector& fault_injector() { return fault_; }
  /// The finished-trace sink. Disabled by default (one relaxed load per
  /// query); when enabled — Enable(), or BIGDAWG_TRACE=1 in the
  /// environment — every execution records a span tree here: scope
  /// routing, casts (with bytes moved), shim calls, failovers, and (for
  /// service-submitted queries) attempts, lock waits, backoffs, and
  /// breaker decisions.
  obs::Tracer& tracer() { return tracer_; }
  /// The shared cast-result cache. Cross-model fetches (FetchAsTable of
  /// an array, FetchAsArray of a relation, ...) consult it before any
  /// shim runs; native same-model reads and CAST temporaries bypass it.
  /// Version bumps (MarkObjectWritten) make stale entries unreachable;
  /// they age out via LRU. BIGDAWG_CAST_CACHE=0 disables it at startup.
  CastCache& cast_cache() { return cast_cache_; }

  /// Registers a logical object living on an engine. The native object
  /// must already exist there.
  Status RegisterObject(const std::string& object, const std::string& engine,
                        const std::string& native_name);

  // ---- The query surface ----

  /// Executes a (possibly SCOPE-wrapped, CAST-containing) query with an
  /// anonymous per-call execution context.
  Result<relational::Table> Execute(const std::string& query);

  /// Executes a query under a caller-provided context. The context
  /// carries the CAST temp-object namespace (so concurrent executions
  /// cannot collide), the cooperative cancellation flag, and the
  /// deadline; exec::QueryService threads one per submitted query.
  Result<relational::Table> Execute(const std::string& query, ExecContext* ctx);

  /// Dry-runs the CAST analysis of a query: parses out every CAST site
  /// (recursing into scoped-subquery sources) and reports what data would
  /// move where, touching only the catalog — no engine is contacted and
  /// nothing executes. EXPLAIN is built on this.
  Result<std::vector<CastPlanStep>> PlanCasts(const std::string& query);

  /// Islands registered in this polystore (the paper's eight).
  std::vector<std::string> ListIslands() const;
  Result<Island*> GetIsland(const std::string& name);

  // ---- Cross-model access (shims; also used by CAST) ----

  Result<relational::Table> FetchAsTable(const std::string& object);
  Result<array::Array> FetchAsArray(const std::string& object);
  Result<d4m::AssocArray> FetchAsAssoc(const std::string& object);

  /// CAST + store + register: materializes `object` in `target` model
  /// under logical name `new_object`.
  Status CastAndStore(const std::string& object, DataModel target,
                      const std::string& new_object);

  // ---- Monitoring / migration ----

  /// Moves an object to another engine (converting its representation)
  /// and updates the catalog; the old physical copy is dropped.
  Status MigrateObject(const std::string& object, const std::string& target_engine);

  /// Materializes a point-in-time copy of `object` on `engine` under the
  /// new logical name `copy_name` (registered in the catalog with its own
  /// instance id). The copy is independent of the original — writes to
  /// one never touch the other. The adaptive-placement shadow executor
  /// measures candidate placements on such copies; pair with DropObject.
  Status CopyObjectTo(const std::string& object, const std::string& engine,
                      const std::string& copy_name);

  /// Unregisters `object` and drops its physical bytes (primary and any
  /// replicas). FailedPrecondition for sharded objects — UnshardObject
  /// collapses a placement first.
  Status DropObject(const std::string& object);

  // ---- Replication (the paper's future-work extension) ----

  /// Materializes a read replica of `object` on `target_engine`.
  /// Model-matched fetches (FetchAsArray on a scidb replica, FetchAsTable
  /// on a postgres replica) are served from fresh replicas, avoiding the
  /// cross-model shim. Replicas are read-only; after writing the primary,
  /// call MarkObjectWritten + RefreshReplicas.
  Status ReplicateObject(const std::string& object, const std::string& target_engine);
  Status DropReplica(const std::string& object, const std::string& engine);
  /// Records a primary write (staling every replica).
  Status MarkObjectWritten(const std::string& object);
  /// Re-materializes every stale replica from the primary; returns the
  /// number refreshed.
  Result<int64_t> RefreshReplicas(const std::string& object);

  /// Applies every suggestion the monitor currently makes; returns the
  /// number of objects migrated.
  Result<int64_t> ApplyMigrations();

  // ---- Sharding (partitioned objects across engine instances) ----

  /// The pool of numbered engine instances sharded objects live on, and
  /// the scatter-gather machinery the islands reuse.
  ShardRuntime& shards() { return shard_runtime_; }

  /// Partitions `object` across `shard_count` instances of its home
  /// engine. Tables hash on `key` (default: the first column), assoc
  /// arrays hash on the row key, arrays range-partition on `key`
  /// (default: the first dimension). The object's bytes move from the
  /// base engine into per-shard fragments; reads reassemble them
  /// transparently, and the relational/array/D4M islands push distributive
  /// aggregates down to the shards. Safe to call on an already-sharded
  /// object (repartition: readers mid-flight retry against the new
  /// layout). `shard_count == 1` is a real single-shard placement.
  Status ShardObject(const std::string& object, int shard_count,
                     const std::string& key = "");
  /// ShardObject with the BIGDAWG_SHARDS default shard count.
  Status ShardObject(const std::string& object);
  /// Gathers the fragments back into one object on the base engine and
  /// removes the placement.
  Status UnshardObject(const std::string& object);
  /// The BIGDAWG_SHARDS environment default (4 when unset/invalid).
  static int DefaultShardCount();

  // ---- Stream age-out (streaming island -> array engine) ----

  /// Installs the age-out pipeline: rows the stream engine's retention
  /// evicts are batched and CAST into the array engine as per-stream
  /// `<stream>__history` objects, each flush bumping the object's catalog
  /// version so cached cross-model reads can never serve stale bytes.
  /// Call after streams are defined and before sstore().Start().
  Status EnableStreamAgeOut();
  Status EnableStreamAgeOut(const StreamAgeOutConfig& config);
  /// The installed pipeline, or null when not enabled.
  StreamAgeOut* stream_ageout() { return stream_ageout_.get(); }

  /// Stores a relation as `object` on the array engine and registers it
  /// in the catalog (bumping the version when it already exists). The
  /// age-out pipeline's store primitive; goes through the fault plane
  /// like every other engine write.
  Status StoreStreamHistory(const std::string& object,
                            const relational::Table& table);

 private:
  /// Stores a relation under `object` in the target model. When
  /// `temp_owner` is non-null the object is registered as a CAST
  /// temporary of that execution and dropped when it finishes.
  Status StoreTableAs(const relational::Table& table, DataModel model,
                      const std::string& object, ExecContext* temp_owner);
  /// Drops the CAST temporaries a finished execution created.
  void ClearTemporaries(ExecContext* ctx);
  /// Stores a relation on an engine (converting as needed) under `native`.
  Status StoreTableOnEngine(const relational::Table& table,
                            const std::string& engine, const std::string& native);
  /// Drops a physical object from an engine (best-effort).
  void DropPhysical(const std::string& engine, const std::string& native);
  /// One fault-plane check guarding an engine touch: applies the
  /// injector's schedule, records the call in the monitor's health view,
  /// and stamps the failing engine on the active execution context.
  Status CheckEngine(const std::string& engine);
  /// True when reads should route away from `engine`: it is inside an
  /// injected down window, or the query service's breaker for it is open.
  bool EngineConsideredDown(const std::string& engine) const;
  /// Serves a read of `object` from a fresh replica on a healthy engine
  /// when the primary is down; Unavailable when none can.
  Result<relational::Table> FailoverFetch(const std::string& object,
                                          const ObjectLocation& primary);
  /// Reads an object's bytes from a specific physical location.
  Result<relational::Table> FetchTableFrom(const std::string& engine,
                                           const std::string& native);

  // ---- Sharded-object internals ----

  /// One attempt at a cross-model fetch (the pre-sharding Fetch* bodies).
  /// The public wrappers retry on NotFound caused by a concurrent
  /// repartition retiring the physical names a snapshot pointed at.
  Result<relational::Table> FetchAsTableOnce(const std::string& object);
  Result<array::Array> FetchAsArrayOnce(const std::string& object);
  Result<d4m::AssocArray> FetchAsAssocOnce(const std::string& object);

  /// Gathers a sharded object's fragments in its HOME model (table for
  /// postgres, array for scidb, assoc for d4m) with bounded retries
  /// against concurrent repartitions, per-shard failure handling, and
  /// whole-object replica failover. Cross-model Fetch* wrappers convert
  /// the gathered result, mirroring the unsharded conversion path.
  Result<relational::Table> GatherShardedTable(const std::string& object,
                                               const ObjectSnapshot& snap);
  Result<array::Array> GatherShardedArray(const std::string& object,
                                          const ObjectSnapshot& snap);
  Result<d4m::AssocArray> GatherShardedAssoc(const std::string& object,
                                             const ObjectSnapshot& snap);
  /// One shard's fragment read, through the per-shard cast cache entry
  /// (params "s<i>@e<epoch>", version = that shard's write version).
  Result<relational::Table> FetchTableFragment(const std::string& object,
                                               const ObjectSnapshot& snap,
                                               int shard);
  Result<array::Array> FetchArrayFragment(const std::string& object,
                                          const ObjectSnapshot& snap,
                                          int shard);
  Result<d4m::AssocArray> FetchAssocFragment(const std::string& object,
                                             const ObjectSnapshot& snap,
                                             int shard);
  /// Fetches the whole object in its home model (table/array/assoc by
  /// engine), bypassing islands; used by repartitioning.
  Result<relational::Table> FetchWholeTableForShard(const ObjectSnapshot& snap,
                                                    const std::string& object);
  /// Writes fragment `shard` of the new layout and returns OK only when
  /// the store took (fault plane consulted with the instance name).
  Status StoreFragment(const std::string& engine, int shard,
                       const std::string& native,
                       const relational::Table* table,
                       const array::Array* array,
                       const d4m::AssocArray* assoc);
  /// Drops one epoch's fragments from the shard instances (best-effort).
  void DropFragments(const std::string& engine, const std::string& native,
                     const ShardPlacement& placement);

  // Routing bodies behind the cache-aware Fetch* wrappers: down-check,
  // replica preference, engine dispatch. `shim_span` is the wrapper's
  // span (for replica tags); `trace` may be null.
  Result<relational::Table> FetchTableRouted(const std::string& object,
                                             const ObjectLocation& loc,
                                             obs::SpanGuard* shim_span,
                                             obs::Trace* trace);
  Result<array::Array> FetchArrayRouted(const std::string& object,
                                        const ObjectLocation& loc,
                                        obs::SpanGuard* shim_span,
                                        obs::Trace* trace);
  Result<d4m::AssocArray> FetchAssocRouted(const std::string& object,
                                           const ObjectLocation& loc);
  /// Stamps the cache outcome on the active context and the shim span.
  void StampCacheOutcome(CastCacheOutcome outcome, int64_t bytes, bool ok,
                         obs::SpanGuard* shim_span, obs::Trace* trace);

  // SCOPE/CAST machinery (implemented in scope.cc).
  Result<relational::Table> ExecuteScoped(const std::string& island_name,
                                          const std::string& inner_query,
                                          ExecContext* ctx);
  Result<std::string> RewriteCasts(const std::string& query, ExecContext* ctx);
  /// Recursive worker behind PlanCasts; appends steps in execution order.
  Status PlanCastsInto(const std::string& query,
                       std::vector<CastPlanStep>* steps);

  relational::Database relational_;
  array::ArrayEngine array_;
  kvstore::TextStore text_;
  stream::StreamEngine stream_;
  tiledb::TileDbEngine tiledb_;
  std::map<std::string, d4m::AssocArray> assoc_store_;

  Catalog catalog_;
  Monitor monitor_;
  FaultInjector fault_;
  ShardRuntime shard_runtime_;
  CastCache cast_cache_;
  obs::Tracer tracer_;
  std::map<std::string, std::unique_ptr<Island>> islands_;
  /// The stream -> array-engine age-out pipeline (null until enabled).
  std::unique_ptr<StreamAgeOut> stream_ageout_;
  /// Sequence for anonymous ExecContext temp namespaces.
  std::atomic<int64_t> ctx_seq_{0};
  /// The context of the execution running on this thread, so engine
  /// shims reached through island fetcher lambdas (which carry no
  /// context) can stamp resilience bookkeeping onto it. Set by
  /// Execute(query, ctx), restored on exit (nested Execute calls share
  /// the outer context). A function-local thread_local behind an
  /// accessor rather than a static thread_local data member: GCC's
  /// extern-TLS wrapper for the data-member form trips a
  /// -fsanitize=null false positive ("store to null pointer") when the
  /// member is written from another translation unit.
  static ExecContext*& ActiveCtx();
  /// Guards assoc_store_: unlike the engines, which synchronize
  /// internally, the middleware-resident associative store is a plain
  /// map. The accessor above is for single-threaded loading only.
  mutable std::shared_mutex assoc_mu_;
};

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_BIGDAWG_H_
