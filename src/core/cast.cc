#include "core/cast.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "common/binary_io.h"
#include "common/columnar.h"
#include "common/csv.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/catalog.h"

namespace bigdawg::core {

Result<DataModel> DataModelFromString(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "relation" || lower == "relational" || lower == "table") {
    return DataModel::kRelation;
  }
  if (lower == "array") return DataModel::kArray;
  if (lower == "assoc" || lower == "associative") return DataModel::kAssociative;
  if (lower == "tile" || lower == "tilematrix") return DataModel::kTileMatrix;
  return Status::InvalidArgument("unknown data model: " + name);
}

const char* DataModelToString(DataModel model) {
  switch (model) {
    case DataModel::kRelation:
      return "relation";
    case DataModel::kArray:
      return "array";
    case DataModel::kAssociative:
      return "associative";
    case DataModel::kTileMatrix:
      return "tilematrix";
  }
  return "?";
}

const char* DataModelNameForEngine(const std::string& engine) {
  if (engine == kEngineSciDb) return "array";
  if (engine == kEngineTileDb) return "tilematrix";
  if (engine == kEngineD4m) return "associative";
  // postgres, and the text (accumulo) / streaming (sstore) engines whose
  // shims surface data relationally.
  return "relation";
}

int64_t EstimateTableBytes(const relational::Table& table) {
  // Block-carried metadata: O(1) after the block's first measurement.
  return table.ByteSize();
}

int64_t EstimateArrayBytes(const array::Array& array) {
  return array.ByteSize();
}

int64_t EstimateAssocBytes(const d4m::AssocArray& assoc) {
  return assoc.ByteSize();
}

Result<array::Array> TableToArray(const relational::Table& table,
                                  int64_t chunk_length) {
  std::vector<size_t> dim_cols;
  std::vector<size_t> attr_cols;
  for (size_t i = 0; i < table.schema().num_fields(); ++i) {
    const Field& f = table.schema().field(i);
    if (f.type == DataType::kInt64) {
      dim_cols.push_back(i);
    } else if (f.type == DataType::kDouble) {
      attr_cols.push_back(i);
    } else {
      return Status::TypeError("column '" + f.name +
                               "' is neither int64 (dimension) nor double "
                               "(attribute); CAST to array unsupported");
    }
  }
  if (dim_cols.empty()) {
    return Status::FailedPrecondition("relation has no int64 dimension column");
  }
  if (attr_cols.empty()) {
    return Status::FailedPrecondition("relation has no double attribute column");
  }

  // Columnar passes over shared slices: bounds come from one contiguous
  // scan per dimension column, with the null bitmap checked up front.
  const size_t n = table.num_rows();
  if (n == 0) {
    return Status::FailedPrecondition("cannot CAST an empty relation to array");
  }
  std::vector<common::ColumnView> dim_views;
  dim_views.reserve(dim_cols.size());
  for (size_t c : dim_cols) dim_views.push_back(table.ColumnAt(c));
  std::vector<int64_t> lo(dim_cols.size(), 0), hi(dim_cols.size(), 0);
  for (size_t d = 0; d < dim_cols.size(); ++d) {
    const common::ColumnView& view = dim_views[d];
    if (view.null_count() > 0) {
      return Status::InvalidArgument("NULL in dimension column '" +
                                     table.schema().field(dim_cols[d]).name +
                                     "'");
    }
    lo[d] = hi[d] = view[0].int64_unchecked();
    for (size_t r = 1; r < n; ++r) {
      int64_t coord = view[r].int64_unchecked();
      lo[d] = std::min(lo[d], coord);
      hi[d] = std::max(hi[d], coord);
    }
  }

  std::vector<array::Dimension> dims;
  for (size_t d = 0; d < dim_cols.size(); ++d) {
    dims.emplace_back(table.schema().field(dim_cols[d]).name, lo[d],
                      hi[d] - lo[d] + 1, chunk_length);
  }
  std::vector<std::string> attrs;
  for (size_t a : attr_cols) attrs.push_back(table.schema().field(a).name);

  BIGDAWG_ASSIGN_OR_RETURN(array::Array out,
                           array::Array::Create(std::move(dims), std::move(attrs)));
  std::vector<common::ColumnView> attr_views;
  attr_views.reserve(attr_cols.size());
  for (size_t c : attr_cols) attr_views.push_back(table.ColumnAt(c));
  array::Coordinates coords(dim_cols.size());
  std::vector<double> values(attr_cols.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t d = 0; d < dim_cols.size(); ++d) {
      coords[d] = dim_views[d][r].int64_unchecked();
    }
    for (size_t a = 0; a < attr_cols.size(); ++a) {
      const common::ColumnView& view = attr_views[a];
      values[a] = view.IsNull(r) ? 0.0 : view[r].double_unchecked();
    }
    BIGDAWG_RETURN_NOT_OK(out.Set(coords, values));
  }
  return out;
}

Result<relational::Table> ArrayToTable(const array::Array& array) {
  std::vector<Field> fields;
  for (const array::Dimension& d : array.dims()) {
    fields.emplace_back(d.name, DataType::kInt64);
  }
  for (const std::string& a : array.attrs()) {
    fields.emplace_back(a, DataType::kDouble);
  }
  relational::Table out{Schema(std::move(fields))};
  array.Scan([&out](const array::Coordinates& coords,
                    const std::vector<double>& values) {
    Row row;
    row.reserve(coords.size() + values.size());
    for (int64_t c : coords) row.emplace_back(c);
    for (double v : values) row.emplace_back(v);
    out.AppendUnchecked(std::move(row));
    return true;
  });
  return out;
}

Result<d4m::AssocArray> TableToAssoc(const relational::Table& table) {
  if (table.schema().num_fields() < 2) {
    return Status::FailedPrecondition(
        "CAST to associative needs a key column plus >= 1 value column");
  }
  // Columnar pass over shared slices: one contiguous scan per column
  // instead of a variant hop per cell of every row, and the null bitmap
  // answers "structural zero?" without touching the value.
  const size_t n = table.num_rows();
  common::ColumnView keys = table.ColumnAt(0);
  std::vector<std::string> row_keys(n);
  for (size_t r = 0; r < n; ++r) {
    if (!keys.IsNull(r)) row_keys[r] = keys[r].ToString();
  }
  d4m::AssocArray out;
  for (size_t c = 1; c < table.schema().num_fields(); ++c) {
    common::ColumnView col = table.ColumnAt(c);
    const std::string& col_key = table.schema().field(c).name;
    for (size_t r = 0; r < n; ++r) {
      if (keys.IsNull(r) || col.IsNull(r)) continue;
      out.Set(row_keys[r], col_key, col[r]);
    }
  }
  return out;
}

Result<relational::Table> AssocToTable(const d4m::AssocArray& assoc) {
  bool all_numeric = true;
  assoc.ForEach([&all_numeric](const std::string&, const std::string&, const Value& v) {
    if (!v.ToNumeric().ok()) all_numeric = false;
  });
  Schema schema({Field("row", DataType::kString), Field("col", DataType::kString),
                 Field("value", all_numeric ? DataType::kDouble : DataType::kString)});
  relational::Table out{schema};
  assoc.ForEach([&](const std::string& r, const std::string& c, const Value& v) {
    Value cell = all_numeric ? Value(*v.ToNumeric()) : Value(v.ToString());
    out.AppendUnchecked({Value(r), Value(c), std::move(cell)});
  });
  return out;
}

Result<tiledb::TileDbArray> ArrayToTileMatrix(const array::Array& array,
                                              int64_t tile_rows,
                                              int64_t tile_cols) {
  if (array.num_dims() != 2) {
    return Status::FailedPrecondition("CAST to tilematrix requires a 2-D array");
  }
  const auto& dims = array.dims();
  tiledb::TileSchema schema{dims[0].length, dims[1].length, tile_rows, tile_cols};
  BIGDAWG_ASSIGN_OR_RETURN(tiledb::TileDbArray out, tiledb::TileDbArray::Create(schema));
  Status st = Status::OK();
  array.Scan([&](const array::Coordinates& coords, const std::vector<double>& values) {
    st = out.Write(coords[0] - dims[0].start, coords[1] - dims[1].start, values[0]);
    return st.ok();
  });
  BIGDAWG_RETURN_NOT_OK(st);
  BIGDAWG_RETURN_NOT_OK(out.Consolidate());
  return out;
}

Result<array::Array> TileMatrixToArray(const tiledb::TileDbArray& matrix,
                                       int64_t chunk_length) {
  const tiledb::TileSchema& ts = matrix.schema();
  BIGDAWG_ASSIGN_OR_RETURN(
      array::Array out,
      array::Array::Create({array::Dimension("row", 0, ts.rows, chunk_length),
                            array::Dimension("col", 0, ts.cols, chunk_length)},
                           {"val"}));
  Status st = Status::OK();
  matrix.ForEachNonZero([&](int64_t r, int64_t c, double v) {
    if (st.ok()) st = out.Set({r, c}, {v});
  });
  BIGDAWG_RETURN_NOT_OK(st);
  return out;
}

Result<array::Array> AssocToArray(const d4m::AssocArray& assoc) {
  std::vector<std::string> rows = assoc.RowKeys();
  std::vector<std::string> cols = assoc.ColKeys();
  if (rows.empty() || cols.empty()) {
    return Status::FailedPrecondition("cannot CAST an empty associative array");
  }
  std::map<std::string, int64_t> row_index, col_index;
  for (size_t i = 0; i < rows.size(); ++i) row_index[rows[i]] = static_cast<int64_t>(i);
  for (size_t i = 0; i < cols.size(); ++i) col_index[cols[i]] = static_cast<int64_t>(i);
  BIGDAWG_ASSIGN_OR_RETURN(
      array::Array out,
      array::Array::Create(
          {array::Dimension("row", 0, static_cast<int64_t>(rows.size()), 64),
           array::Dimension("col", 0, static_cast<int64_t>(cols.size()), 64)},
          {"val"}));
  Status st = Status::OK();
  assoc.ForEach([&](const std::string& r, const std::string& c, const Value& v) {
    Result<double> num = v.ToNumeric();
    if (!num.ok() || !st.ok()) return;
    st = out.Set({row_index[r], col_index[c]}, {*num});
  });
  BIGDAWG_RETURN_NOT_OK(st);
  return out;
}

std::string TableToBinary(const relational::Table& table) {
  BinaryWriter writer;
  writer.PutSchema(table.schema());
  writer.PutUint32(static_cast<uint32_t>(table.num_rows()));
  for (const Row& row : table.rows()) writer.PutRow(row);
  return writer.Release();
}

Result<relational::Table> TableFromBinary(const std::string& data) {
  BinaryReader reader(data);
  BIGDAWG_ASSIGN_OR_RETURN(Schema schema, reader.GetSchema());
  BIGDAWG_ASSIGN_OR_RETURN(uint32_t n, reader.GetUint32());
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(Row row, reader.GetRow());
    rows.push_back(std::move(row));
  }
  return relational::Table(std::move(schema), std::move(rows));
}

std::string TableToBinaryParallel(const relational::Table& table,
                                  ThreadPool* pool, size_t num_chunks) {
  if (num_chunks == 0) num_chunks = std::max<size_t>(1, pool->num_threads());
  const size_t n = table.num_rows();
  num_chunks = std::max<size_t>(1, std::min(num_chunks, std::max<size_t>(1, n)));
  const size_t per_chunk = (n + num_chunks - 1) / num_chunks;

  std::vector<std::string> chunk_bytes(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    pool->Submit([c, per_chunk, n, &table, &chunk_bytes] {
      BinaryWriter writer;
      const size_t begin = c * per_chunk;
      const size_t end = std::min(n, begin + per_chunk);
      writer.PutUint32(static_cast<uint32_t>(end > begin ? end - begin : 0));
      for (size_t r = begin; r < end; ++r) writer.PutRow(table.rows()[r]);
      chunk_bytes[c] = writer.Release();
    });
  }
  pool->WaitIdle();

  BinaryWriter header;
  header.PutSchema(table.schema());
  header.PutUint32(static_cast<uint32_t>(num_chunks));
  for (const std::string& chunk : chunk_bytes) {
    header.PutUint32(static_cast<uint32_t>(chunk.size()));
  }
  std::string out = header.Release();
  for (std::string& chunk : chunk_bytes) out += chunk;
  return out;
}

Result<relational::Table> TableFromBinaryParallel(const std::string& data,
                                                  ThreadPool* pool) {
  BinaryReader reader(data);
  BIGDAWG_ASSIGN_OR_RETURN(Schema schema, reader.GetSchema());
  BIGDAWG_ASSIGN_OR_RETURN(uint32_t num_chunks, reader.GetUint32());
  std::vector<uint32_t> lengths(num_chunks);
  for (uint32_t c = 0; c < num_chunks; ++c) {
    BIGDAWG_ASSIGN_OR_RETURN(lengths[c], reader.GetUint32());
  }
  // Compute chunk extents; validate total size.
  size_t offset = reader.position();
  std::vector<std::pair<size_t, size_t>> extents;  // (begin, length)
  for (uint32_t c = 0; c < num_chunks; ++c) {
    extents.emplace_back(offset, lengths[c]);
    offset += lengths[c];
  }
  if (offset != data.size()) {
    return Status::ParseError("chunked binary relation has trailing/missing bytes");
  }

  std::vector<std::vector<Row>> chunk_rows(num_chunks);
  std::vector<Status> statuses(num_chunks);
  for (uint32_t c = 0; c < num_chunks; ++c) {
    pool->Submit([c, &data, &extents, &chunk_rows, &statuses] {
      BinaryReader chunk_reader(
          std::string_view(data).substr(extents[c].first, extents[c].second));
      statuses[c] = [&]() -> Status {
        BIGDAWG_ASSIGN_OR_RETURN(uint32_t n, chunk_reader.GetUint32());
        chunk_rows[c].reserve(n);
        for (uint32_t r = 0; r < n; ++r) {
          BIGDAWG_ASSIGN_OR_RETURN(Row row, chunk_reader.GetRow());
          chunk_rows[c].push_back(std::move(row));
        }
        return Status::OK();
      }();
    });
  }
  pool->WaitIdle();
  for (const Status& st : statuses) BIGDAWG_RETURN_NOT_OK(st);

  std::vector<Row> rows;
  for (auto& chunk : chunk_rows) {
    for (Row& row : chunk) rows.push_back(std::move(row));
  }
  return relational::Table(std::move(schema), std::move(rows));
}

Result<relational::Table> TableViaCsvFile(const relational::Table& table,
                                          const std::string& path) {
  {
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open for write: " + path);
    }
    out << RowsToCsv(table.schema(), table.rows());
    if (!out.good()) return Status::IOError("write failed: " + path);
  }
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  BIGDAWG_ASSIGN_OR_RETURN(auto parsed, CsvToRows(buffer.str()));
  return relational::Table(std::move(parsed.first), std::move(parsed.second));
}

}  // namespace bigdawg::core
