#include "core/catalog.h"

#include <mutex>

namespace bigdawg::core {

Status Catalog::Register(ObjectLocation location) {
  std::unique_lock lock(mu_);
  if (objects_.count(location.object) > 0) {
    return Status::AlreadyExists("object already registered: " + location.object);
  }
  Entry entry;
  std::string key = location.object;
  entry.primary = std::move(location);
  entry.instance_id = next_instance_id_++;
  objects_.emplace(std::move(key), std::move(entry));
  return Status::OK();
}

Result<ObjectLocation> Catalog::Lookup(const std::string& object) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  return it->second.primary;
}

Result<ObjectSnapshot> Catalog::Snapshot(const std::string& object) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  return ObjectSnapshot{it->second.primary, it->second.instance_id,
                        it->second.version, it->second.placement};
}

bool Catalog::SnapshotIsCurrent(const std::string& object,
                                const ObjectSnapshot& snapshot) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) return false;
  return it->second.instance_id == snapshot.instance_id &&
         it->second.version == snapshot.version &&
         it->second.placement.epoch == snapshot.placement.epoch;
}

bool Catalog::Contains(const std::string& object) const {
  std::shared_lock lock(mu_);
  return objects_.count(object) > 0;
}

Status Catalog::UpdateLocation(const std::string& object, const std::string& engine,
                               const std::string& native_name) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  it->second.primary.engine = engine;
  it->second.primary.native_name = native_name;
  // A replica on the new primary engine would be self-referential; drop it.
  auto& replicas = it->second.replicas;
  for (auto r = replicas.begin(); r != replicas.end();) {
    if (r->engine == engine) {
      r = replicas.erase(r);
    } else {
      ++r;
    }
  }
  return Status::OK();
}

Status Catalog::Remove(const std::string& object) {
  std::unique_lock lock(mu_);
  if (objects_.erase(object) == 0) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  return Status::OK();
}

std::vector<ObjectLocation> Catalog::List() const {
  std::shared_lock lock(mu_);
  std::vector<ObjectLocation> out;
  out.reserve(objects_.size());
  for (const auto& [name, entry] : objects_) out.push_back(entry.primary);
  return out;
}

std::vector<ObjectLocation> Catalog::ListByEngine(const std::string& engine) const {
  std::shared_lock lock(mu_);
  std::vector<ObjectLocation> out;
  for (const auto& [name, entry] : objects_) {
    if (entry.primary.engine == engine) out.push_back(entry.primary);
  }
  return out;
}

Status Catalog::AddReplica(const std::string& object, const std::string& engine,
                           const std::string& native_name) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  if (it->second.primary.engine == engine) {
    return Status::InvalidArgument("replica engine equals the primary's: " + engine);
  }
  for (const ReplicaLocation& r : it->second.replicas) {
    if (r.engine == engine) {
      return Status::AlreadyExists("replica already exists on " + engine);
    }
  }
  it->second.replicas.push_back({engine, native_name, it->second.version});
  return Status::OK();
}

Status Catalog::RemoveReplica(const std::string& object, const std::string& engine) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  auto& replicas = it->second.replicas;
  for (auto r = replicas.begin(); r != replicas.end(); ++r) {
    if (r->engine == engine) {
      replicas.erase(r);
      return Status::OK();
    }
  }
  return Status::NotFound("no replica of " + object + " on " + engine);
}

std::vector<ReplicaLocation> Catalog::Replicas(const std::string& object) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) return {};
  return it->second.replicas;
}

Result<ReplicaLocation> Catalog::ReplicaOn(const std::string& object,
                                           const std::string& engine) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  for (const ReplicaLocation& r : it->second.replicas) {
    if (r.engine == engine) return r;
  }
  return Status::NotFound("no replica of " + object + " on " + engine);
}

Result<int64_t> Catalog::PrimaryVersion(const std::string& object) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  return it->second.version;
}

Status Catalog::MarkPrimaryWritten(const std::string& object) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  ++it->second.version;
  // A whole-object write rewrites every fragment: all per-shard cache
  // entries must become unreachable too.
  for (int64_t& v : it->second.placement.shard_versions) ++v;
  return Status::OK();
}

Status Catalog::MarkReplicaFresh(const std::string& object,
                                 const std::string& engine) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  for (ReplicaLocation& r : it->second.replicas) {
    if (r.engine == engine) {
      r.version = it->second.version;
      return Status::OK();
    }
  }
  return Status::NotFound("no replica of " + object + " on " + engine);
}

bool Catalog::ReplicaIsFresh(const std::string& object,
                             const std::string& engine) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) return false;
  for (const ReplicaLocation& r : it->second.replicas) {
    if (r.engine == engine) return r.version == it->second.version;
  }
  return false;
}

Status Catalog::SetPlacement(const std::string& object, ShardPlacement placement) {
  if (placement.shard_count < 1) {
    return Status::InvalidArgument("placement needs at least one shard");
  }
  if (placement.kind == PartitionKind::kRange &&
      static_cast<int>(placement.range_splits.size()) !=
          placement.shard_count - 1) {
    return Status::InvalidArgument("range placement needs shard_count-1 splits");
  }
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  if (placement.epoch <= it->second.placement.epoch) {
    return Status::FailedPrecondition(
        "placement epoch must advance (repartitions must be serialized)");
  }
  placement.shard_versions.assign(placement.shard_count, 0);
  it->second.placement = std::move(placement);
  return Status::OK();
}

Result<ShardPlacement> Catalog::Placement(const std::string& object) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  return it->second.placement;
}

Status Catalog::RemovePlacement(const std::string& object) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  // Advance the epoch watermark: readers mid-gather against the retired
  // layout see the epoch move and retry against the unsharded object,
  // and a later re-shard keeps the monotonic sequence (fragment names
  // and cache params can never collide with a retired layout's).
  ShardPlacement cleared;
  cleared.epoch = it->second.placement.epoch + 1;
  it->second.placement = std::move(cleared);
  return Status::OK();
}

Status Catalog::MarkShardWritten(const std::string& object, int shard) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("no catalog entry for object: " + object);
  }
  ShardPlacement& p = it->second.placement;
  if (shard < 0 || shard >= p.shard_count) {
    return Status::OutOfRange("no shard " + std::to_string(shard) + " of " +
                              object);
  }
  ++p.shard_versions[shard];
  // A shard write is a primary write: replicas and whole-object cache
  // entries go stale, but sibling shards' fragment entries stay warm.
  ++it->second.version;
  return Status::OK();
}

bool Catalog::ShardStateIsCurrent(const std::string& object,
                                  const ObjectSnapshot& snapshot,
                                  int shard) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) return false;
  const ShardPlacement& p = it->second.placement;
  if (it->second.instance_id != snapshot.instance_id) return false;
  if (p.epoch != snapshot.placement.epoch) return false;
  if (shard < 0 || shard >= p.shard_count) return false;
  if (shard >= static_cast<int>(snapshot.placement.shard_versions.size())) {
    return false;
  }
  return p.shard_versions[shard] == snapshot.placement.shard_versions[shard];
}

bool Catalog::PlacementIsCurrent(const std::string& object,
                                 const ObjectSnapshot& snapshot) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) return false;
  return it->second.instance_id == snapshot.instance_id &&
         it->second.placement.epoch == snapshot.placement.epoch;
}

std::vector<std::pair<ObjectLocation, ShardPlacement>> Catalog::ListPlacements()
    const {
  std::shared_lock lock(mu_);
  std::vector<std::pair<ObjectLocation, ShardPlacement>> out;
  for (const auto& [name, entry] : objects_) {
    if (entry.placement.sharded()) {
      out.emplace_back(entry.primary, entry.placement);
    }
  }
  return out;
}

}  // namespace bigdawg::core
