#ifndef BIGDAWG_CORE_PROBER_H_
#define BIGDAWG_CORE_PROBER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/bigdawg.h"

namespace bigdawg::core {

/// \brief One phrasing of a probe in a particular island's language.
struct IslandQuery {
  std::string island;  // e.g. "RELATIONAL"
  std::string query;   // in that island's language
};

/// \brief A semantic probe: the same logical question phrased for several
/// islands. If their results are equivalent, the islands share semantics
/// for this query class.
struct ProbeCase {
  std::string name;  // query-class label, e.g. "count", "filtered-aggregate"
  std::vector<IslandQuery> variants;
};

/// \brief Outcome of probing one case across islands.
struct ProbeOutcome {
  std::string name;
  std::vector<std::string> agreeing;     // largest equivalence group
  std::vector<std::string> disagreeing;  // executed, result differed
  std::vector<std::string> failed;       // island rejected the query
  std::map<std::string, double> timings_ms;
  /// True when >= 2 islands produced equivalent results: the query class
  /// lies in a common sub-island.
  bool common_semantics = false;
};

/// \brief The island-probing system of §2.1: runs equivalent queries on
/// multiple islands, compares canonicalized results to discover common
/// sub-islands, and feeds per-island timings to the monitor so BigDAWG
/// "can decide which island will do the processing automatically".
class SemanticsProber {
 public:
  explicit SemanticsProber(BigDawg* dawg) : dawg_(dawg) {}

  /// Runs every variant; groups islands by result equivalence. Timings of
  /// agreeing islands are recorded with the monitor under the case name
  /// (engine = the island's preferred engine).
  Result<ProbeOutcome> Probe(const ProbeCase& probe);

  std::vector<ProbeOutcome> ProbeAll(const std::vector<ProbeCase>& cases);

  /// Automatic island selection: executes `probe` on the island the
  /// monitor has learned to be fastest for this query class among those
  /// with common semantics (probing first if nothing is known yet).
  Result<relational::Table> ExecuteAuto(const ProbeCase& probe);

  /// Result equivalence: same arity, same row multiset after sorting,
  /// numeric cells compared with `tolerance` (column *names* are ignored:
  /// islands label outputs differently).
  static bool ResultsEquivalent(const relational::Table& a,
                                const relational::Table& b,
                                double tolerance = 1e-9);

 private:
  BigDawg* dawg_;
};

/// \brief A standard probe battery over a numeric object registered in
/// the catalog: count / filtered count / overall aggregate, each phrased
/// for the RELATIONAL, ARRAY, and MYRIA islands. `attr` must be a double
/// attribute of the object.
std::vector<ProbeCase> StandardProbes(const std::string& object,
                                      const std::string& attr,
                                      double filter_threshold);

}  // namespace bigdawg::core

#endif  // BIGDAWG_CORE_PROBER_H_
