#include "core/sharding.h"

#include <algorithm>

#include "common/macros.h"

namespace bigdawg::core {

// ---------------------------------------------------------------------------
// Partitioning functions
// ---------------------------------------------------------------------------

uint64_t ShardHash(const std::string& key) {
  // FNV-1a, 64-bit.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string ShardKeyString(const Value& v) {
  if (v.is_null()) return "\x01null";
  // Prefix with the type tag so Value(1) and Value("1") cannot collide.
  return std::to_string(static_cast<int>(v.type())) + ":" + v.ToString();
}

int HashShardOf(const Value& key, int shard_count) {
  return static_cast<int>(ShardHash(ShardKeyString(key)) %
                          static_cast<uint64_t>(shard_count));
}

int RangeShardOf(int64_t coord, const std::vector<int64_t>& splits) {
  // splits are ascending exclusive upper bounds; the shard after the last
  // split is unbounded above (so growing objects keep routing correctly).
  auto it = std::upper_bound(splits.begin(), splits.end(), coord);
  return static_cast<int>(it - splits.begin());
}

std::string ShardFragmentName(const std::string& native, int64_t epoch,
                              int shard) {
  return native + "__p" + std::to_string(epoch) + "_s" + std::to_string(shard);
}

Result<std::vector<relational::Table>> PartitionTable(
    const relational::Table& table, const ShardPlacement& placement) {
  if (placement.kind != PartitionKind::kHash) {
    return Status::InvalidArgument("tables partition by hash");
  }
  BIGDAWG_ASSIGN_OR_RETURN(size_t key_idx,
                           table.schema().Resolve(placement.key));
  std::vector<relational::Table> fragments;
  fragments.reserve(static_cast<size_t>(placement.shard_count));
  for (int i = 0; i < placement.shard_count; ++i) {
    fragments.emplace_back(table.schema());
  }
  for (const Row& row : table.rows()) {
    int shard = HashShardOf(row[key_idx], placement.shard_count);
    fragments[static_cast<size_t>(shard)].AppendUnchecked(row);
  }
  return fragments;
}

Result<std::vector<array::Array>> PartitionArray(
    const array::Array& array, const ShardPlacement& placement) {
  if (placement.kind != PartitionKind::kRange) {
    return Status::InvalidArgument("arrays partition by range");
  }
  size_t dim_idx = array.num_dims();
  for (size_t d = 0; d < array.num_dims(); ++d) {
    if (array.dims()[d].name == placement.key) {
      dim_idx = d;
      break;
    }
  }
  if (dim_idx == array.num_dims()) {
    return Status::InvalidArgument("no dimension named " + placement.key);
  }
  // Fragments keep the FULL original dimension bounds: cells are disjoint
  // by the range assignment, empty fragments stay representable, and the
  // stitch back is exact (same dims, union of cells).
  std::vector<array::Array> fragments;
  fragments.reserve(static_cast<size_t>(placement.shard_count));
  for (int i = 0; i < placement.shard_count; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(array::Array frag,
                             array::Array::Create(array.dims(), array.attrs()));
    fragments.push_back(std::move(frag));
  }
  Status append = Status::OK();
  array.Scan([&](const array::Coordinates& coords,
                 const std::vector<double>& values) {
    int shard = RangeShardOf(coords[dim_idx], placement.range_splits);
    if (shard >= placement.shard_count) shard = placement.shard_count - 1;
    Status st = fragments[static_cast<size_t>(shard)].Set(coords, values);
    if (!st.ok()) {
      append = st;
      return false;
    }
    return true;
  });
  BIGDAWG_RETURN_NOT_OK(append);
  return fragments;
}

Result<std::vector<d4m::AssocArray>> PartitionAssoc(
    const d4m::AssocArray& assoc, const ShardPlacement& placement) {
  if (placement.kind != PartitionKind::kHash) {
    return Status::InvalidArgument("assoc arrays partition by hash");
  }
  std::vector<d4m::AssocArray> fragments(
      static_cast<size_t>(placement.shard_count));
  assoc.ForEach([&](const std::string& row, const std::string& col,
                    const Value& value) {
    int shard = HashShardOf(Value(row), placement.shard_count);
    fragments[static_cast<size_t>(shard)].Set(row, col, value);
  });
  return fragments;
}

Result<relational::Table> MergeTableFragments(
    std::vector<relational::Table> fragments) {
  if (fragments.empty()) return Status::InvalidArgument("no fragments");
  // Degenerate gather (one shard answered, or per-shard cache hits
  // collapsed to one fragment): hand the block back untouched.
  if (fragments.size() == 1) return std::move(fragments[0]);
  relational::Table out(fragments[0].schema());
  for (relational::Table& frag : fragments) {
    if (frag.UniquelyOwned()) {
      // Exclusive fragment (fresh fetch): move its rows out.
      for (Row& row : frag.mutable_rows()) {
        out.AppendUnchecked(std::move(row));
      }
    } else {
      // Shared fragment (aliases a cache entry): copy rows without
      // thawing — thawing here would deep-copy the whole block only to
      // move it once.
      for (const Row& row : frag.rows()) {
        out.AppendUnchecked(row);
      }
    }
  }
  return out;
}

Result<array::Array> MergeArrayFragments(std::vector<array::Array> fragments) {
  if (fragments.empty()) return Status::InvalidArgument("no fragments");
  if (fragments.size() == 1) return std::move(fragments[0]);
  BIGDAWG_ASSIGN_OR_RETURN(
      array::Array out,
      array::Array::Create(fragments[0].dims(), fragments[0].attrs()));
  Status set = Status::OK();
  for (const array::Array& frag : fragments) {
    frag.Scan([&](const array::Coordinates& coords,
                  const std::vector<double>& values) {
      Status st = out.Set(coords, values);
      if (!st.ok()) {
        set = st;
        return false;
      }
      return true;
    });
    BIGDAWG_RETURN_NOT_OK(set);
  }
  return out;
}

Result<d4m::AssocArray> MergeAssocFragments(
    std::vector<d4m::AssocArray> fragments) {
  if (fragments.empty()) return Status::InvalidArgument("no fragments");
  if (fragments.size() == 1) return std::move(fragments[0]);
  d4m::AssocArray out;
  for (const d4m::AssocArray& frag : fragments) {
    frag.ForEach([&](const std::string& row, const std::string& col,
                     const Value& value) { out.Set(row, col, value); });
  }
  return out;
}

// ---------------------------------------------------------------------------
// AssocShard
// ---------------------------------------------------------------------------

Result<d4m::AssocArray> AssocShard::Get(const std::string& native) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(native);
  if (it == objects_.end()) {
    return Status::NotFound("no assoc fragment named " + native);
  }
  return it->second;
}

void AssocShard::Put(const std::string& native, d4m::AssocArray assoc) {
  std::unique_lock lock(mu_);
  objects_[native] = std::move(assoc);
}

void AssocShard::Erase(const std::string& native) {
  std::unique_lock lock(mu_);
  objects_.erase(native);
}

// ---------------------------------------------------------------------------
// ShardRuntime
// ---------------------------------------------------------------------------

ShardRuntime::ShardRuntime(size_t pool_threads)
    : pool_threads_(pool_threads == 0 ? 1 : pool_threads) {}

ShardRuntime::~ShardRuntime() = default;

void ShardRuntime::DrainPool() {
  std::unique_ptr<ThreadPool> doomed;
  {
    std::lock_guard lock(pool_mu_);
    doomed = std::move(pool_);
  }
  // ~ThreadPool drains the queue and joins the workers, so once `doomed`
  // dies here no scatter task — abandoned or hedged — is still running.
}

ThreadPool* ShardRuntime::pool() {
  std::lock_guard lock(pool_mu_);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(pool_threads_);
  return pool_.get();
}

relational::Database* ShardRuntime::Relational(int shard) {
  std::lock_guard lock(instances_mu_);
  while (relational_.size() <= static_cast<size_t>(shard)) {
    relational_.push_back(std::make_unique<relational::Database>());
  }
  return relational_[static_cast<size_t>(shard)].get();
}

array::ArrayEngine* ShardRuntime::ArrayAt(int shard) {
  std::lock_guard lock(instances_mu_);
  while (arrays_.size() <= static_cast<size_t>(shard)) {
    arrays_.push_back(std::make_unique<array::ArrayEngine>());
  }
  return arrays_[static_cast<size_t>(shard)].get();
}

AssocShard* ShardRuntime::AssocAt(int shard) {
  std::lock_guard lock(instances_mu_);
  while (assocs_.size() <= static_cast<size_t>(shard)) {
    assocs_.push_back(std::make_unique<AssocShard>());
  }
  return assocs_[static_cast<size_t>(shard)].get();
}

void ShardRuntime::SetInstanceCheck(
    std::function<Status(const std::string&)> check) {
  check_instance_ = std::move(check);
}

Status ShardRuntime::CheckInstance(const std::string& engine, int shard) {
  if (!check_instance_) return Status::OK();
  return check_instance_(ShardInstanceName(engine, shard));
}

void ShardRuntime::SetInstanceDownCheck(
    std::function<bool(const std::string&)> down) {
  instance_down_ = std::move(down);
}

bool ShardRuntime::InstanceConsideredDown(const std::string& engine, int shard) {
  if (!instance_down_) return false;
  return instance_down_(ShardInstanceName(engine, shard));
}

void ShardRuntime::SetPolicyProvider(
    std::function<ShardCallPolicy()> provider) {
  policy_provider_ = std::move(provider);
}

ShardCallPolicy ShardRuntime::CurrentPolicy() {
  ShardCallPolicy policy;
  if (policy_provider_) policy = policy_provider_();
  if (policy.clock == nullptr) policy.clock = obs::Clock::System();
  return policy;
}

void ShardRuntime::ExportMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("bigdawg_shard_scatters_total")
      ->Set(static_cast<double>(stats_.scatters.load(std::memory_order_relaxed)));
  registry->GetGauge("bigdawg_shard_calls_total")
      ->Set(static_cast<double>(
          stats_.shard_calls.load(std::memory_order_relaxed)));
  registry->GetGauge("bigdawg_shard_failures_total")
      ->Set(static_cast<double>(
          stats_.shard_failures.load(std::memory_order_relaxed)));
  registry->GetGauge("bigdawg_shard_hedges_total")
      ->Set(static_cast<double>(stats_.hedges.load(std::memory_order_relaxed)));
  registry->GetGauge("bigdawg_shard_retries_total")
      ->Set(static_cast<double>(stats_.retries.load(std::memory_order_relaxed)));
  registry->GetGauge("bigdawg_shard_repartitions_total")
      ->Set(static_cast<double>(
          stats_.repartitions.load(std::memory_order_relaxed)));
  registry->GetGauge("bigdawg_shard_pruned_scatters_total")
      ->Set(static_cast<double>(stats_.pruned.load(std::memory_order_relaxed)));
}

}  // namespace bigdawg::core
