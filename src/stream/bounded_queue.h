#ifndef BIGDAWG_STREAM_BOUNDED_QUEUE_H_
#define BIGDAWG_STREAM_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"

namespace bigdawg::stream {

/// \brief Bounded multi-producer single-consumer ring queue — the
/// streaming island's ingestion front door.
///
/// Capacity is fixed at construction and storage is preallocated, so the
/// hot path never allocates: a push is one mutex acquisition and a move
/// into the ring, and the consumer drains up to a whole batch under a
/// single acquisition (PopBatch), which is what keeps the per-tuple lock
/// cost negligible at 10^5-10^6 events/s.
///
/// Overload is a typed error, not a silent drop: TryPush on a full ring
/// returns ResourceExhausted and the producer decides whether to retry,
/// shed, or surface the backpressure. Close() wakes the consumer; pushes
/// after Close fail FailedPrecondition.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Enqueues one item. ResourceExhausted when the ring is full (the
  /// backpressure signal), FailedPrecondition after Close().
  Status TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return Status::FailedPrecondition("queue is closed");
      if (size_ == ring_.size()) {
        return Status::ResourceExhausted("ingest queue full");
      }
      ring_[(head_ + size_) % ring_.size()] = std::move(item);
      ++size_;
    }
    cv_.notify_one();
    return Status::OK();
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and empty), then moves up to `max` items into `*out` (appended).
  /// Returns the number moved; 0 means closed-and-drained.
  size_t PopBatch(size_t max, std::vector<T>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || size_ > 0; });
    size_t n = 0;
    while (n < max && size_ > 0) {
      out->push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) % ring_.size();
      --size_;
      ++n;
    }
    return n;
  }

  /// Non-blocking variant of PopBatch for callers that poll.
  size_t TryPopBatch(size_t max, std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    while (n < max && size_ > 0) {
      out->push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) % ring_.size();
      --size_;
      ++n;
    }
    return n;
  }

  /// Rejects further pushes and wakes the consumer so it can drain what
  /// remains and observe the close.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopens a closed queue (the engine restarts its worker).
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return ring_.size(); }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace bigdawg::stream

#endif  // BIGDAWG_STREAM_BOUNDED_QUEUE_H_
