#include "stream/alerting.h"

#include <cmath>
#include <utility>

#include "common/macros.h"

namespace bigdawg::stream {

std::string WaveformThresholdProcName(const WaveformAlertConfig& config) {
  return "__alert_threshold_" + config.stream;
}

std::string WaveformWindowProcName(const WaveformAlertConfig& config) {
  return "__alert_window_" + config.window;
}

Status InstallWaveformAlert(StreamEngine* engine,
                            const WaveformAlertConfig& config) {
  BIGDAWG_ASSIGN_OR_RETURN(Schema stream_schema,
                           engine->StreamSchema(config.stream));
  BIGDAWG_ASSIGN_OR_RETURN(Schema window_schema,
                           engine->WindowSchema(config.window));
  BIGDAWG_ASSIGN_OR_RETURN(Schema ref_schema,
                           engine->TableSchema(config.reference));
  if (config.key_field >= stream_schema.num_fields() ||
      config.value_field >= stream_schema.num_fields()) {
    return Status::InvalidArgument(
        "key_field/value_field out of stream schema bounds");
  }
  if (!IsNumeric(stream_schema.fields()[config.value_field].type)) {
    return Status::InvalidArgument("value_field must be a numeric column");
  }
  if (ref_schema.num_fields() < 4) {
    return Status::InvalidArgument(
        "reference table needs (key, low, high, mean) columns");
  }
  // The window-mean check reads the incremental aggregate by column name.
  const std::string value_column =
      window_schema.fields()[config.value_field].name;

  const std::string threshold_proc = WaveformThresholdProcName(config);
  const std::string window_proc = WaveformWindowProcName(config);
  const WaveformAlertConfig cfg = config;

  BIGDAWG_RETURN_NOT_OK(engine->RegisterProcedure(
      threshold_proc, [cfg](ProcContext* ctx) -> Status {
        const Row& in = ctx->input();
        if (cfg.key_field >= in.size() || cfg.value_field >= in.size()) {
          return Status::OK();
        }
        Result<Row> ref = ctx->Get(cfg.reference, in[cfg.key_field]);
        if (!ref.ok()) return Status::OK();  // unmonitored key: pass silently
        Result<double> v = in[cfg.value_field].ToNumeric();
        if (!v.ok()) return Status::OK();
        BIGDAWG_ASSIGN_OR_RETURN(double low, (*ref)[1].ToNumeric());
        BIGDAWG_ASSIGN_OR_RETURN(double high, (*ref)[2].ToNumeric());
        if (*v < low || *v > high) {
          ctx->EmitAlert({Value("threshold"), in[cfg.key_field], Value(*v),
                          Value(low), Value(high)});
        }
        return Status::OK();
      }));

  BIGDAWG_RETURN_NOT_OK(engine->RegisterProcedure(
      window_proc, [cfg, value_column](ProcContext* ctx) -> Status {
        BIGDAWG_ASSIGN_OR_RETURN(std::vector<ColumnAggregate> aggs,
                                 ctx->WindowAggregates(cfg.window));
        const AggregateSnapshot* snap = nullptr;
        for (const ColumnAggregate& a : aggs) {
          if (a.column == value_column) {
            snap = &a.agg;
            break;
          }
        }
        if (snap == nullptr || snap->count == 0) return Status::OK();
        Result<Row> ref = ctx->Get(cfg.reference, cfg.window_key);
        if (!ref.ok()) return Status::OK();
        BIGDAWG_ASSIGN_OR_RETURN(double ref_mean, (*ref)[3].ToNumeric());
        const double scale = std::abs(ref_mean);
        const double bound = cfg.window_tolerance * (scale > 0 ? scale : 1.0);
        if (std::abs(snap->avg - ref_mean) > bound) {
          ctx->EmitAlert({Value("window_mean"), cfg.window_key,
                          Value(snap->avg), Value(ref_mean)});
        }
        return Status::OK();
      }));

  BIGDAWG_RETURN_NOT_OK(engine->BindStreamTrigger(cfg.stream, threshold_proc));
  return engine->BindWindowTrigger(cfg.window, window_proc);
}

}  // namespace bigdawg::stream
