#include "stream/stream_engine.h"

#include <algorithm>
#include <chrono>

#include "common/binary_io.h"
#include "common/macros.h"

namespace bigdawg::stream {

namespace {
std::string IngestProcName(const std::string& stream) {
  return "__ingest_" + stream;
}
}  // namespace

// ---- ProcContext ----
//
// ProcContext methods read engine state without locking: procedures only
// ever run on a thread that already holds state_mu_ exclusively (the
// executor's batch loop, or ExecuteProcedure/ReplayLog).

Result<Row> ProcContext::Get(const std::string& table, const Value& key) const {
  auto it = engine_->tables_.find(table);
  if (it == engine_->tables_.end()) {
    return Status::NotFound("no state table named " + table);
  }
  // This transaction's own writes win.
  for (auto w = writes_.rbegin(); w != writes_.rend(); ++w) {
    if (w->table == table && !w->row.empty() && w->row[0] == key) return w->row;
  }
  auto row_it = it->second.rows.find(key);
  if (row_it == it->second.rows.end()) {
    return Status::NotFound("no row with key " + key.ToString() + " in " + table);
  }
  return row_it->second;
}

Status ProcContext::Put(const std::string& table, Row row) {
  auto it = engine_->tables_.find(table);
  if (it == engine_->tables_.end()) {
    return Status::NotFound("no state table named " + table);
  }
  BIGDAWG_RETURN_NOT_OK(it->second.schema.ValidateRow(row));
  if (row.empty() || row[0].is_null()) {
    return Status::InvalidArgument("state-table rows need a non-null key");
  }
  writes_.push_back({table, std::move(row)});
  return Status::OK();
}

Status ProcContext::AppendToStream(const std::string& stream, Row row) {
  auto it = engine_->streams_.find(stream);
  if (it == engine_->streams_.end()) {
    return Status::NotFound("no stream named " + stream);
  }
  BIGDAWG_RETURN_NOT_OK(it->second.schema.ValidateRow(row));
  appends_.push_back({stream, std::move(row)});
  return Status::OK();
}

void ProcContext::EmitAlert(Row alert) { alerts_.push_back(std::move(alert)); }

Result<std::vector<Row>> ProcContext::Window(const std::string& window) const {
  auto it = engine_->windows_.find(window);
  if (it == engine_->windows_.end()) {
    return Status::NotFound("no window named " + window);
  }
  return std::vector<Row>(it->second.buffer.begin(), it->second.buffer.end());
}

Result<std::vector<ColumnAggregate>> ProcContext::WindowAggregates(
    const std::string& window) const {
  auto it = engine_->windows_.find(window);
  if (it == engine_->windows_.end()) {
    return Status::NotFound("no window named " + window);
  }
  return it->second.aggregates.Snapshot();
}

// ---- Definition ----

StreamEngine::StreamEngine(StreamEngineOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : obs::Clock::System()),
      queue_(options.queue_capacity) {}

Status StreamEngine::RequireStopped() const {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "definitions are frozen while the engine is running (Stop() first)");
  }
  return Status::OK();
}

Status StreamEngine::CreateStream(const std::string& name, Schema schema,
                                  StreamOptions options) {
  BIGDAWG_RETURN_NOT_OK(RequireStopped());
  std::unique_lock lock(state_mu_);
  if (streams_.count(name) > 0) {
    return Status::AlreadyExists("stream already exists: " + name);
  }
  if (options.retention == 0) {
    return Status::InvalidArgument("retention must be > 0");
  }
  if (options.retention_ms < 0 || options.max_lateness_ms < 0) {
    return Status::InvalidArgument("retention_ms / max_lateness_ms must be >= 0");
  }
  if (options.ts_field >= 0) {
    if (static_cast<size_t>(options.ts_field) >= schema.num_fields()) {
      return Status::InvalidArgument("ts_field is out of schema bounds");
    }
    if (!IsNumeric(schema.fields()[options.ts_field].type)) {
      return Status::InvalidArgument("ts_field must be a numeric column");
    }
  }
  StreamState s;
  s.schema = std::move(schema);
  s.options = options;
  streams_.emplace(name, std::move(s));
  // Implicit ingestion procedure: append the input tuple to the stream.
  procedures_[IngestProcName(name)] = [name](ProcContext* ctx) {
    return ctx->AppendToStream(name, ctx->input());
  };
  return Status::OK();
}

Status StreamEngine::CreateStream(const std::string& name, Schema schema,
                                  size_t retention) {
  StreamOptions options;
  options.retention = retention;
  return CreateStream(name, std::move(schema), options);
}

Status StreamEngine::CreateTable(const std::string& name, Schema schema) {
  BIGDAWG_RETURN_NOT_OK(RequireStopped());
  std::unique_lock lock(state_mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("state table needs at least a key column");
  }
  TableState t;
  t.schema = std::move(schema);
  tables_.emplace(name, std::move(t));
  return Status::OK();
}

Status StreamEngine::CreateWindow(const std::string& name, const std::string& stream,
                                  size_t size, size_t slide) {
  BIGDAWG_RETURN_NOT_OK(RequireStopped());
  std::unique_lock lock(state_mu_);
  if (windows_.count(name) > 0) {
    return Status::AlreadyExists("window already exists: " + name);
  }
  auto it = streams_.find(stream);
  if (it == streams_.end()) return Status::NotFound("no stream named " + stream);
  if (size == 0 || slide == 0) {
    return Status::InvalidArgument("window size and slide must be > 0");
  }
  WindowState w;
  w.stream = stream;
  w.size = size;
  w.slide = slide;
  w.aggregates.Bind(it->second.schema);
  windows_.emplace(name, std::move(w));
  it->second.windows.push_back(name);
  return Status::OK();
}

Status StreamEngine::RegisterProcedure(const std::string& name, Procedure proc) {
  BIGDAWG_RETURN_NOT_OK(RequireStopped());
  std::unique_lock lock(state_mu_);
  if (procedures_.count(name) > 0) {
    return Status::AlreadyExists("procedure already exists: " + name);
  }
  procedures_.emplace(name, std::move(proc));
  return Status::OK();
}

Status StreamEngine::BindStreamTrigger(const std::string& stream,
                                       const std::string& procedure) {
  BIGDAWG_RETURN_NOT_OK(RequireStopped());
  std::unique_lock lock(state_mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) return Status::NotFound("no stream named " + stream);
  if (procedures_.count(procedure) == 0) {
    return Status::NotFound("no procedure named " + procedure);
  }
  it->second.trigger = procedure;
  return Status::OK();
}

Status StreamEngine::BindWindowTrigger(const std::string& window,
                                       const std::string& procedure) {
  BIGDAWG_RETURN_NOT_OK(RequireStopped());
  std::unique_lock lock(state_mu_);
  auto it = windows_.find(window);
  if (it == windows_.end()) return Status::NotFound("no window named " + window);
  if (procedures_.count(procedure) == 0) {
    return Status::NotFound("no procedure named " + procedure);
  }
  it->second.trigger = procedure;
  return Status::OK();
}

void StreamEngine::SetAgeOutHandler(AgeOutHandler handler) {
  std::unique_lock lock(state_mu_);
  age_out_ = std::move(handler);
}

void StreamEngine::SetEngineCheck(EngineCheck check) {
  std::unique_lock lock(state_mu_);
  engine_check_ = std::move(check);
}

Status StreamEngine::SetClock(const obs::Clock* clock) {
  BIGDAWG_RETURN_NOT_OK(RequireStopped());
  clock_ = clock != nullptr ? clock : obs::Clock::System();
  return Status::OK();
}

// ---- Transactions ----

void StreamEngine::EvictOldest(const std::string& name, StreamState& s) {
  if (age_out_) age_out_(name, s.buffer.front());
  s.buffer.pop_front();
  if (!s.arrivals.empty()) s.arrivals.pop_front();
  aged_out_.fetch_add(1, std::memory_order_relaxed);
}

Status StreamEngine::ApplyAppend(const std::string& stream, const Row& row,
                                 std::vector<QueueItem>* follow_ups) {
  StreamState& s = streams_.at(stream);

  // Event-time accounting: drop hopelessly late tuples, count the merely
  // out-of-order ones, advance the watermark.
  if (s.options.ts_field >= 0 &&
      static_cast<size_t>(s.options.ts_field) < row.size()) {
    Result<double> ts = row[s.options.ts_field].ToNumeric();
    if (ts.ok()) {
      if (s.watermark_set && *ts < s.watermark_ms) {
        if (s.options.max_lateness_ms > 0 &&
            *ts < s.watermark_ms - s.options.max_lateness_ms) {
          late_dropped_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();  // beyond the lateness bound: counted drop
        }
        out_of_order_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!s.watermark_set || *ts > s.watermark_ms) {
        s.watermark_ms = *ts;
        s.watermark_set = true;
      }
    }
  }

  s.buffer.push_back(row);
  if (s.options.retention_ms > 0) s.arrivals.push_back(clock_->Now());
  ++s.total_appended;
  // Count retention: age out oldest tuples.
  while (s.buffer.size() > s.options.retention) EvictOldest(stream, s);
  // Stream trigger.
  if (!s.trigger.empty()) {
    follow_ups->push_back({s.trigger, row, clock_->Now()});
  }
  // Windows over this stream: feed rows and the incremental aggregates.
  for (const std::string& wname : s.windows) {
    WindowState& w = windows_.at(wname);
    w.buffer.push_back(row);
    w.aggregates.Append(row, w.next_seq++);
    while (w.buffer.size() > w.size) {
      w.aggregates.Evict(w.buffer.front(), w.evict_seq++);
      w.buffer.pop_front();
    }
    ++w.arrivals_since_eval;
    if (w.buffer.size() == w.size && w.arrivals_since_eval >= w.slide) {
      w.arrivals_since_eval = 0;
      ++w.slides;
      if (!w.trigger.empty()) {
        follow_ups->push_back({w.trigger, Row{}, clock_->Now()});
      }
    }
  }
  return Status::OK();
}

void StreamEngine::AdvanceRetentionLocked() {
  const obs::Clock::TimePoint now = clock_->Now();
  for (auto& [name, s] : streams_) {
    if (s.options.retention_ms <= 0) continue;
    while (!s.buffer.empty() && !s.arrivals.empty() &&
           obs::Clock::ToMillis(now - s.arrivals.front()) >
               s.options.retention_ms) {
      EvictOldest(name, s);
    }
  }
}

void StreamEngine::AdvanceRetention() {
  std::unique_lock lock(state_mu_);
  AdvanceRetentionLocked();
}

Status StreamEngine::RunTransactionLocked(const std::string& proc_name, Row input,
                                          bool log_commit) {
  // Work list lets committed transactions schedule deterministic follow-up
  // transactions (stream triggers, window triggers) without recursion.
  std::deque<QueueItem> work;
  work.push_back({proc_name, std::move(input), clock_->Now()});
  bool first = true;
  Status first_status = Status::OK();

  while (!work.empty()) {
    QueueItem item = std::move(work.front());
    work.pop_front();

    auto proc_it = procedures_.find(item.procedure);
    if (proc_it == procedures_.end()) {
      Status st = Status::NotFound("no procedure named " + item.procedure);
      if (first) return st;
      continue;  // follow-up with missing proc: drop (cannot happen via API)
    }

    ProcContext ctx(this, item.input, next_txn_id_++);
    Status st = proc_it->second(&ctx);
    if (!st.ok()) {
      aborted_.fetch_add(1, std::memory_order_relaxed);
      if (first) first_status = st;
      first = false;
      continue;  // abort: discard buffered effects
    }

    // Commit: apply buffered effects.
    for (ProcContext::PendingWrite& w : ctx.writes_) {
      TableState& t = tables_.at(w.table);
      Value key = w.row[0];
      t.rows.insert_or_assign(std::move(key), std::move(w.row));
    }
    std::vector<QueueItem> follow_ups;
    for (ProcContext::PendingAppend& a : ctx.appends_) {
      BIGDAWG_RETURN_NOT_OK(ApplyAppend(a.stream, a.row, &follow_ups));
    }
    for (Row& alert : ctx.alerts_) {
      alerts_.push_back(std::move(alert));
      alerts_total_.fetch_add(1, std::memory_order_relaxed);
    }
    committed_.fetch_add(1, std::memory_order_relaxed);
    if (first && log_commit) {
      command_log_.push_back({item.procedure, item.input});
    }
    for (QueueItem& f : follow_ups) work.push_back(std::move(f));
    first = false;
  }
  return first_status;
}

// ---- Execution ----

StreamEngine::~StreamEngine() { Stop(); }

void StreamEngine::Start() {
  std::lock_guard lock(run_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  queue_.Reopen();
  running_.store(true, std::memory_order_release);
  executor_ = std::thread([this] { ExecutorLoop(); });
}

void StreamEngine::Stop() {
  {
    std::lock_guard lock(run_mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    running_.store(false, std::memory_order_release);
  }
  // Closing the queue wakes the worker; it drains what was accepted (no
  // tuple loss on shutdown) and exits on closed-and-empty.
  queue_.Close();
  if (executor_.joinable()) executor_.join();
}

Status StreamEngine::Ingest(const std::string& stream, Row row) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine not started (call Start())");
  }
  // Definitions are frozen while running, so probing the stream map needs
  // no lock — this is what keeps Ingest off the state lock entirely.
  if (streams_.count(stream) == 0) {
    return Status::NotFound("no stream named " + stream);
  }
  if (engine_check_) {
    Status st = engine_check_();
    if (!st.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return st;
    }
  }
  Status st = queue_.TryPush({IngestProcName(stream), std::move(row), clock_->Now()});
  if (!st.ok()) {
    if (st.IsResourceExhausted()) {
      backpressured_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    return st;
  }
  ingested_.fetch_add(1, std::memory_order_relaxed);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void StreamEngine::WaitForDrain() {
  std::unique_lock lock(run_mu_);
  drain_cv_.wait(lock, [this] {
    return processed_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void StreamEngine::ExecutorLoop() {
  std::vector<QueueItem> batch;
  batch.reserve(options_.batch_size);
  for (;;) {
    batch.clear();
    const size_t n = queue_.PopBatch(options_.batch_size, &batch);
    if (n == 0) break;  // closed and drained

    // Fault plane: hold the popped batch until the engine is healthy.
    // Tuples wait (and the bounded queue fills behind them, surfacing the
    // outage as front-door backpressure) rather than being dropped. A
    // Stop() bypasses the check so shutdown always drains.
    if (engine_check_) {
      while (running_.load(std::memory_order_acquire)) {
        if (engine_check_().ok()) break;
        clock_->SleepFor(obs::Clock::FromMillis(1));
      }
    }

    const obs::Clock::TimePoint batch_start = clock_->Now();
    {
      std::unique_lock lock(state_mu_);
      for (QueueItem& item : batch) {
        (void)RunTransactionLocked(item.procedure, std::move(item.input),
                                   /*log_commit=*/true);
      }
      AdvanceRetentionLocked();
    }
    const obs::Clock::TimePoint batch_end = clock_->Now();
    {
      std::lock_guard slock(stats_mu_);
      for (const QueueItem& item : batch) {
        ingest_lag_ms_.Record(obs::Clock::ToMillis(batch_end - item.enqueued));
      }
      advance_ms_.Record(obs::Clock::ToMillis(batch_end - batch_start));
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    processed_.fetch_add(static_cast<int64_t>(n), std::memory_order_release);
    {
      std::lock_guard lock(run_mu_);
    }
    drain_cv_.notify_all();
  }
  {
    std::lock_guard lock(run_mu_);
  }
  drain_cv_.notify_all();
}

Status StreamEngine::ExecuteProcedure(const std::string& name, Row input) {
  std::unique_lock lock(state_mu_);
  return RunTransactionLocked(name, std::move(input), /*log_commit=*/true);
}

// ---- Inspection ----

Result<std::vector<Row>> StreamEngine::StreamContents(const std::string& name) const {
  std::shared_lock lock(state_mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) return Status::NotFound("no stream named " + name);
  return std::vector<Row>(it->second.buffer.begin(), it->second.buffer.end());
}

Result<std::vector<Row>> StreamEngine::WindowContents(const std::string& name) const {
  std::shared_lock lock(state_mu_);
  auto it = windows_.find(name);
  if (it == windows_.end()) return Status::NotFound("no window named " + name);
  return std::vector<Row>(it->second.buffer.begin(), it->second.buffer.end());
}

Result<std::vector<ColumnAggregate>> StreamEngine::WindowAggregates(
    const std::string& name) const {
  std::shared_lock lock(state_mu_);
  auto it = windows_.find(name);
  if (it == windows_.end()) return Status::NotFound("no window named " + name);
  return it->second.aggregates.Snapshot();
}

Result<Row> StreamEngine::TableGet(const std::string& table, const Value& key) const {
  std::shared_lock lock(state_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no state table named " + table);
  auto row_it = it->second.rows.find(key);
  if (row_it == it->second.rows.end()) {
    return Status::NotFound("no row with key " + key.ToString());
  }
  return row_it->second;
}

Result<std::vector<Row>> StreamEngine::TableScan(const std::string& table) const {
  std::shared_lock lock(state_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no state table named " + table);
  std::vector<Row> out;
  out.reserve(it->second.rows.size());
  for (const auto& [key, row] : it->second.rows) out.push_back(row);
  return out;
}

Result<Schema> StreamEngine::StreamSchema(const std::string& name) const {
  std::shared_lock lock(state_mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) return Status::NotFound("no stream named " + name);
  return it->second.schema;
}

Result<Schema> StreamEngine::WindowSchema(const std::string& name) const {
  std::shared_lock lock(state_mu_);
  auto it = windows_.find(name);
  if (it == windows_.end()) return Status::NotFound("no window named " + name);
  return streams_.at(it->second.stream).schema;
}

Result<Schema> StreamEngine::TableSchema(const std::string& name) const {
  std::shared_lock lock(state_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no state table named " + name);
  return it->second.schema;
}

std::vector<StreamInfo> StreamEngine::ListStreams() const {
  std::shared_lock lock(state_mu_);
  std::vector<StreamInfo> out;
  out.reserve(streams_.size());
  for (const auto& [name, s] : streams_) {
    StreamInfo info;
    info.name = name;
    info.retention = s.options.retention;
    info.retention_ms = s.options.retention_ms;
    info.buffered = s.buffer.size();
    info.total_appended = s.total_appended;
    info.trigger = s.trigger;
    info.windows = s.windows;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<WindowInfo> StreamEngine::ListWindows() const {
  std::shared_lock lock(state_mu_);
  std::vector<WindowInfo> out;
  out.reserve(windows_.size());
  for (const auto& [name, w] : windows_) {
    WindowInfo info;
    info.name = name;
    info.stream = w.stream;
    info.size = w.size;
    info.slide = w.slide;
    info.buffered = w.buffer.size();
    info.slides = w.slides;
    info.trigger = w.trigger;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::string> StreamEngine::ListTables() const {
  std::shared_lock lock(state_mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

std::vector<Row> StreamEngine::TakeAlerts() {
  std::unique_lock lock(state_mu_);
  std::vector<Row> out;
  out.swap(alerts_);
  return out;
}

LatencyStats StreamEngine::GetLatencyStats() const {
  std::lock_guard lock(stats_mu_);
  LatencyStats stats;
  stats.count = ingest_lag_ms_.count();
  if (stats.count == 0) return stats;
  stats.p50_ms = ingest_lag_ms_.Quantile(0.50);
  stats.p95_ms = ingest_lag_ms_.Quantile(0.95);
  stats.p99_ms = ingest_lag_ms_.Quantile(0.99);
  stats.max_ms = ingest_lag_ms_.Quantile(1.0);
  stats.mean_ms = ingest_lag_ms_.mean();
  return stats;
}

StreamEngineStats StreamEngine::GetStats() const {
  StreamEngineStats s;
  s.running = running_.load(std::memory_order_acquire);
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  s.queue_saturation = s.queue_capacity == 0
                           ? 0
                           : static_cast<double>(s.queue_depth) /
                                 static_cast<double>(s.queue_capacity);
  s.ingested = ingested_.load(std::memory_order_relaxed);
  s.backpressured = backpressured_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.committed = committed_.load(std::memory_order_relaxed);
  s.aborted = aborted_.load(std::memory_order_relaxed);
  s.alerts = alerts_total_.load(std::memory_order_relaxed);
  s.aged_out = aged_out_.load(std::memory_order_relaxed);
  s.late_dropped = late_dropped_.load(std::memory_order_relaxed);
  s.out_of_order = out_of_order_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  {
    std::lock_guard slock(stats_mu_);
    s.ingest_lag_p50_ms = ingest_lag_ms_.Quantile(0.50);
    s.ingest_lag_p95_ms = ingest_lag_ms_.Quantile(0.95);
    s.advance_p50_ms = advance_ms_.Quantile(0.50);
    s.advance_p95_ms = advance_ms_.Quantile(0.95);
  }
  return s;
}

void StreamEngine::ExportMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const StreamEngineStats s = GetStats();
  auto set = [registry](const char* family, double v) {
    registry->GetGauge(family)->Set(v);
  };
  set("bigdawg_stream_ingested_total", static_cast<double>(s.ingested));
  set("bigdawg_stream_backpressured_total", static_cast<double>(s.backpressured));
  set("bigdawg_stream_rejected_total", static_cast<double>(s.rejected));
  set("bigdawg_stream_late_dropped_total", static_cast<double>(s.late_dropped));
  set("bigdawg_stream_out_of_order_total", static_cast<double>(s.out_of_order));
  set("bigdawg_stream_txn_committed_total", static_cast<double>(s.committed));
  set("bigdawg_stream_txn_aborted_total", static_cast<double>(s.aborted));
  set("bigdawg_stream_alerts_total", static_cast<double>(s.alerts));
  set("bigdawg_stream_aged_out_rows_total", static_cast<double>(s.aged_out));
  set("bigdawg_stream_batches_total", static_cast<double>(s.batches));
  set("bigdawg_stream_queue_depth", static_cast<double>(s.queue_depth));
  set("bigdawg_stream_queue_capacity", static_cast<double>(s.queue_capacity));
  set("bigdawg_stream_queue_saturation", s.queue_saturation);
  set("bigdawg_stream_running", s.running ? 1.0 : 0.0);
  auto quantile = [registry](const char* family, const char* q, double v) {
    registry->GetGauge(obs::SeriesName(family, {{"quantile", q}}))->Set(v);
  };
  quantile("bigdawg_stream_ingest_lag_ms", "p50", s.ingest_lag_p50_ms);
  quantile("bigdawg_stream_ingest_lag_ms", "p95", s.ingest_lag_p95_ms);
  quantile("bigdawg_stream_advance_ms", "p50", s.advance_p50_ms);
  quantile("bigdawg_stream_advance_ms", "p95", s.advance_p95_ms);
}

// ---- Recovery ----

std::vector<LogRecord> StreamEngine::SnapshotCommandLog() const {
  std::shared_lock lock(state_mu_);
  return command_log_;
}

std::string StreamEngine::SerializeLog(const std::vector<LogRecord>& log) {
  BinaryWriter writer;
  writer.PutUint32(static_cast<uint32_t>(log.size()));
  for (const LogRecord& rec : log) {
    writer.PutString(rec.procedure);
    writer.PutRow(rec.input);
  }
  return writer.Release();
}

Result<std::vector<LogRecord>> StreamEngine::DeserializeLog(
    const std::string& bytes) {
  BinaryReader reader(bytes);
  BIGDAWG_ASSIGN_OR_RETURN(uint32_t n, reader.GetUint32());
  std::vector<LogRecord> log;
  log.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LogRecord rec;
    BIGDAWG_ASSIGN_OR_RETURN(rec.procedure, reader.GetString());
    BIGDAWG_ASSIGN_OR_RETURN(rec.input, reader.GetRow());
    log.push_back(std::move(rec));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after command log");
  }
  return log;
}

Status StreamEngine::ReplayLog(const std::vector<LogRecord>& log) {
  for (const LogRecord& rec : log) {
    // Replay re-runs each top-level transaction; follow-ups regenerate
    // deterministically. Aborted-at-runtime statuses are surfaced.
    BIGDAWG_RETURN_NOT_OK(ExecuteProcedure(rec.procedure, rec.input));
  }
  return Status::OK();
}

}  // namespace bigdawg::stream
