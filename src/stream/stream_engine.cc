#include "stream/stream_engine.h"

#include <algorithm>
#include <chrono>

#include "common/binary_io.h"
#include "common/macros.h"

namespace bigdawg::stream {

namespace {
std::string IngestProcName(const std::string& stream) {
  return "__ingest_" + stream;
}
}  // namespace

// ---- ProcContext ----

Result<Row> ProcContext::Get(const std::string& table, const Value& key) const {
  auto it = engine_->tables_.find(table);
  if (it == engine_->tables_.end()) {
    return Status::NotFound("no state table named " + table);
  }
  // This transaction's own writes win.
  for (auto w = writes_.rbegin(); w != writes_.rend(); ++w) {
    if (w->table == table && !w->row.empty() && w->row[0] == key) return w->row;
  }
  auto row_it = it->second.rows.find(key);
  if (row_it == it->second.rows.end()) {
    return Status::NotFound("no row with key " + key.ToString() + " in " + table);
  }
  return row_it->second;
}

Status ProcContext::Put(const std::string& table, Row row) {
  auto it = engine_->tables_.find(table);
  if (it == engine_->tables_.end()) {
    return Status::NotFound("no state table named " + table);
  }
  BIGDAWG_RETURN_NOT_OK(it->second.schema.ValidateRow(row));
  if (row.empty() || row[0].is_null()) {
    return Status::InvalidArgument("state-table rows need a non-null key");
  }
  writes_.push_back({table, std::move(row)});
  return Status::OK();
}

Status ProcContext::AppendToStream(const std::string& stream, Row row) {
  auto it = engine_->streams_.find(stream);
  if (it == engine_->streams_.end()) {
    return Status::NotFound("no stream named " + stream);
  }
  BIGDAWG_RETURN_NOT_OK(it->second.schema.ValidateRow(row));
  appends_.push_back({stream, std::move(row)});
  return Status::OK();
}

void ProcContext::EmitAlert(Row alert) { alerts_.push_back(std::move(alert)); }

Result<std::vector<Row>> ProcContext::Window(const std::string& window) const {
  auto it = engine_->windows_.find(window);
  if (it == engine_->windows_.end()) {
    return Status::NotFound("no window named " + window);
  }
  return std::vector<Row>(it->second.buffer.begin(), it->second.buffer.end());
}

// ---- Definition ----

Status StreamEngine::CreateStream(const std::string& name, Schema schema,
                                  size_t retention) {
  if (streams_.count(name) > 0) {
    return Status::AlreadyExists("stream already exists: " + name);
  }
  if (retention == 0) return Status::InvalidArgument("retention must be > 0");
  StreamState s;
  s.schema = std::move(schema);
  s.retention = retention;
  streams_.emplace(name, std::move(s));
  // Implicit ingestion procedure: append the input tuple to the stream.
  procedures_[IngestProcName(name)] = [name](ProcContext* ctx) {
    return ctx->AppendToStream(name, ctx->input());
  };
  return Status::OK();
}

Status StreamEngine::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("state table needs at least a key column");
  }
  TableState t;
  t.schema = std::move(schema);
  tables_.emplace(name, std::move(t));
  return Status::OK();
}

Status StreamEngine::CreateWindow(const std::string& name, const std::string& stream,
                                  size_t size, size_t slide) {
  if (windows_.count(name) > 0) {
    return Status::AlreadyExists("window already exists: " + name);
  }
  auto it = streams_.find(stream);
  if (it == streams_.end()) return Status::NotFound("no stream named " + stream);
  if (size == 0 || slide == 0) {
    return Status::InvalidArgument("window size and slide must be > 0");
  }
  WindowState w;
  w.stream = stream;
  w.size = size;
  w.slide = slide;
  windows_.emplace(name, std::move(w));
  it->second.windows.push_back(name);
  return Status::OK();
}

Status StreamEngine::RegisterProcedure(const std::string& name, Procedure proc) {
  if (procedures_.count(name) > 0) {
    return Status::AlreadyExists("procedure already exists: " + name);
  }
  procedures_.emplace(name, std::move(proc));
  return Status::OK();
}

Status StreamEngine::BindStreamTrigger(const std::string& stream,
                                       const std::string& procedure) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return Status::NotFound("no stream named " + stream);
  if (procedures_.count(procedure) == 0) {
    return Status::NotFound("no procedure named " + procedure);
  }
  it->second.trigger = procedure;
  return Status::OK();
}

Status StreamEngine::BindWindowTrigger(const std::string& window,
                                       const std::string& procedure) {
  auto it = windows_.find(window);
  if (it == windows_.end()) return Status::NotFound("no window named " + window);
  if (procedures_.count(procedure) == 0) {
    return Status::NotFound("no procedure named " + procedure);
  }
  it->second.trigger = procedure;
  return Status::OK();
}

// ---- Transactions ----

Status StreamEngine::ApplyAppend(const std::string& stream, const Row& row,
                                 std::vector<QueueItem>* follow_ups) {
  StreamState& s = streams_.at(stream);
  s.buffer.push_back(row);
  ++s.total_appended;
  // Retention: age out oldest tuples.
  while (s.buffer.size() > s.retention) {
    if (age_out_) age_out_(stream, s.buffer.front());
    s.buffer.pop_front();
  }
  // Stream trigger.
  if (!s.trigger.empty()) {
    follow_ups->push_back({s.trigger, row, std::chrono::steady_clock::now()});
  }
  // Windows over this stream.
  for (const std::string& wname : s.windows) {
    WindowState& w = windows_.at(wname);
    w.buffer.push_back(row);
    while (w.buffer.size() > w.size) w.buffer.pop_front();
    ++w.arrivals_since_eval;
    if (w.buffer.size() == w.size && w.arrivals_since_eval >= w.slide) {
      w.arrivals_since_eval = 0;
      if (!w.trigger.empty()) {
        follow_ups->push_back({w.trigger, Row{}, std::chrono::steady_clock::now()});
      }
    }
  }
  return Status::OK();
}

Status StreamEngine::RunTransaction(const std::string& proc_name, Row input,
                                    bool log_commit) {
  // Work list lets committed transactions schedule deterministic follow-up
  // transactions (stream triggers, window triggers) without recursion.
  std::deque<QueueItem> work;
  work.push_back({proc_name, std::move(input), std::chrono::steady_clock::now()});
  bool first = true;
  Status first_status = Status::OK();

  while (!work.empty()) {
    QueueItem item = std::move(work.front());
    work.pop_front();

    auto proc_it = procedures_.find(item.procedure);
    if (proc_it == procedures_.end()) {
      Status st = Status::NotFound("no procedure named " + item.procedure);
      if (first) return st;
      continue;  // follow-up with missing proc: drop (cannot happen via API)
    }

    ProcContext ctx(this, item.input, next_txn_id_++);
    Status st = proc_it->second(&ctx);
    if (!st.ok()) {
      ++aborted_;
      if (first) first_status = st;
      first = false;
      continue;  // abort: discard buffered effects
    }

    // Commit: apply buffered effects.
    for (ProcContext::PendingWrite& w : ctx.writes_) {
      TableState& t = tables_.at(w.table);
      Value key = w.row[0];
      t.rows.insert_or_assign(std::move(key), std::move(w.row));
    }
    std::vector<QueueItem> follow_ups;
    for (ProcContext::PendingAppend& a : ctx.appends_) {
      BIGDAWG_RETURN_NOT_OK(ApplyAppend(a.stream, a.row, &follow_ups));
    }
    for (Row& alert : ctx.alerts_) alerts_.push_back(std::move(alert));
    ++committed_;
    if (first && log_commit) {
      command_log_.push_back({item.procedure, item.input});
    }
    for (QueueItem& f : follow_ups) work.push_back(std::move(f));
    first = false;
  }
  return first_status;
}

// ---- Execution ----

StreamEngine::~StreamEngine() { Stop(); }

void StreamEngine::Start() {
  std::lock_guard lock(queue_mu_);
  if (running_) return;
  running_ = true;
  executor_ = std::thread([this] { ExecutorLoop(); });
}

void StreamEngine::Stop() {
  {
    std::lock_guard lock(queue_mu_);
    if (!running_) return;
    running_ = false;
  }
  queue_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
}

Status StreamEngine::Ingest(const std::string& stream, Row row) {
  {
    std::lock_guard lock(queue_mu_);
    if (!running_) {
      return Status::FailedPrecondition("engine not started (call Start())");
    }
    if (streams_.count(stream) == 0) {
      return Status::NotFound("no stream named " + stream);
    }
    queue_.push_back(
        {IngestProcName(stream), std::move(row), std::chrono::steady_clock::now()});
  }
  queue_cv_.notify_one();
  return Status::OK();
}

void StreamEngine::WaitForDrain() {
  std::unique_lock lock(queue_mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void StreamEngine::ExecutorLoop() {
  while (true) {
    QueueItem item;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !running_ || !queue_.empty(); });
      if (!running_ && queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    (void)RunTransaction(item.procedure, std::move(item.input), /*log_commit=*/true);
    double latency_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  item.enqueued)
            .count();
    {
      std::lock_guard lock(queue_mu_);
      latencies_ms_.push_back(latency_ms);
      busy_ = false;
      if (queue_.empty()) drain_cv_.notify_all();
    }
  }
}

Status StreamEngine::ExecuteProcedure(const std::string& name, Row input) {
  return RunTransaction(name, std::move(input), /*log_commit=*/true);
}

// ---- Inspection ----

Result<std::vector<Row>> StreamEngine::StreamContents(const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) return Status::NotFound("no stream named " + name);
  return std::vector<Row>(it->second.buffer.begin(), it->second.buffer.end());
}

Result<std::vector<Row>> StreamEngine::WindowContents(const std::string& name) const {
  auto it = windows_.find(name);
  if (it == windows_.end()) return Status::NotFound("no window named " + name);
  return std::vector<Row>(it->second.buffer.begin(), it->second.buffer.end());
}

Result<Row> StreamEngine::TableGet(const std::string& table, const Value& key) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no state table named " + table);
  auto row_it = it->second.rows.find(key);
  if (row_it == it->second.rows.end()) {
    return Status::NotFound("no row with key " + key.ToString());
  }
  return row_it->second;
}

Result<std::vector<Row>> StreamEngine::TableScan(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no state table named " + table);
  std::vector<Row> out;
  out.reserve(it->second.rows.size());
  for (const auto& [key, row] : it->second.rows) out.push_back(row);
  return out;
}

Result<Schema> StreamEngine::StreamSchema(const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) return Status::NotFound("no stream named " + name);
  return it->second.schema;
}

Result<Schema> StreamEngine::WindowSchema(const std::string& name) const {
  auto it = windows_.find(name);
  if (it == windows_.end()) return Status::NotFound("no window named " + name);
  return streams_.at(it->second.stream).schema;
}

Result<Schema> StreamEngine::TableSchema(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no state table named " + name);
  return it->second.schema;
}

std::vector<Row> StreamEngine::TakeAlerts() {
  std::vector<Row> out;
  out.swap(alerts_);
  return out;
}

LatencyStats StreamEngine::GetLatencyStats() const {
  std::lock_guard lock(queue_mu_);
  LatencyStats stats;
  if (latencies_ms_.empty()) return stats;
  std::vector<double> sorted = latencies_ms_;
  std::sort(sorted.begin(), sorted.end());
  stats.count = static_cast<int64_t>(sorted.size());
  auto pct = [&sorted](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  stats.p50_ms = pct(0.50);
  stats.p95_ms = pct(0.95);
  stats.p99_ms = pct(0.99);
  stats.max_ms = sorted.back();
  double sum = 0;
  for (double v : sorted) sum += v;
  stats.mean_ms = sum / static_cast<double>(sorted.size());
  return stats;
}

// ---- Recovery ----

std::vector<LogRecord> StreamEngine::SnapshotCommandLog() const {
  return command_log_;
}

std::string StreamEngine::SerializeLog(const std::vector<LogRecord>& log) {
  BinaryWriter writer;
  writer.PutUint32(static_cast<uint32_t>(log.size()));
  for (const LogRecord& rec : log) {
    writer.PutString(rec.procedure);
    writer.PutRow(rec.input);
  }
  return writer.Release();
}

Result<std::vector<LogRecord>> StreamEngine::DeserializeLog(
    const std::string& bytes) {
  BinaryReader reader(bytes);
  BIGDAWG_ASSIGN_OR_RETURN(uint32_t n, reader.GetUint32());
  std::vector<LogRecord> log;
  log.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LogRecord rec;
    BIGDAWG_ASSIGN_OR_RETURN(rec.procedure, reader.GetString());
    BIGDAWG_ASSIGN_OR_RETURN(rec.input, reader.GetRow());
    log.push_back(std::move(rec));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after command log");
  }
  return log;
}

Status StreamEngine::ReplayLog(const std::vector<LogRecord>& log) {
  for (const LogRecord& rec : log) {
    // Replay re-runs each top-level transaction; follow-ups regenerate
    // deterministically. Aborted-at-runtime statuses are surfaced.
    BIGDAWG_RETURN_NOT_OK(RunTransaction(rec.procedure, rec.input,
                                         /*log_commit=*/true));
  }
  return Status::OK();
}

}  // namespace bigdawg::stream
