#ifndef BIGDAWG_STREAM_WINDOW_AGGREGATOR_H_
#define BIGDAWG_STREAM_WINDOW_AGGREGATOR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/columnar.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"

namespace bigdawg::stream {

/// \brief Point-in-time aggregate values over one window column.
struct AggregateSnapshot {
  int64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when count == 0
  double max = 0;  ///< 0 when count == 0
  double avg = 0;  ///< 0 when count == 0
};

/// \brief Incrementally maintained count/sum/min/max/avg over a sliding
/// window of doubles.
///
/// Sum and count are O(1) per update. Min and max survive eviction via
/// monotonic deques keyed by append sequence number, so each value is
/// pushed and popped at most once: amortized O(1) per append/evict where
/// a rescan would be O(window). This is what lets window triggers read
/// aggregates at ingest rates without touching the window's rows.
///
/// The caller must evict in exact append (FIFO) order — the sliding
/// window's eviction discipline — passing back the same (value, seq)
/// pair it appended.
class WindowAggregator {
 public:
  void Append(double v, int64_t seq);
  void Evict(double v, int64_t seq);
  AggregateSnapshot Snapshot() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  /// Front = current min/max; entries are (seq, value), values weakly
  /// monotone (increasing for min_q_, decreasing for max_q_).
  std::deque<std::pair<int64_t, double>> min_q_;
  std::deque<std::pair<int64_t, double>> max_q_;
};

/// \brief Named aggregate snapshot of one window column.
struct ColumnAggregate {
  std::string column;
  AggregateSnapshot agg;
};

/// \brief The per-window aggregate bank: one WindowAggregator per
/// numeric column of the window's schema, fed on every append/evict.
///
/// Non-numeric columns (and NULL or non-numeric cells in numeric
/// columns) are skipped; their aggregators simply see fewer values, so
/// `count` is per-column, not per-row.
class WindowAggregateBank {
 public:
  /// Binds the bank to the window's schema (numeric columns only).
  void Bind(const Schema& schema);

  void Append(const Row& row, int64_t seq);
  void Evict(const Row& row, int64_t seq);

  /// Columnar bulk ingest: feeds every value of a shared column slice to
  /// the aggregator for schema field `field`, assigning sequence numbers
  /// `first_seq .. first_seq + view.size() - 1`. One contiguous scan over
  /// the slice (the null bitmap short-circuits empty cells) instead of a
  /// row-wise variant probe per cell — the backfill path when a window is
  /// (re)built from an existing relational block. No-op when `field` is
  /// not an aggregated numeric column.
  void AppendColumn(size_t field, const common::ColumnView& view,
                    int64_t first_seq);

  std::vector<ColumnAggregate> Snapshot() const;
  /// Aggregates of the column at schema field index `field`; NotFound
  /// when that field is not numeric (never aggregated).
  Result<AggregateSnapshot> ColumnSnapshot(size_t field) const;

 private:
  struct Slot {
    std::string column;
    size_t field = 0;
    WindowAggregator agg;
  };
  std::vector<Slot> slots_;
};

}  // namespace bigdawg::stream

#endif  // BIGDAWG_STREAM_WINDOW_AGGREGATOR_H_
