#include "stream/window_aggregator.h"

namespace bigdawg::stream {

void WindowAggregator::Append(double v, int64_t seq) {
  ++count_;
  sum_ += v;
  while (!min_q_.empty() && min_q_.back().second >= v) min_q_.pop_back();
  min_q_.emplace_back(seq, v);
  while (!max_q_.empty() && max_q_.back().second <= v) max_q_.pop_back();
  max_q_.emplace_back(seq, v);
}

void WindowAggregator::Evict(double v, int64_t seq) {
  --count_;
  sum_ -= v;
  if (count_ == 0) sum_ = 0;  // cancel accumulated floating-point drift
  if (!min_q_.empty() && min_q_.front().first == seq) min_q_.pop_front();
  if (!max_q_.empty() && max_q_.front().first == seq) max_q_.pop_front();
}

AggregateSnapshot WindowAggregator::Snapshot() const {
  AggregateSnapshot s;
  s.count = count_;
  s.sum = sum_;
  if (count_ > 0) {
    s.min = min_q_.front().second;
    s.max = max_q_.front().second;
    s.avg = sum_ / static_cast<double>(count_);
  }
  return s;
}

void WindowAggregateBank::Bind(const Schema& schema) {
  slots_.clear();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.fields()[i];
    if (!IsNumeric(field.type)) continue;
    Slot slot;
    slot.column = field.name;
    slot.field = i;
    slots_.push_back(std::move(slot));
  }
}

void WindowAggregateBank::Append(const Row& row, int64_t seq) {
  for (Slot& slot : slots_) {
    if (slot.field >= row.size()) continue;
    Result<double> v = row[slot.field].ToNumeric();
    if (v.ok()) slot.agg.Append(*v, seq);
  }
}

void WindowAggregateBank::AppendColumn(size_t field,
                                       const common::ColumnView& view,
                                       int64_t first_seq) {
  for (Slot& slot : slots_) {
    if (slot.field != field) continue;
    const size_t n = view.size();
    for (size_t i = 0; i < n; ++i) {
      if (view.IsNull(i)) continue;
      Result<double> v = view[i].ToNumeric();
      if (v.ok()) slot.agg.Append(*v, first_seq + static_cast<int64_t>(i));
    }
    return;
  }
}

void WindowAggregateBank::Evict(const Row& row, int64_t seq) {
  for (Slot& slot : slots_) {
    if (slot.field >= row.size()) continue;
    Result<double> v = row[slot.field].ToNumeric();
    if (v.ok()) slot.agg.Evict(*v, seq);
  }
}

std::vector<ColumnAggregate> WindowAggregateBank::Snapshot() const {
  std::vector<ColumnAggregate> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back({slot.column, slot.agg.Snapshot()});
  }
  return out;
}

Result<AggregateSnapshot> WindowAggregateBank::ColumnSnapshot(
    size_t field) const {
  for (const Slot& slot : slots_) {
    if (slot.field == field) return slot.agg.Snapshot();
  }
  return Status::NotFound("field " + std::to_string(field) +
                          " is not an aggregated (numeric) window column");
}

}  // namespace bigdawg::stream
