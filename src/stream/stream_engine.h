#ifndef BIGDAWG_STREAM_STREAM_ENGINE_H_
#define BIGDAWG_STREAM_STREAM_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"

namespace bigdawg::stream {

class StreamEngine;

/// \brief Execution context handed to a stored procedure.
///
/// All mutations made through the context are buffered and applied
/// atomically when the procedure returns OK; a non-OK return aborts the
/// transaction and leaves the engine untouched (the S-Store/H-Store
/// single-partition transaction model).
class ProcContext {
 public:
  /// The tuple that triggered this invocation (empty for window triggers).
  const Row& input() const { return input_; }

  /// Reads a state-table row by primary key (first column). Sees the
  /// engine state as of transaction start plus this transaction's writes.
  Result<Row> Get(const std::string& table, const Value& key) const;

  /// Upserts a state-table row (primary key = first cell).
  Status Put(const std::string& table, Row row);

  /// Appends a tuple to a stream (validated against the stream schema).
  Status AppendToStream(const std::string& stream, Row row);

  /// Emits an alert tuple to the engine's alert mailbox.
  void EmitAlert(Row alert);

  /// Read-only view of a window's current contents (pre-transaction).
  Result<std::vector<Row>> Window(const std::string& window) const;

  /// Engine-maintained logical timestamp of this invocation.
  int64_t txn_id() const { return txn_id_; }

 private:
  friend class StreamEngine;
  ProcContext(StreamEngine* engine, Row input, int64_t txn_id)
      : engine_(engine), input_(std::move(input)), txn_id_(txn_id) {}

  struct PendingWrite {
    std::string table;
    Row row;
  };
  struct PendingAppend {
    std::string stream;
    Row row;
  };

  StreamEngine* engine_;
  Row input_;
  int64_t txn_id_;
  std::vector<PendingWrite> writes_;
  std::vector<PendingAppend> appends_;
  std::vector<Row> alerts_;
};

/// \brief A stored procedure body.
using Procedure = std::function<Status(ProcContext*)>;

/// \brief Row evicted from a stream by retention, delivered to the
/// age-out handler (stream name, row).
using AgeOutHandler = std::function<void(const std::string&, const Row&)>;

/// \brief Latency percentiles over committed asynchronous invocations.
struct LatencyStats {
  int64_t count = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double mean_ms = 0;
};

/// \brief One replayable command-log record (procedure + input).
struct LogRecord {
  std::string procedure;
  Row input;
};

/// \brief The transactional stream processing engine (S-Store stand-in).
///
/// Mirrors the paper's three S-Store extensions over an H-Store-style
/// main-memory core:
///  (i)  streams and sliding windows represented as time-varying tables,
///  (ii) an ingestion module absorbing feeds (an in-process queue standing
///       in for the TCP module; see DESIGN.md substitutions),
///  (iii) lightweight recovery via command logging + deterministic replay.
///
/// Concurrency model: one partition, one executor thread; transactions
/// (stored-procedure invocations) run serially, so they are trivially
/// serializable and need no locks — the H-Store execution model.
class StreamEngine {
 public:
  StreamEngine() = default;
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  // ---- Definition (call before Start) ----

  /// Declares a stream. `retention` caps buffered tuples; overflow ages
  /// out oldest-first to the AgeOutHandler (if set).
  Status CreateStream(const std::string& name, Schema schema, size_t retention);

  /// Declares a state table keyed by its first column.
  Status CreateTable(const std::string& name, Schema schema);

  /// Declares a sliding window over a stream: the last `size` tuples,
  /// evaluated every `slide` arrivals once full.
  Status CreateWindow(const std::string& name, const std::string& stream,
                      size_t size, size_t slide);

  Status RegisterProcedure(const std::string& name, Procedure proc);

  /// Binds a stream so each arriving tuple invokes `procedure` with it.
  Status BindStreamTrigger(const std::string& stream, const std::string& procedure);

  /// Binds a window so each slide invokes `procedure` (empty input row).
  Status BindWindowTrigger(const std::string& window, const std::string& procedure);

  void SetAgeOutHandler(AgeOutHandler handler) { age_out_ = std::move(handler); }

  // ---- Execution ----

  /// Starts the partition executor thread.
  void Start();
  /// Drains the queue and stops the executor.
  void Stop();

  /// Asynchronous ingestion (the "TCP feed" entry point): enqueues the
  /// tuple for the stream's trigger procedure.
  Status Ingest(const std::string& stream, Row row);

  /// Blocks until the ingestion queue is empty and the executor is idle.
  void WaitForDrain();

  /// Synchronous invocation (runs on the caller thread; must not be mixed
  /// with a running executor unless externally serialized). Used by tests
  /// and the streaming island's request path.
  Status ExecuteProcedure(const std::string& name, Row input);

  // ---- Inspection ----

  /// Current contents of a stream's retained buffer.
  Result<std::vector<Row>> StreamContents(const std::string& name) const;
  Result<std::vector<Row>> WindowContents(const std::string& name) const;
  Result<Row> TableGet(const std::string& table, const Value& key) const;
  Result<std::vector<Row>> TableScan(const std::string& table) const;
  Result<Schema> StreamSchema(const std::string& name) const;
  /// Schema of a window's rows (= its source stream's schema).
  Result<Schema> WindowSchema(const std::string& name) const;
  Result<Schema> TableSchema(const std::string& name) const;

  /// Drains and returns all alerts emitted since the last call.
  std::vector<Row> TakeAlerts();

  /// Latency percentiles for committed async invocations.
  LatencyStats GetLatencyStats() const;
  int64_t committed_txns() const { return committed_; }
  int64_t aborted_txns() const { return aborted_; }

  // ---- Recovery ----

  /// Copy of the command log (inputs of committed transactions).
  std::vector<LogRecord> SnapshotCommandLog() const;

  /// Replays a command log into this (freshly defined) engine by
  /// re-executing each procedure synchronously.
  Status ReplayLog(const std::vector<LogRecord>& log);

  /// Durable form of the command log: the compact binary wire format the
  /// recovery scheme writes to stable storage.
  static std::string SerializeLog(const std::vector<LogRecord>& log);
  static Result<std::vector<LogRecord>> DeserializeLog(const std::string& bytes);

 private:
  struct StreamState {
    Schema schema;
    size_t retention = 0;
    std::deque<Row> buffer;
    int64_t total_appended = 0;
    std::string trigger;  // procedure invoked per tuple ("" = none)
    std::vector<std::string> windows;
  };

  struct WindowState {
    std::string stream;
    size_t size = 0;
    size_t slide = 0;
    std::deque<Row> buffer;
    size_t arrivals_since_eval = 0;
    std::string trigger;
  };

  struct TableState {
    Schema schema;
    std::map<Value, Row> rows;
  };

  struct QueueItem {
    std::string procedure;
    Row input;
    std::chrono::steady_clock::time_point enqueued;
  };

  friend class ProcContext;

  // Runs one transaction (caller must be the executor thread or hold
  // external serialization). Applies buffered effects on success.
  Status RunTransaction(const std::string& proc_name, Row input, bool log_commit);
  // Applies a committed append to stream/window buffers and fires window
  // triggers; called within the executing transaction's commit.
  Status ApplyAppend(const std::string& stream, const Row& row,
                     std::vector<QueueItem>* follow_ups);

  void ExecutorLoop();

  std::map<std::string, StreamState> streams_;
  std::map<std::string, WindowState> windows_;
  std::map<std::string, TableState> tables_;
  std::map<std::string, Procedure> procedures_;
  AgeOutHandler age_out_;

  // Executor machinery.
  std::thread executor_;
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<QueueItem> queue_;
  bool running_ = false;
  bool busy_ = false;

  // State below is touched only by the executing thread (executor or the
  // synchronous caller); reads from other threads go through queue_mu_ on
  // quiescent engines (documented on the inspection methods).
  int64_t next_txn_id_ = 1;
  int64_t committed_ = 0;
  int64_t aborted_ = 0;
  std::vector<Row> alerts_;
  std::vector<LogRecord> command_log_;
  std::vector<double> latencies_ms_;
};

}  // namespace bigdawg::stream

#endif  // BIGDAWG_STREAM_STREAM_ENGINE_H_
