#ifndef BIGDAWG_STREAM_STREAM_ENGINE_H_
#define BIGDAWG_STREAM_STREAM_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "stream/bounded_queue.h"
#include "stream/window_aggregator.h"

namespace bigdawg::stream {

class StreamEngine;

/// \brief Execution context handed to a stored procedure.
///
/// All mutations made through the context are buffered and applied
/// atomically when the procedure returns OK; a non-OK return aborts the
/// transaction and leaves the engine untouched (the S-Store/H-Store
/// single-partition transaction model).
class ProcContext {
 public:
  /// The tuple that triggered this invocation (empty for window triggers).
  const Row& input() const { return input_; }

  /// Reads a state-table row by primary key (first column). Sees the
  /// engine state as of transaction start plus this transaction's writes.
  Result<Row> Get(const std::string& table, const Value& key) const;

  /// Upserts a state-table row (primary key = first cell).
  Status Put(const std::string& table, Row row);

  /// Appends a tuple to a stream (validated against the stream schema).
  Status AppendToStream(const std::string& stream, Row row);

  /// Emits an alert tuple to the engine's alert mailbox.
  void EmitAlert(Row alert);

  /// Read-only view of a window's current contents (pre-transaction).
  Result<std::vector<Row>> Window(const std::string& window) const;

  /// Incrementally maintained aggregates (count/sum/min/max/avg per
  /// numeric column) of a window — O(columns), never a row rescan.
  Result<std::vector<ColumnAggregate>> WindowAggregates(
      const std::string& window) const;

  /// Engine-maintained logical timestamp of this invocation.
  int64_t txn_id() const { return txn_id_; }

 private:
  friend class StreamEngine;
  ProcContext(StreamEngine* engine, Row input, int64_t txn_id)
      : engine_(engine), input_(std::move(input)), txn_id_(txn_id) {}

  struct PendingWrite {
    std::string table;
    Row row;
  };
  struct PendingAppend {
    std::string stream;
    Row row;
  };

  StreamEngine* engine_;
  Row input_;
  int64_t txn_id_;
  std::vector<PendingWrite> writes_;
  std::vector<PendingAppend> appends_;
  std::vector<Row> alerts_;
};

/// \brief A stored procedure body.
using Procedure = std::function<Status(ProcContext*)>;

/// \brief Row evicted from a stream by retention, delivered to the
/// age-out handler (stream name, row). Runs on the executor thread with
/// the engine state lock held — handlers buffer, they do not re-enter
/// the engine.
using AgeOutHandler = std::function<void(const std::string&, const Row&)>;

/// \brief Health probe consulted before engine work. The polystore wires
/// this to BigDawg::CheckEngine so the fault plane (injected outages,
/// latency, chaos storms) covers the streaming island's ingest and
/// advance paths exactly like every other engine shim.
using EngineCheck = std::function<Status()>;

/// \brief Latency percentiles over committed asynchronous invocations.
struct LatencyStats {
  int64_t count = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double mean_ms = 0;
};

/// \brief One replayable command-log record (procedure + input).
struct LogRecord {
  std::string procedure;
  Row input;
};

/// \brief Engine tuning. All timing goes through `clock` (never the wall
/// clock directly), matching the repo-wide convention; tests inject an
/// obs::FakeClock and drive every boundary deterministically.
struct StreamEngineOptions {
  /// Bounded ingestion ring capacity; a full ring backpressures with
  /// ResourceExhausted rather than growing memory or dropping tuples.
  size_t queue_capacity = 1 << 16;
  /// Max tuples the worker dequeues (and processes under one state-lock
  /// acquisition) per batch.
  size_t batch_size = 256;
  /// Time source for ingest-lag / advance-latency measurement, retention
  /// age-out, and the worker's fault-retry pacing; null = system clock.
  const obs::Clock* clock = nullptr;
};

/// \brief Per-stream declaration options.
struct StreamOptions {
  /// Caps buffered tuples; overflow ages out oldest-first to the
  /// AgeOutHandler (if set). Must be > 0.
  size_t retention = 0;
  /// Age-based retention in clock-ms; 0 disables. Rows are stamped with
  /// their commit time and evicted (to the AgeOutHandler) once older
  /// than this; eviction runs on every append and every worker batch.
  double retention_ms = 0;
  /// Index of an event-time column (numeric, interpreted as ms) used for
  /// out-of-order accounting; -1 disables. The stream's watermark is the
  /// max event time seen.
  int ts_field = -1;
  /// With ts_field set: tuples whose event time is more than this many
  /// ms behind the watermark are dropped (counted, never appended).
  /// Tuples behind the watermark but within the bound are appended and
  /// counted out-of-order. 0 = never drop.
  double max_lateness_ms = 0;
};

/// \brief Counters and gauges describing the engine's ingest health.
struct StreamEngineStats {
  bool running = false;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  /// depth / capacity in [0, 1]; 1.0 means the front door is refusing
  /// tuples (backpressure) — the readiness probe's wedge signal.
  double queue_saturation = 0;
  int64_t ingested = 0;        ///< tuples accepted by Ingest()
  int64_t backpressured = 0;   ///< Ingest() rejections due to a full ring
  int64_t rejected = 0;        ///< other Ingest() failures (check/stopped/unknown)
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t alerts = 0;
  int64_t aged_out = 0;        ///< rows evicted by retention
  int64_t late_dropped = 0;    ///< rows beyond max_lateness_ms
  int64_t out_of_order = 0;    ///< rows behind the watermark but kept
  int64_t batches = 0;         ///< worker batches processed
  double ingest_lag_p50_ms = 0;   ///< enqueue -> committed
  double ingest_lag_p95_ms = 0;
  double advance_p50_ms = 0;      ///< per-batch window-advance latency
  double advance_p95_ms = 0;
};

/// \brief Snapshot of one stream for the admin surface.
struct StreamInfo {
  std::string name;
  size_t retention = 0;
  double retention_ms = 0;
  size_t buffered = 0;
  int64_t total_appended = 0;
  std::string trigger;
  std::vector<std::string> windows;
};

/// \brief Snapshot of one window for the admin surface.
struct WindowInfo {
  std::string name;
  std::string stream;
  size_t size = 0;
  size_t slide = 0;
  size_t buffered = 0;
  int64_t slides = 0;  ///< times the window trigger fired
  std::string trigger;
};

/// \brief The transactional stream processing engine (S-Store stand-in).
///
/// Mirrors the paper's three S-Store extensions over an H-Store-style
/// main-memory core:
///  (i)  streams and sliding windows represented as time-varying tables,
///  (ii) an ingestion module absorbing feeds — a bounded MPSC ring
///       standing in for the TCP module (see DESIGN.md substitutions):
///       many producers TryPush, one worker drains in batches, overload
///       surfaces as typed ResourceExhausted backpressure,
///  (iii) lightweight recovery via command logging + deterministic replay.
///
/// Concurrency model: one partition, one executor thread; transactions
/// (stored-procedure invocations) run serially, so they are trivially
/// serializable — the H-Store execution model. Engine *state* is guarded
/// by a reader/writer lock the worker takes once per batch, so the
/// inspection surface (island queries, the /streams endpoint, metrics)
/// reads consistent snapshots concurrently with live ingest.
///
/// Definition calls (CreateStream/CreateWindow/...) are rejected while
/// the engine is running: the catalog of streams/windows/procedures is
/// immutable under load, which is what lets Ingest() validate a stream
/// name without touching the state lock.
class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineOptions options = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  // ---- Definition (call before Start) ----

  Status CreateStream(const std::string& name, Schema schema,
                      StreamOptions options);
  /// Count-retention-only convenience overload.
  Status CreateStream(const std::string& name, Schema schema, size_t retention);

  /// Declares a state table keyed by its first column.
  Status CreateTable(const std::string& name, Schema schema);

  /// Declares a sliding window over a stream: the last `size` tuples,
  /// evaluated every `slide` arrivals once full.
  Status CreateWindow(const std::string& name, const std::string& stream,
                      size_t size, size_t slide);

  Status RegisterProcedure(const std::string& name, Procedure proc);

  /// Binds a stream so each arriving tuple invokes `procedure` with it.
  Status BindStreamTrigger(const std::string& stream, const std::string& procedure);

  /// Binds a window so each slide invokes `procedure` (empty input row).
  Status BindWindowTrigger(const std::string& window, const std::string& procedure);

  void SetAgeOutHandler(AgeOutHandler handler);

  /// Replaces the time source (FaultInjector::SetClock convention): tests
  /// point an embedded engine (e.g. BigDawg's) at a FakeClock so window
  /// retention and lag measurement run on fake time. Only legal while
  /// stopped.
  Status SetClock(const obs::Clock* clock);

  /// Installs the fault-plane probe consulted on the ingest front door
  /// and before every worker batch (the advance path). A failing check
  /// rejects ingest with its status; the worker leaves queued tuples in
  /// place and retries after a clock-paced pause, so an engine outage
  /// shows up as backpressure, never as tuple loss.
  void SetEngineCheck(EngineCheck check);

  // ---- Execution ----

  /// Starts the partition executor thread.
  void Start();
  /// Drains the queue and stops the executor.
  void Stop();

  /// Asynchronous ingestion (the "TCP feed" entry point): enqueues the
  /// tuple for the stream's trigger procedure. ResourceExhausted when
  /// the bounded ring is full (backpressure — retry or shed upstream);
  /// FailedPrecondition when the engine is not running.
  Status Ingest(const std::string& stream, Row row);

  /// Blocks until the ingestion queue is empty and the executor is idle.
  void WaitForDrain();

  /// Synchronous invocation (serialized against the executor via the
  /// state lock). Used by tests and the streaming island's request path.
  Status ExecuteProcedure(const std::string& name, Row input);

  /// Runs age-based retention now (the worker also runs it per batch).
  void AdvanceRetention();

  // ---- Inspection (safe concurrently with a running executor) ----

  /// Current contents of a stream's retained buffer.
  Result<std::vector<Row>> StreamContents(const std::string& name) const;
  Result<std::vector<Row>> WindowContents(const std::string& name) const;
  /// Incremental aggregates of a window's numeric columns.
  Result<std::vector<ColumnAggregate>> WindowAggregates(
      const std::string& name) const;
  Result<Row> TableGet(const std::string& table, const Value& key) const;
  Result<std::vector<Row>> TableScan(const std::string& table) const;
  Result<Schema> StreamSchema(const std::string& name) const;
  /// Schema of a window's rows (= its source stream's schema).
  Result<Schema> WindowSchema(const std::string& name) const;
  Result<Schema> TableSchema(const std::string& name) const;

  std::vector<StreamInfo> ListStreams() const;
  std::vector<WindowInfo> ListWindows() const;
  std::vector<std::string> ListTables() const;

  /// Drains and returns all alerts emitted since the last call.
  std::vector<Row> TakeAlerts();

  /// Latency percentiles for committed async invocations.
  LatencyStats GetLatencyStats() const;
  int64_t committed_txns() const {
    return committed_.load(std::memory_order_relaxed);
  }
  int64_t aborted_txns() const {
    return aborted_.load(std::memory_order_relaxed);
  }

  /// Ingest-health snapshot (queue depth/saturation, backpressure and
  /// drop counters, lag percentiles) for /streams and readiness probes.
  StreamEngineStats GetStats() const;

  /// Publishes the stats snapshot as bigdawg_stream_* series. Called by
  /// QueryService::DumpMetrics so every scrape sees fresh values.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  // ---- Recovery ----

  /// Copy of the command log (inputs of committed transactions).
  std::vector<LogRecord> SnapshotCommandLog() const;

  /// Replays a command log into this (freshly defined) engine by
  /// re-executing each procedure synchronously.
  Status ReplayLog(const std::vector<LogRecord>& log);

  /// Durable form of the command log: the compact binary wire format the
  /// recovery scheme writes to stable storage.
  static std::string SerializeLog(const std::vector<LogRecord>& log);
  static Result<std::vector<LogRecord>> DeserializeLog(const std::string& bytes);

 private:
  struct StreamState {
    Schema schema;
    StreamOptions options;
    std::deque<Row> buffer;
    /// Commit times aligned with `buffer`; maintained only when
    /// options.retention_ms > 0.
    std::deque<obs::Clock::TimePoint> arrivals;
    double watermark_ms = 0;  ///< max event time seen (ts_field streams)
    bool watermark_set = false;
    int64_t total_appended = 0;
    std::string trigger;  // procedure invoked per tuple ("" = none)
    std::vector<std::string> windows;
  };

  struct WindowState {
    std::string stream;
    size_t size = 0;
    size_t slide = 0;
    std::deque<Row> buffer;
    size_t arrivals_since_eval = 0;
    int64_t slides = 0;
    /// Sequence of the next append; evictions replay seqs FIFO.
    int64_t next_seq = 0;
    int64_t evict_seq = 0;
    WindowAggregateBank aggregates;
    std::string trigger;
  };

  struct TableState {
    Schema schema;
    std::map<Value, Row> rows;
  };

  struct QueueItem {
    std::string procedure;
    Row input;
    obs::Clock::TimePoint enqueued;
  };

  friend class ProcContext;

  /// Definition calls are only legal on a stopped engine.
  Status RequireStopped() const;

  // Runs one transaction; caller holds state_mu_ exclusively. Applies
  // buffered effects on success.
  Status RunTransactionLocked(const std::string& proc_name, Row input,
                              bool log_commit);
  // Applies a committed append to stream/window buffers and fires window
  // triggers; called within the executing transaction's commit.
  Status ApplyAppend(const std::string& stream, const Row& row,
                     std::vector<QueueItem>* follow_ups);
  /// Evicts one row from the head of `s` (retention), feeding windows'
  /// aggregate eviction is NOT involved — windows evict by their own
  /// size — but the age-out handler is.
  void EvictOldest(const std::string& name, StreamState& s);
  /// Age-based retention sweep over every stream; caller holds state_mu_.
  void AdvanceRetentionLocked();

  void ExecutorLoop();

  const StreamEngineOptions options_;
  const obs::Clock* clock_;  ///< never null; reassignable via SetClock

  std::map<std::string, StreamState> streams_;
  std::map<std::string, WindowState> windows_;
  std::map<std::string, TableState> tables_;
  std::map<std::string, Procedure> procedures_;
  AgeOutHandler age_out_;
  EngineCheck engine_check_;

  // Ingestion front door + executor machinery.
  BoundedMpscQueue<QueueItem> queue_;
  std::thread executor_;
  mutable std::mutex run_mu_;  ///< guards start/stop transitions + drain waits
  std::condition_variable drain_cv_;
  std::atomic<bool> running_{false};
  /// Drain accounting: Ingest bumps accepted_ after a successful push, the
  /// executor bumps processed_ after committing a batch. Drained means
  /// processed_ has caught up — this closes the pop-but-not-yet-processed
  /// window a queue-empty check alone would miss.
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> processed_{0};

  /// Guards engine state (streams_/windows_/tables_ contents, alerts_,
  /// command log, txn ids). The executor takes it exclusively once per
  /// batch; inspection readers share it. The maps' *structure* is frozen
  /// while running (definitions require a stopped engine), so Ingest()
  /// may probe stream existence without this lock.
  mutable std::shared_mutex state_mu_;
  int64_t next_txn_id_ = 1;
  std::vector<Row> alerts_;
  std::vector<LogRecord> command_log_;

  // Counters are atomics: bumped on the ingest path (producers) and the
  // executor without taking state_mu_.
  std::atomic<int64_t> committed_{0};
  std::atomic<int64_t> aborted_{0};
  std::atomic<int64_t> ingested_{0};
  std::atomic<int64_t> backpressured_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> alerts_total_{0};
  std::atomic<int64_t> aged_out_{0};
  std::atomic<int64_t> late_dropped_{0};
  std::atomic<int64_t> out_of_order_{0};
  std::atomic<int64_t> batches_{0};

  /// Bounded reservoirs for lag/latency percentiles (PR 3 convention:
  /// one SampleWindow implementation behind every p50/p95).
  mutable std::mutex stats_mu_;
  obs::SampleWindow ingest_lag_ms_;
  obs::SampleWindow advance_ms_;
};

}  // namespace bigdawg::stream

#endif  // BIGDAWG_STREAM_STREAM_ENGINE_H_
