#ifndef BIGDAWG_STREAM_ALERTING_H_
#define BIGDAWG_STREAM_ALERTING_H_

#include <string>

#include "common/result.h"
#include "common/value.h"
#include "stream/stream_engine.h"

namespace bigdawg::stream {

/// \brief Configuration for the waveform-vs-reference alerting pipeline —
/// the paper's real-time ICU monitoring interface: live vitals compared
/// against per-patient reference bounds, alerts raised on excursions.
struct WaveformAlertConfig {
  /// Live stream carrying (key, value, ...) tuples.
  std::string stream;
  /// Sliding window over `stream` whose incremental mean is compared
  /// against the reference mean on every slide.
  std::string window;
  /// State table of reference rows (key, low, high, mean) — typically
  /// loaded from the array engine's historical waveform statistics.
  std::string reference;
  /// Index of the patient/channel key column in the stream schema.
  size_t key_field = 0;
  /// Index of the measured value column in the stream schema.
  size_t value_field = 1;
  /// Window-mean alert fires when |window avg - ref mean| exceeds this
  /// fraction of the reference mean's magnitude.
  double window_tolerance = 0.2;
  /// Reference-row key the window-mean check compares against (windows
  /// span tuples from many keys; pick the monitored one).
  Value window_key;
};

/// Names of the stored procedures InstallWaveformAlert registers; exposed
/// so callers can invoke them directly (EXECUTE via the stream island).
std::string WaveformThresholdProcName(const WaveformAlertConfig& config);
std::string WaveformWindowProcName(const WaveformAlertConfig& config);

/// \brief Installs the two-level alerting stored procedures on `engine`
/// and binds them as triggers:
///
///  1. per-tuple threshold check (stream trigger): look up the tuple's
///     reference row by key; a value outside [low, high] emits
///     ("threshold", key, value, low, high);
///  2. window-mean drift check (window trigger): read the window's
///     *incrementally maintained* average — O(1), no row rescan — and
///     compare against the reference mean; drift beyond the tolerance
///     emits ("window_mean", key, avg, ref_mean).
///
/// Tuples whose key has no reference row pass silently (new patients are
/// not alert storms). The engine must be stopped (definitions frozen
/// while running); stream, window, and reference table must exist.
Status InstallWaveformAlert(StreamEngine* engine,
                            const WaveformAlertConfig& config);

}  // namespace bigdawg::stream

#endif  // BIGDAWG_STREAM_ALERTING_H_
