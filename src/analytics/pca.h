#ifndef BIGDAWG_ANALYTICS_PCA_H_
#define BIGDAWG_ANALYTICS_PCA_H_

#include <vector>

#include "analytics/linalg.h"
#include "common/result.h"

namespace bigdawg::analytics {

/// \brief One principal component.
struct PrincipalComponent {
  Vec direction;      // unit vector, length d
  double eigenvalue;  // variance explained along the direction
};

/// \brief Top-k PCA of a row-major n x d sample matrix via power iteration
/// with deflation on the covariance matrix (the "eigenanalysis (e.g.
/// power iterations)" of the paper's §2.4).
Result<std::vector<PrincipalComponent>> Pca(const Mat& samples, size_t k,
                                            size_t max_iters = 500,
                                            double tolerance = 1e-9);

/// \brief Projects samples onto the given components (n x k scores).
Result<Mat> ProjectOntoComponents(const Mat& samples,
                                  const std::vector<PrincipalComponent>& comps);

}  // namespace bigdawg::analytics

#endif  // BIGDAWG_ANALYTICS_PCA_H_
