#include "analytics/fft.h"

#include <cmath>

#include "common/macros.h"

namespace bigdawg::analytics {

namespace {
constexpr double kPi = 3.14159265358979323846;

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

Status FftInternal(std::vector<std::complex<double>>* data, bool inverse) {
  std::vector<std::complex<double>>& a = *data;
  const size_t n = a.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("FFT length must be a power of two, got " +
                                   std::to_string(n));
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  // Butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2 * kPi / static_cast<double>(len) * (inverse ? 1 : -1);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1);
      for (size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = a[i + k];
        std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
  return Status::OK();
}

}  // namespace

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status Fft(std::vector<std::complex<double>>* data) {
  return FftInternal(data, /*inverse=*/false);
}

Status InverseFft(std::vector<std::complex<double>>* data) {
  return FftInternal(data, /*inverse=*/true);
}

Result<std::vector<double>> PowerSpectrum(const std::vector<double>& signal) {
  if (signal.empty()) return Status::InvalidArgument("empty signal");
  const size_t n = NextPowerOfTwo(signal.size());
  std::vector<std::complex<double>> buf(n);
  for (size_t i = 0; i < signal.size(); ++i) buf[i] = signal[i];
  BIGDAWG_RETURN_NOT_OK(Fft(&buf));
  std::vector<double> spectrum(n / 2);
  for (size_t k = 0; k < n / 2; ++k) spectrum[k] = std::abs(buf[k]);
  return spectrum;
}

Result<size_t> DominantFrequencyBin(const std::vector<double>& signal) {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<double> spectrum, PowerSpectrum(signal));
  if (spectrum.size() < 2) {
    return Status::InvalidArgument("signal too short for spectral analysis");
  }
  size_t best = 1;  // skip the DC bin
  for (size_t k = 2; k < spectrum.size(); ++k) {
    if (spectrum[k] > spectrum[best]) best = k;
  }
  return best;
}

}  // namespace bigdawg::analytics
