#ifndef BIGDAWG_ANALYTICS_FFT_H_
#define BIGDAWG_ANALYTICS_FFT_H_

#include <complex>
#include <vector>

#include "common/result.h"

namespace bigdawg::analytics {

/// \brief In-place radix-2 Cooley-Tukey FFT. Length must be a power of two.
Status Fft(std::vector<std::complex<double>>* data);

/// \brief Inverse FFT (unscaled input, output scaled by 1/N).
Status InverseFft(std::vector<std::complex<double>>* data);

/// \brief Magnitude spectrum of a real signal: pads to the next power of
/// two with zeros and returns |X[k]| for k in [0, N/2).
Result<std::vector<double>> PowerSpectrum(const std::vector<double>& signal);

/// \brief Index of the dominant non-DC frequency bin of a real signal —
/// the primitive the ICU workflow uses to compare a live waveform's
/// rhythm against a reference.
Result<size_t> DominantFrequencyBin(const std::vector<double>& signal);

/// \brief Next power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

}  // namespace bigdawg::analytics

#endif  // BIGDAWG_ANALYTICS_FFT_H_
