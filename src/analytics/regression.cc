#include "analytics/regression.h"

#include "common/macros.h"

namespace bigdawg::analytics {

Result<double> RegressionModel::Predict(const Vec& features) const {
  if (features.size() + 1 != coefficients.size()) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(coefficients.size() - 1) +
                                   " features, got " +
                                   std::to_string(features.size()));
  }
  double y = coefficients[0];
  for (size_t i = 0; i < features.size(); ++i) y += coefficients[i + 1] * features[i];
  return y;
}

Result<RegressionModel> FitLinearRegression(const Mat& x, const Vec& y) {
  const size_t n = x.size();
  if (n == 0 || y.size() != n) {
    return Status::InvalidArgument("regression: bad sample dimensions");
  }
  const size_t d = x[0].size();
  if (n <= d + 1) {
    return Status::FailedPrecondition("regression needs n > d + 1 samples");
  }
  // Design matrix with intercept column; solve (A^T A) beta = A^T y.
  const size_t p = d + 1;
  Mat ata(p, Vec(p, 0.0));
  Vec aty(p, 0.0);
  Vec row(p);
  for (size_t s = 0; s < n; ++s) {
    if (x[s].size() != d) return Status::InvalidArgument("ragged design matrix");
    row[0] = 1.0;
    for (size_t j = 0; j < d; ++j) row[j + 1] = x[s][j];
    for (size_t i = 0; i < p; ++i) {
      for (size_t j = i; j < p; ++j) ata[i][j] += row[i] * row[j];
      aty[i] += row[i] * y[s];
    }
  }
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
  }
  BIGDAWG_ASSIGN_OR_RETURN(Vec beta, SolveLinearSystem(std::move(ata), std::move(aty)));

  RegressionModel model;
  model.coefficients = std::move(beta);

  BIGDAWG_ASSIGN_OR_RETURN(double y_mean, Mean(y));
  double ss_res = 0, ss_tot = 0;
  for (size_t s = 0; s < n; ++s) {
    BIGDAWG_ASSIGN_OR_RETURN(double pred, model.Predict(x[s]));
    ss_res += (y[s] - pred) * (y[s] - pred);
    ss_tot += (y[s] - y_mean) * (y[s] - y_mean);
  }
  model.r_squared = ss_tot == 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return model;
}

Result<RegressionModel> FitSimpleRegression(const Vec& x, const Vec& y) {
  Mat design(x.size(), Vec(1));
  for (size_t i = 0; i < x.size(); ++i) design[i][0] = x[i];
  return FitLinearRegression(design, y);
}

}  // namespace bigdawg::analytics
