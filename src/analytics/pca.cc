#include "analytics/pca.h"

#include <cmath>

#include "common/macros.h"
#include "common/rng.h"

namespace bigdawg::analytics {

Result<std::vector<PrincipalComponent>> Pca(const Mat& samples, size_t k,
                                            size_t max_iters, double tolerance) {
  if (samples.size() < 2) return Status::FailedPrecondition("PCA needs >= 2 samples");
  const size_t d = samples[0].size();
  if (k == 0 || k > d) {
    return Status::InvalidArgument("k must be in [1, d]");
  }
  BIGDAWG_ASSIGN_OR_RETURN(Mat cov, CovarianceMatrix(samples));

  Rng rng(1234567);
  std::vector<PrincipalComponent> components;
  for (size_t comp = 0; comp < k; ++comp) {
    // Power iteration with a deterministic random start.
    Vec v(d);
    for (double& x : v) x = rng.NextGaussian();
    double norm = Norm(v);
    for (double& x : v) x /= norm;

    double eigenvalue = 0;
    for (size_t iter = 0; iter < max_iters; ++iter) {
      BIGDAWG_ASSIGN_OR_RETURN(Vec w, MatVec(cov, v));
      double wnorm = Norm(w);
      if (wnorm < 1e-14) {
        eigenvalue = 0;
        break;  // null direction: remaining variance is ~0
      }
      for (double& x : w) x /= wnorm;
      // Convergence: |1 - |<v, w>|| small.
      BIGDAWG_ASSIGN_OR_RETURN(double cos_angle, Dot(v, w));
      v = std::move(w);
      eigenvalue = wnorm;
      if (std::fabs(1.0 - std::fabs(cos_angle)) < tolerance) break;
    }
    components.push_back({v, eigenvalue});

    // Deflate: cov -= lambda * v v^T.
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) {
        cov[i][j] -= eigenvalue * v[i] * v[j];
      }
    }
  }
  return components;
}

Result<Mat> ProjectOntoComponents(const Mat& samples,
                                  const std::vector<PrincipalComponent>& comps) {
  BIGDAWG_ASSIGN_OR_RETURN(Vec means, ColumnMeans(samples));
  Mat scores(samples.size(), Vec(comps.size(), 0.0));
  for (size_t s = 0; s < samples.size(); ++s) {
    Vec centered(means.size());
    for (size_t j = 0; j < means.size(); ++j) centered[j] = samples[s][j] - means[j];
    for (size_t c = 0; c < comps.size(); ++c) {
      BIGDAWG_ASSIGN_OR_RETURN(double score, Dot(centered, comps[c].direction));
      scores[s][c] = score;
    }
  }
  return scores;
}

}  // namespace bigdawg::analytics
