#include "analytics/kmeans.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace bigdawg::analytics {

namespace {

double SquaredDistance(const Vec& a, const Vec& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

Result<KMeansResult> KMeans(const Mat& samples, size_t k, uint64_t seed,
                            size_t max_iters) {
  const size_t n = samples.size();
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (n < k) return Status::FailedPrecondition("fewer samples than clusters");
  const size_t d = samples[0].size();
  for (const Vec& row : samples) {
    if (row.size() != d) return Status::InvalidArgument("ragged sample matrix");
  }

  Rng rng(seed);
  // k-means++ seeding.
  Mat centroids;
  centroids.push_back(samples[rng.NextBelow(n)]);
  std::vector<double> dist2(n, 0.0);
  while (centroids.size() < k) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (const Vec& c : centroids) best = std::min(best, SquaredDistance(samples[i], c));
      dist2[i] = best;
      total += best;
    }
    if (total <= 0) {
      // All points coincide with centroids; duplicate one.
      centroids.push_back(samples[rng.NextBelow(n)]);
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = 0;
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      acc += dist2[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(samples[chosen]);
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        double dd = SquaredDistance(samples[i], centroids[c]);
        if (dd < best_d) {
          best_d = dd;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update step.
    Mat sums(k, Vec(d, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = result.assignment[i];
      ++counts[c];
      for (size_t j = 0; j < d; ++j) sums[c][j] += samples[i][j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep previous centroid for empty cluster
      for (size_t j = 0; j < d; ++j) {
        centroids[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
  }

  result.centroids = std::move(centroids);
  result.inertia = 0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(samples[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace bigdawg::analytics
