#include "analytics/sparse.h"

#include <algorithm>
#include <map>

namespace bigdawg::analytics {

Result<CsrMatrix> CsrMatrix::FromTriplets(int64_t rows, int64_t cols,
                                          std::vector<Triplet> triplets) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("matrix dimensions must be positive");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::OutOfRange("triplet (" + std::to_string(t.row) + "," +
                                std::to_string(t.col) + ") outside " +
                                std::to_string(rows) + "x" + std::to_string(cols));
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  for (size_t i = 0; i < triplets.size();) {
    // Sum duplicates.
    size_t j = i + 1;
    double sum = triplets[i].value;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      m.col_idx_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.row_ptr_[static_cast<size_t>(triplets[i].row) + 1];
    }
    i = j;
  }
  for (size_t r = 1; r < m.row_ptr_.size(); ++r) m.row_ptr_[r] += m.row_ptr_[r - 1];
  return m;
}

Result<Vec> CsrMatrix::SpMV(const Vec& x) const {
  if (static_cast<int64_t>(x.size()) != cols_) {
    return Status::InvalidArgument("SpMV: vector length mismatch");
  }
  Vec y(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0;
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      sum += values_[static_cast<size_t>(k)] *
             x[static_cast<size_t>(col_idx_[static_cast<size_t>(k)])];
    }
    y[static_cast<size_t>(r)] = sum;
  }
  return y;
}

Result<CsrMatrix> CsrMatrix::SpMM(const CsrMatrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("SpMM: inner dimension mismatch");
  }
  std::vector<Triplet> out;
  // Row-by-row accumulation (Gustavson's algorithm with a map accumulator).
  std::map<int64_t, double> acc;
  for (int64_t r = 0; r < rows_; ++r) {
    acc.clear();
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      const int64_t a_col = col_idx_[static_cast<size_t>(k)];
      const double a_val = values_[static_cast<size_t>(k)];
      for (int64_t k2 = other.row_ptr_[static_cast<size_t>(a_col)];
           k2 < other.row_ptr_[static_cast<size_t>(a_col) + 1]; ++k2) {
        acc[other.col_idx_[static_cast<size_t>(k2)]] +=
            a_val * other.values_[static_cast<size_t>(k2)];
      }
    }
    for (const auto& [c, v] : acc) {
      if (v != 0.0) out.push_back({r, c, v});
    }
  }
  return FromTriplets(rows_, other.cols_, std::move(out));
}

Mat CsrMatrix::ToDense() const {
  Mat dense(static_cast<size_t>(rows_), Vec(static_cast<size_t>(cols_), 0.0));
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      dense[static_cast<size_t>(r)][static_cast<size_t>(col_idx_[static_cast<size_t>(k)])] =
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

Result<double> CsrMatrix::At(int64_t r, int64_t c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    return Status::OutOfRange("index outside matrix");
  }
  for (int64_t k = row_ptr_[static_cast<size_t>(r)];
       k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
    if (col_idx_[static_cast<size_t>(k)] == c) return values_[static_cast<size_t>(k)];
  }
  return 0.0;
}

Result<Vec> DenseMatVecBaseline(const Mat& dense, const Vec& x) {
  return MatVec(dense, x);
}

}  // namespace bigdawg::analytics
