#include "analytics/linalg.h"

#include <cmath>

#include "common/macros.h"

namespace bigdawg::analytics {

Result<double> Dot(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("dot: length mismatch " +
                                   std::to_string(a.size()) + " vs " +
                                   std::to_string(b.size()));
  }
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const Vec& a) {
  double sum = 0;
  for (double v : a) sum += v * v;
  return std::sqrt(sum);
}

Result<Vec> MatVec(const Mat& m, const Vec& x) {
  Vec y(m.size(), 0.0);
  for (size_t i = 0; i < m.size(); ++i) {
    if (m[i].size() != x.size()) {
      return Status::InvalidArgument("matvec: width mismatch on row " +
                                     std::to_string(i));
    }
    double sum = 0;
    for (size_t j = 0; j < x.size(); ++j) sum += m[i][j] * x[j];
    y[i] = sum;
  }
  return y;
}

Result<Mat> MatMul(const Mat& a, const Mat& b) {
  if (a.empty() || b.empty()) return Status::InvalidArgument("empty matrix");
  const size_t n = a.size();
  const size_t k = b.size();
  const size_t m = b[0].size();
  for (const auto& row : a) {
    if (row.size() != k) return Status::InvalidArgument("matmul: inner mismatch");
  }
  Mat c(n, Vec(m, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const double aik = a[i][kk];
      if (aik == 0.0) continue;
      for (size_t j = 0; j < m; ++j) c[i][j] += aik * b[kk][j];
    }
  }
  return c;
}

Mat Transpose(const Mat& m) {
  if (m.empty()) return {};
  Mat t(m[0].size(), Vec(m.size()));
  for (size_t i = 0; i < m.size(); ++i) {
    for (size_t j = 0; j < m[i].size(); ++j) t[j][i] = m[i][j];
  }
  return t;
}

Result<Vec> SolveLinearSystem(Mat a, Vec b) {
  const size_t n = a.size();
  if (n == 0 || b.size() != n) {
    return Status::InvalidArgument("solve: bad dimensions");
  }
  for (const auto& row : a) {
    if (row.size() != n) return Status::InvalidArgument("solve: non-square matrix");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::FailedPrecondition("singular matrix in solve");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  Vec x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t j = i + 1; j < n; ++j) sum -= a[i][j] * x[j];
    x[i] = sum / a[i][i];
  }
  return x;
}

Result<Vec> ColumnMeans(const Mat& samples) {
  if (samples.empty()) return Status::InvalidArgument("no samples");
  const size_t d = samples[0].size();
  Vec means(d, 0.0);
  for (const Vec& row : samples) {
    if (row.size() != d) return Status::InvalidArgument("ragged sample matrix");
    for (size_t j = 0; j < d; ++j) means[j] += row[j];
  }
  for (double& m : means) m /= static_cast<double>(samples.size());
  return means;
}

Result<Mat> CovarianceMatrix(const Mat& samples) {
  if (samples.size() < 2) {
    return Status::FailedPrecondition("covariance needs >= 2 samples");
  }
  BIGDAWG_ASSIGN_OR_RETURN(Vec means, ColumnMeans(samples));
  const size_t n = samples.size();
  const size_t d = means.size();
  Mat cov(d, Vec(d, 0.0));
  for (const Vec& row : samples) {
    for (size_t i = 0; i < d; ++i) {
      const double di = row[i] - means[i];
      for (size_t j = i; j < d; ++j) {
        cov[i][j] += di * (row[j] - means[j]);
      }
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov[i][j] /= denom;
      cov[j][i] = cov[i][j];
    }
  }
  return cov;
}

Result<double> Mean(const Vec& v) {
  if (v.empty()) return Status::FailedPrecondition("mean of empty vector");
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

Result<double> Variance(const Vec& v) {
  if (v.size() < 2) return Status::FailedPrecondition("variance needs >= 2 values");
  BIGDAWG_ASSIGN_OR_RETURN(double m, Mean(v));
  double sum = 0;
  for (double x : v) sum += (x - m) * (x - m);
  return sum / static_cast<double>(v.size() - 1);
}

Result<double> PearsonCorrelation(const Vec& x, const Vec& y) {
  if (x.size() != y.size()) return Status::InvalidArgument("length mismatch");
  if (x.size() < 2) return Status::FailedPrecondition("correlation needs >= 2");
  BIGDAWG_ASSIGN_OR_RETURN(double mx, Mean(x));
  BIGDAWG_ASSIGN_OR_RETURN(double my, Mean(y));
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) {
    return Status::FailedPrecondition("zero variance in correlation");
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace bigdawg::analytics
