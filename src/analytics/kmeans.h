#ifndef BIGDAWG_ANALYTICS_KMEANS_H_
#define BIGDAWG_ANALYTICS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "analytics/linalg.h"
#include "common/result.h"

namespace bigdawg::analytics {

/// \brief k-means clustering result.
struct KMeansResult {
  Mat centroids;                  // k x d
  std::vector<size_t> assignment; // per-sample cluster index
  double inertia = 0;             // sum of squared distances to centroids
  size_t iterations = 0;
};

/// \brief Lloyd's algorithm with k-means++ seeding (deterministic from
/// `seed`). Samples is a row-major n x d matrix; requires n >= k >= 1.
Result<KMeansResult> KMeans(const Mat& samples, size_t k, uint64_t seed = 42,
                            size_t max_iters = 100);

}  // namespace bigdawg::analytics

#endif  // BIGDAWG_ANALYTICS_KMEANS_H_
