#ifndef BIGDAWG_ANALYTICS_REGRESSION_H_
#define BIGDAWG_ANALYTICS_REGRESSION_H_

#include <vector>

#include "analytics/linalg.h"
#include "common/result.h"

namespace bigdawg::analytics {

/// \brief Ordinary-least-squares fit result.
struct RegressionModel {
  Vec coefficients;  // [intercept, beta_1, ..., beta_d]
  double r_squared = 0;

  /// Predicted value for a feature vector of length d.
  Result<double> Predict(const Vec& features) const;
};

/// \brief Fits y ~ 1 + X via the normal equations (X is n x d row-major).
/// Requires n > d and a non-singular design.
Result<RegressionModel> FitLinearRegression(const Mat& x, const Vec& y);

/// \brief Convenience simple regression y ~ 1 + x.
Result<RegressionModel> FitSimpleRegression(const Vec& x, const Vec& y);

}  // namespace bigdawg::analytics

#endif  // BIGDAWG_ANALYTICS_REGRESSION_H_
