#ifndef BIGDAWG_ANALYTICS_LINALG_H_
#define BIGDAWG_ANALYTICS_LINALG_H_

#include <vector>

#include "common/result.h"

namespace bigdawg::analytics {

using Vec = std::vector<double>;
using Mat = std::vector<std::vector<double>>;

/// \brief Dot product; lengths must match.
Result<double> Dot(const Vec& a, const Vec& b);

/// \brief Euclidean norm.
double Norm(const Vec& a);

/// \brief y = M * x.
Result<Vec> MatVec(const Mat& m, const Vec& x);

/// \brief C = A * B (dense, cache-friendly i-k-j order).
Result<Mat> MatMul(const Mat& a, const Mat& b);

/// \brief Transpose.
Mat Transpose(const Mat& m);

/// \brief Solves A x = b by Gaussian elimination with partial pivoting;
/// FailedPrecondition when A is (numerically) singular.
Result<Vec> SolveLinearSystem(Mat a, Vec b);

/// \brief Column means of a row-major sample matrix (n x d).
Result<Vec> ColumnMeans(const Mat& samples);

/// \brief d x d sample covariance matrix of a row-major n x d matrix
/// (denominator n-1; requires n >= 2).
Result<Mat> CovarianceMatrix(const Mat& samples);

/// \brief Mean of a vector; FailedPrecondition when empty.
Result<double> Mean(const Vec& v);

/// \brief Sample variance (denominator n-1; requires n >= 2).
Result<double> Variance(const Vec& v);

/// \brief Pearson correlation of two equal-length vectors.
Result<double> PearsonCorrelation(const Vec& x, const Vec& y);

}  // namespace bigdawg::analytics

#endif  // BIGDAWG_ANALYTICS_LINALG_H_
