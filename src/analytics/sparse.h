#ifndef BIGDAWG_ANALYTICS_SPARSE_H_
#define BIGDAWG_ANALYTICS_SPARSE_H_

#include <cstdint>
#include <vector>

#include "analytics/linalg.h"
#include "common/result.h"

namespace bigdawg::analytics {

/// \brief A (row, col, value) triplet.
struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0;
};

/// \brief Compressed-sparse-row matrix — the "next generation sparse
/// linear algebra package" side of the paper's §2.4 TileDB coupling.
class CsrMatrix {
 public:
  /// Builds from triplets (duplicates summed); rows/cols are the matrix
  /// dimensions and must bound the triplet coordinates.
  static Result<CsrMatrix> FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  double density() const {
    return rows_ * cols_ == 0
               ? 0
               : static_cast<double>(nnz()) / static_cast<double>(rows_ * cols_);
  }

  /// y = A x.
  Result<Vec> SpMV(const Vec& x) const;

  /// C = A * B (sparse-sparse, result sparse).
  Result<CsrMatrix> SpMM(const CsrMatrix& other) const;

  /// Dense copy (rows x cols) — for tests and small matrices only.
  Mat ToDense() const;

  /// Value at (r, c); 0 for structurally-empty cells.
  Result<double> At(int64_t r, int64_t c) const;

 private:
  CsrMatrix() = default;

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;  // rows+1 offsets
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

/// \brief Dense reference SpMV used as the baseline in the sparse-vs-dense
/// crossover bench (C10).
Result<Vec> DenseMatVecBaseline(const Mat& dense, const Vec& x);

}  // namespace bigdawg::analytics

#endif  // BIGDAWG_ANALYTICS_SPARSE_H_
