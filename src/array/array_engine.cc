#include "array/array_engine.h"

#include <cstdlib>
#include <mutex>

#include "common/lexer.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace bigdawg::array {

Status ArrayEngine::CreateArray(const std::string& name,
                                std::vector<Dimension> dims,
                                std::vector<std::string> attrs) {
  BIGDAWG_ASSIGN_OR_RETURN(Array a, Array::Create(std::move(dims), std::move(attrs)));
  std::unique_lock lock(mu_);
  if (arrays_.count(name) > 0) {
    return Status::AlreadyExists("array already exists: " + name);
  }
  arrays_.emplace(name, std::move(a));
  return Status::OK();
}

Status ArrayEngine::PutArray(const std::string& name, Array array) {
  std::unique_lock lock(mu_);
  arrays_.insert_or_assign(name, std::move(array));
  return Status::OK();
}

Status ArrayEngine::RemoveArray(const std::string& name) {
  std::unique_lock lock(mu_);
  if (arrays_.erase(name) == 0) return Status::NotFound("no array named " + name);
  return Status::OK();
}

Result<Array> ArrayEngine::GetArray(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("no array named " + name);
  return it->second;
}

bool ArrayEngine::HasArray(const std::string& name) const {
  std::shared_lock lock(mu_);
  return arrays_.count(name) > 0;
}

std::vector<std::string> ArrayEngine::ListArrays() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(arrays_.size());
  for (const auto& [name, array] : arrays_) out.push_back(name);
  return out;
}

Status ArrayEngine::SetCell(const std::string& name, const Coordinates& coords,
                            const std::vector<double>& values) {
  std::unique_lock lock(mu_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("no array named " + name);
  return it->second.Set(coords, values);
}

Status ArrayEngine::AppendRow(const std::string& name, int64_t coord0,
                              const std::vector<double>& values) {
  std::unique_lock lock(mu_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("no array named " + name);
  Array& a = it->second;
  if (a.num_dims() != 2) {
    return Status::FailedPrecondition("AppendRow requires a 2-D array");
  }
  const Dimension& col_dim = a.dims()[1];
  if (static_cast<int64_t>(values.size()) > col_dim.length) {
    return Status::OutOfRange("row longer than second dimension");
  }
  for (size_t j = 0; j < values.size(); ++j) {
    BIGDAWG_RETURN_NOT_OK(a.Set({coord0, col_dim.start + static_cast<int64_t>(j)},
                                {values[j]}));
  }
  return Status::OK();
}

namespace {

/// A tiny arithmetic expression over array attributes: + - * / with
/// parentheses, attribute names, and numeric literals. Compiled to a
/// closure evaluated per cell (no per-cell parsing).
using CellFn = std::function<double(const std::vector<double>&)>;

class ArithParser {
 public:
  ArithParser(TokenCursor* cursor, const std::vector<std::string>& attrs)
      : cur_(*cursor), attrs_(attrs) {}

  Result<CellFn> Parse() { return ParseAdditive(); }

 private:
  Result<CellFn> ParseAdditive() {
    BIGDAWG_ASSIGN_OR_RETURN(CellFn left, ParseMultiplicative());
    while (cur_.Peek().IsSymbol("+") || cur_.Peek().IsSymbol("-")) {
      const bool add = cur_.Next().text == "+";
      BIGDAWG_ASSIGN_OR_RETURN(CellFn right, ParseMultiplicative());
      CellFn prev = std::move(left);
      left = add ? CellFn([prev, right](const std::vector<double>& v) {
               return prev(v) + right(v);
             })
                 : CellFn([prev, right](const std::vector<double>& v) {
                     return prev(v) - right(v);
                   });
    }
    return left;
  }

  Result<CellFn> ParseMultiplicative() {
    BIGDAWG_ASSIGN_OR_RETURN(CellFn left, ParseUnary());
    while (cur_.Peek().IsSymbol("*") || cur_.Peek().IsSymbol("/")) {
      const bool mul = cur_.Next().text == "*";
      BIGDAWG_ASSIGN_OR_RETURN(CellFn right, ParseUnary());
      CellFn prev = std::move(left);
      left = mul ? CellFn([prev, right](const std::vector<double>& v) {
               return prev(v) * right(v);
             })
                 : CellFn([prev, right](const std::vector<double>& v) {
                     double d = right(v);
                     return d == 0.0 ? 0.0 : prev(v) / d;
                   });
    }
    return left;
  }

  Result<CellFn> ParseUnary() {
    if (cur_.ConsumeSymbol("-")) {
      BIGDAWG_ASSIGN_OR_RETURN(CellFn inner, ParseUnary());
      return CellFn([inner](const std::vector<double>& v) { return -inner(v); });
    }
    return ParsePrimary();
  }

  Result<CellFn> ParsePrimary() {
    const Token tok = cur_.Peek();
    if (tok.IsSymbol("(")) {
      cur_.Next();
      BIGDAWG_ASSIGN_OR_RETURN(CellFn inner, ParseAdditive());
      BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
      return inner;
    }
    if (tok.type == TokenType::kInteger || tok.type == TokenType::kFloat) {
      cur_.Next();
      double value = std::strtod(tok.text.c_str(), nullptr);
      return CellFn([value](const std::vector<double>&) { return value; });
    }
    if (tok.type == TokenType::kIdentifier) {
      cur_.Next();
      for (size_t i = 0; i < attrs_.size(); ++i) {
        if (attrs_[i] == tok.text) {
          return CellFn([i](const std::vector<double>& v) { return v[i]; });
        }
      }
      return Status::NotFound("no attribute named " + tok.text);
    }
    return Status::ParseError("unexpected token '" + tok.text +
                              "' in apply expression");
  }

  TokenCursor& cur_;
  const std::vector<std::string>& attrs_;
};

/// Recursive-descent evaluator for the AFL-ish grammar.
class AflParser {
 public:
  AflParser(TokenCursor* cursor, const std::map<std::string, Array>& arrays)
      : cur_(*cursor), arrays_(arrays) {}

  Result<Array> ParseExpr() {
    if (cur_.Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected array name or operator, got '" +
                                cur_.Peek().text + "'");
    }
    std::string name = cur_.Next().text;
    if (!cur_.Peek().IsSymbol("(")) {
      // Bare array name.
      auto it = arrays_.find(name);
      if (it == arrays_.end()) return Status::NotFound("no array named " + name);
      return it->second;
    }
    cur_.Next();  // consume '('
    std::string op = ToLower(name);
    Result<Array> result = [&]() -> Result<Array> {
      if (op == "scan") return ParseScan();
      if (op == "subarray" || op == "between") return ParseSubarray();
      if (op == "filter") return ParseFilter();
      if (op == "apply") return ParseApply();
      if (op == "project") return ParseProject();
      if (op == "aggregate") return ParseAggregate();
      if (op == "window") return ParseWindow();
      if (op == "transpose") return ParseTranspose();
      if (op == "matmul") return ParseMatmul();
      return Status::ParseError("unknown array operator: " + name);
    }();
    BIGDAWG_RETURN_NOT_OK(result.status());
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    return result;
  }

 private:
  Result<Array> ParseScan() { return ParseExpr(); }

  Result<int64_t> ParseInt() {
    bool neg = cur_.ConsumeSymbol("-");
    if (cur_.Peek().type != TokenType::kInteger) {
      return Status::ParseError("expected integer, got '" + cur_.Peek().text + "'");
    }
    int64_t v = std::strtoll(cur_.Next().text.c_str(), nullptr, 10);
    return neg ? -v : v;
  }

  Result<double> ParseNumber() {
    bool neg = cur_.ConsumeSymbol("-");
    const Token& tok = cur_.Peek();
    if (tok.type != TokenType::kInteger && tok.type != TokenType::kFloat) {
      return Status::ParseError("expected number, got '" + tok.text + "'");
    }
    double v = std::strtod(cur_.Next().text.c_str(), nullptr);
    return neg ? -v : v;
  }

  Result<Array> ParseSubarray() {
    BIGDAWG_ASSIGN_OR_RETURN(Array input, ParseExpr());
    const size_t nd = input.num_dims();
    Coordinates lo, hi;
    for (size_t i = 0; i < nd; ++i) {
      BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
      BIGDAWG_ASSIGN_OR_RETURN(int64_t v, ParseInt());
      lo.push_back(v);
    }
    for (size_t i = 0; i < nd; ++i) {
      BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
      BIGDAWG_ASSIGN_OR_RETURN(int64_t v, ParseInt());
      hi.push_back(v);
    }
    return input.Subarray(lo, hi);
  }

  Result<Array> ParseFilter() {
    BIGDAWG_ASSIGN_OR_RETURN(Array input, ParseExpr());
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(std::string attr, cur_.ExpectIdentifier());
    BIGDAWG_ASSIGN_OR_RETURN(size_t attr_idx, input.AttrIndex(attr));
    // Comparison operator.
    const Token op_tok = cur_.Next();
    if (op_tok.type != TokenType::kSymbol) {
      return Status::ParseError("expected comparison operator");
    }
    const std::string op = op_tok.text;
    BIGDAWG_ASSIGN_OR_RETURN(double rhs, ParseNumber());
    auto pred = [attr_idx, op, rhs](const std::vector<double>& values) {
      double v = values[attr_idx];
      if (op == "=") return v == rhs;
      if (op == "<>") return v != rhs;
      if (op == "<") return v < rhs;
      if (op == "<=") return v <= rhs;
      if (op == ">") return v > rhs;
      if (op == ">=") return v >= rhs;
      return false;
    };
    if (op != "=" && op != "<>" && op != "<" && op != "<=" && op != ">" &&
        op != ">=") {
      return Status::ParseError("unknown comparison operator: " + op);
    }
    return input.Filter(pred);
  }

  Result<Array> ParseApply() {
    BIGDAWG_ASSIGN_OR_RETURN(Array input, ParseExpr());
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(std::string new_attr, cur_.ExpectIdentifier());
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    ArithParser arith(&cur_, input.attrs());
    BIGDAWG_ASSIGN_OR_RETURN(CellFn fn, arith.Parse());
    return input.Apply(new_attr, fn);
  }

  Result<Array> ParseProject() {
    BIGDAWG_ASSIGN_OR_RETURN(Array input, ParseExpr());
    std::vector<std::string> attrs;
    while (cur_.ConsumeSymbol(",")) {
      BIGDAWG_ASSIGN_OR_RETURN(std::string attr, cur_.ExpectIdentifier());
      attrs.push_back(std::move(attr));
    }
    return input.ProjectAttrs(attrs);
  }

  Result<Array> ParseAggregate() {
    BIGDAWG_ASSIGN_OR_RETURN(Array input, ParseExpr());
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(std::string func_name, cur_.ExpectIdentifier());
    BIGDAWG_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromString(ToLower(func_name)));
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(std::string attr, cur_.ExpectIdentifier());
    BIGDAWG_ASSIGN_OR_RETURN(size_t attr_idx, input.AttrIndex(attr));
    if (cur_.ConsumeSymbol(",")) {
      BIGDAWG_ASSIGN_OR_RETURN(std::string dim, cur_.ExpectIdentifier());
      BIGDAWG_ASSIGN_OR_RETURN(size_t dim_idx, input.DimIndex(dim));
      BIGDAWG_ASSIGN_OR_RETURN(auto groups,
                               input.AggregateBy(func, attr_idx, dim_idx));
      // Result: 1-D array indexed by the kept dimension.
      const Dimension& kd = input.dims()[dim_idx];
      BIGDAWG_ASSIGN_OR_RETURN(
          Array out,
          Array::Create({Dimension(kd.name, kd.start, kd.length, kd.chunk_length)},
                        {std::string(AggFuncToString(func)) + "_" + attr}));
      for (const auto& [coord, v] : groups) {
        BIGDAWG_RETURN_NOT_OK(out.Set({coord}, {v}));
      }
      return out;
    }
    BIGDAWG_ASSIGN_OR_RETURN(double v, input.Aggregate(func, attr_idx));
    BIGDAWG_ASSIGN_OR_RETURN(
        Array out, Array::Create({Dimension("i", 0, 1, 1)},
                                 {std::string(AggFuncToString(func)) + "_" + attr}));
    BIGDAWG_RETURN_NOT_OK(out.Set({0}, {v}));
    return out;
  }

  Result<Array> ParseWindow() {
    BIGDAWG_ASSIGN_OR_RETURN(Array input, ParseExpr());
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(std::string func_name, cur_.ExpectIdentifier());
    BIGDAWG_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromString(ToLower(func_name)));
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(std::string attr, cur_.ExpectIdentifier());
    BIGDAWG_ASSIGN_OR_RETURN(size_t attr_idx, input.AttrIndex(attr));
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(int64_t radius, ParseInt());
    return input.WindowAggregate(func, attr_idx, radius);
  }

  Result<Array> ParseTranspose() {
    BIGDAWG_ASSIGN_OR_RETURN(Array input, ParseExpr());
    return input.Transpose();
  }

  Result<Array> ParseMatmul() {
    BIGDAWG_ASSIGN_OR_RETURN(Array a, ParseExpr());
    BIGDAWG_RETURN_NOT_OK(cur_.ExpectSymbol(","));
    BIGDAWG_ASSIGN_OR_RETURN(Array b, ParseExpr());
    return a.Matmul(b);
  }

  TokenCursor& cur_;
  const std::map<std::string, Array>& arrays_;
};

}  // namespace

Result<Array> ArrayEngine::Query(const std::string& afl) const {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(afl));
  TokenCursor cursor(std::move(tokens));
  std::shared_lock lock(mu_);
  AflParser parser(&cursor, arrays_);
  BIGDAWG_ASSIGN_OR_RETURN(Array result, parser.ParseExpr());
  if (!cursor.AtEnd()) {
    return Status::ParseError("unexpected trailing input: '" +
                              cursor.Peek().text + "'");
  }
  return result;
}

}  // namespace bigdawg::array
