#include "array/array.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/macros.h"

namespace bigdawg::array {

Result<AggFunc> AggFuncFromString(const std::string& name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "avg") return AggFunc::kAvg;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "stdev") return AggFunc::kStdev;
  return Status::InvalidArgument("unknown aggregate: " + name);
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kStdev:
      return "stdev";
  }
  return "?";
}

namespace {

/// Incremental aggregate accumulator shared by all aggregate entry points.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  double sumsq = 0;
  double min = 0;
  double max = 0;

  void Update(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
    sumsq += v * v;
  }

  Result<double> Finalize(AggFunc f) const {
    switch (f) {
      case AggFunc::kCount:
        return static_cast<double>(count);
      case AggFunc::kSum:
        return sum;
      case AggFunc::kAvg:
        if (count == 0) return Status::FailedPrecondition("avg of empty array");
        return sum / static_cast<double>(count);
      case AggFunc::kMin:
        if (count == 0) return Status::FailedPrecondition("min of empty array");
        return min;
      case AggFunc::kMax:
        if (count == 0) return Status::FailedPrecondition("max of empty array");
        return max;
      case AggFunc::kStdev: {
        if (count == 0) return Status::FailedPrecondition("stdev of empty array");
        double mean = sum / static_cast<double>(count);
        double var = sumsq / static_cast<double>(count) - mean * mean;
        return std::sqrt(std::max(0.0, var));
      }
    }
    return Status::Internal("unhandled aggregate");
  }
};

}  // namespace

Result<Array> Array::Create(std::vector<Dimension> dims,
                            std::vector<std::string> attrs) {
  if (dims.empty()) return Status::InvalidArgument("array needs >= 1 dimension");
  if (attrs.empty()) return Status::InvalidArgument("array needs >= 1 attribute");
  for (const Dimension& d : dims) {
    if (d.length <= 0) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' must have positive length");
    }
    if (d.chunk_length <= 0) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' must have positive chunk length");
    }
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      if (attrs[i] == attrs[j]) {
        return Status::InvalidArgument("duplicate attribute: " + attrs[i]);
      }
    }
  }
  auto rep = std::make_shared<Rep>();
  rep->dims = std::move(dims);
  rep->attrs = std::move(attrs);
  Array a;
  a.rep_ = common::CowPtr<Rep>(std::move(rep));
  return a;
}

Array& Array::Thaw() {
  rep_.Mutable();
  return *this;
}

int64_t Array::ByteSize() const {
  const int64_t cells = static_cast<int64_t>(NumChunks()) * ChunkVolume();
  return cells * static_cast<int64_t>(num_attrs()) * 8 + cells / 8;
}

Result<size_t> Array::AttrIndex(const std::string& name) const {
  const std::vector<std::string>& attr_names = attrs();
  for (size_t i = 0; i < attr_names.size(); ++i) {
    if (attr_names[i] == name) return i;
  }
  return Status::NotFound("no attribute named " + name);
}

Result<size_t> Array::DimIndex(const std::string& name) const {
  const std::vector<Dimension>& ds = dims();
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds[i].name == name) return i;
  }
  return Status::NotFound("no dimension named " + name);
}

int64_t Array::LogicalSize() const {
  int64_t size = 1;
  for (const Dimension& d : dims()) size *= d.length;
  return size;
}

Status Array::CheckCoords(const Coordinates& coords) const {
  const std::vector<Dimension>& ds = dims();
  if (coords.size() != ds.size()) {
    return Status::InvalidArgument("expected " + std::to_string(ds.size()) +
                                   " coordinates, got " +
                                   std::to_string(coords.size()));
  }
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i] < ds[i].start ||
        coords[i] >= ds[i].start + ds[i].length) {
      return Status::OutOfRange("coordinate " + std::to_string(coords[i]) +
                                " outside dimension '" + ds[i].name + "' [" +
                                std::to_string(ds[i].start) + ", " +
                                std::to_string(ds[i].start + ds[i].length) +
                                ")");
    }
  }
  return Status::OK();
}

Coordinates Array::ChunkKeyFor(const Coordinates& coords) const {
  const std::vector<Dimension>& ds = dims();
  Coordinates key(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    key[i] = (coords[i] - ds[i].start) / ds[i].chunk_length;
  }
  return key;
}

size_t Array::OffsetInChunk(const Coordinates& coords, const Coordinates& key) const {
  const std::vector<Dimension>& ds = dims();
  size_t offset = 0;
  for (size_t i = 0; i < coords.size(); ++i) {
    int64_t within = (coords[i] - ds[i].start) - key[i] * ds[i].chunk_length;
    offset = offset * static_cast<size_t>(ds[i].chunk_length) +
             static_cast<size_t>(within);
  }
  return offset;
}

int64_t Array::ChunkVolume() const {
  int64_t v = 1;
  for (const Dimension& d : dims()) v *= d.chunk_length;
  return v;
}

Array::Chunk* Array::GetOrCreateChunk(Rep* rep, const Coordinates& key) {
  auto it = rep->chunks.find(key);
  if (it != rep->chunks.end()) return it->second.Mutable();
  auto chunk = std::make_shared<Chunk>();
  const size_t volume = static_cast<size_t>(ChunkVolume());
  chunk->attr_data.assign(rep->attrs.size(), std::vector<double>(volume, 0.0));
  chunk->filled.assign(volume, false);
  auto inserted =
      rep->chunks.emplace(key, common::CowPtr<Chunk>(std::move(chunk)));
  return inserted.first->second.Mutable();
}

Status Array::Set(const Coordinates& coords, const std::vector<double>& values) {
  BIGDAWG_RETURN_NOT_OK(CheckCoords(coords));
  if (values.size() != num_attrs()) {
    return Status::InvalidArgument("expected " + std::to_string(num_attrs()) +
                                   " attribute values, got " +
                                   std::to_string(values.size()));
  }
  Coordinates key = ChunkKeyFor(coords);
  size_t offset = OffsetInChunk(coords, key);
  Rep* rep = rep_.Mutable();
  Chunk* chunk = GetOrCreateChunk(rep, key);
  for (size_t a = 0; a < values.size(); ++a) chunk->attr_data[a][offset] = values[a];
  if (!chunk->filled[offset]) {
    chunk->filled[offset] = true;
    ++chunk->filled_count;
    ++rep->non_empty;
  }
  return Status::OK();
}

Status Array::SetAttr(const Coordinates& coords, size_t attr, double value) {
  BIGDAWG_RETURN_NOT_OK(CheckCoords(coords));
  if (attr >= num_attrs()) return Status::OutOfRange("attribute index");
  Coordinates key = ChunkKeyFor(coords);
  size_t offset = OffsetInChunk(coords, key);
  Rep* rep = rep_.Mutable();
  Chunk* chunk = GetOrCreateChunk(rep, key);
  chunk->attr_data[attr][offset] = value;
  if (!chunk->filled[offset]) {
    chunk->filled[offset] = true;
    ++chunk->filled_count;
    ++rep->non_empty;
  }
  return Status::OK();
}

Result<std::vector<double>> Array::Get(const Coordinates& coords) const {
  BIGDAWG_RETURN_NOT_OK(CheckCoords(coords));
  Coordinates key = ChunkKeyFor(coords);
  const Rep& rep = *rep_;
  auto it = rep.chunks.find(key);
  if (it == rep.chunks.end()) return Status::NotFound("empty cell");
  const Chunk& chunk = *it->second;
  size_t offset = OffsetInChunk(coords, key);
  if (!chunk.filled[offset]) return Status::NotFound("empty cell");
  std::vector<double> out(num_attrs());
  for (size_t a = 0; a < out.size(); ++a) out[a] = chunk.attr_data[a][offset];
  return out;
}

void Array::Scan(const std::function<bool(const Coordinates&,
                                          const std::vector<double>&)>& fn) const {
  const Rep& rep = *rep_;
  // Deterministic order: sort chunk keys.
  std::map<Coordinates, const Chunk*> ordered;
  for (const auto& [key, chunk] : rep.chunks) ordered.emplace(key, chunk.get());

  const std::vector<Dimension>& ds = rep.dims;
  const size_t nd = ds.size();
  std::vector<double> values(rep.attrs.size());
  Coordinates coords(nd);
  for (const auto& [key, chunk] : ordered) {
    const size_t volume = chunk->filled.size();
    for (size_t offset = 0; offset < volume; ++offset) {
      if (!chunk->filled[offset]) continue;
      // Decode offset -> coordinates (row-major within chunk).
      size_t rem = offset;
      for (size_t i = nd; i-- > 0;) {
        int64_t cl = ds[i].chunk_length;
        coords[i] = ds[i].start + key[i] * cl + static_cast<int64_t>(rem % cl);
        rem /= static_cast<size_t>(cl);
      }
      // Skip cells beyond the array box (partial edge chunks).
      bool in_box = true;
      for (size_t i = 0; i < nd; ++i) {
        if (coords[i] >= ds[i].start + ds[i].length) {
          in_box = false;
          break;
        }
      }
      if (!in_box) continue;
      for (size_t a = 0; a < values.size(); ++a) values[a] = chunk->attr_data[a][offset];
      if (!fn(coords, values)) return;
    }
  }
}

Result<Array> Array::Subarray(const Coordinates& lo, const Coordinates& hi) const {
  const std::vector<Dimension>& ds = dims();
  if (lo.size() != ds.size() || hi.size() != ds.size()) {
    return Status::InvalidArgument("subarray bounds must match dimensionality");
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    if (lo[i] > hi[i]) {
      return Status::InvalidArgument("subarray lo > hi on dimension " +
                                     ds[i].name);
    }
  }
  std::vector<Dimension> new_dims = ds;
  for (size_t i = 0; i < ds.size(); ++i) {
    int64_t clamped_lo = std::max(lo[i], ds[i].start);
    int64_t clamped_hi = std::min(hi[i], ds[i].start + ds[i].length - 1);
    new_dims[i].start = clamped_lo;
    new_dims[i].length = std::max<int64_t>(0, clamped_hi - clamped_lo + 1);
    if (new_dims[i].length == 0) {
      return Status::InvalidArgument("empty subarray on dimension " + ds[i].name);
    }
  }
  BIGDAWG_ASSIGN_OR_RETURN(Array out, Create(new_dims, attrs()));
  Status st = Status::OK();
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    for (size_t i = 0; i < coords.size(); ++i) {
      if (coords[i] < new_dims[i].start ||
          coords[i] >= new_dims[i].start + new_dims[i].length) {
        return true;  // outside the box; keep scanning
      }
    }
    st = out.Set(coords, values);
    return st.ok();
  });
  BIGDAWG_RETURN_NOT_OK(st);
  return out;
}

Result<Array> Array::Filter(
    const std::function<bool(const std::vector<double>&)>& pred) const {
  BIGDAWG_ASSIGN_OR_RETURN(Array out, Create(dims(), attrs()));
  Status st = Status::OK();
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    if (pred(values)) {
      st = out.Set(coords, values);
      return st.ok();
    }
    return true;
  });
  BIGDAWG_RETURN_NOT_OK(st);
  return out;
}

Result<Array> Array::Apply(
    const std::string& new_attr,
    const std::function<double(const std::vector<double>&)>& fn) const {
  std::vector<std::string> new_attrs = attrs();
  for (const std::string& a : new_attrs) {
    if (a == new_attr) {
      return Status::AlreadyExists("attribute already exists: " + new_attr);
    }
  }
  new_attrs.push_back(new_attr);
  BIGDAWG_ASSIGN_OR_RETURN(Array out, Create(dims(), std::move(new_attrs)));
  Status st = Status::OK();
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    std::vector<double> extended = values;
    extended.push_back(fn(values));
    st = out.Set(coords, extended);
    return st.ok();
  });
  BIGDAWG_RETURN_NOT_OK(st);
  return out;
}

Result<Array> Array::ProjectAttrs(const std::vector<std::string>& attrs) const {
  if (attrs.empty()) return Status::InvalidArgument("project needs >= 1 attribute");
  std::vector<size_t> indices;
  for (const std::string& a : attrs) {
    BIGDAWG_ASSIGN_OR_RETURN(size_t idx, AttrIndex(a));
    indices.push_back(idx);
  }
  BIGDAWG_ASSIGN_OR_RETURN(Array out, Create(dims(), attrs));
  Status st = Status::OK();
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    std::vector<double> projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(values[idx]);
    st = out.Set(coords, projected);
    return st.ok();
  });
  BIGDAWG_RETURN_NOT_OK(st);
  return out;
}

Result<double> Array::Aggregate(AggFunc func, size_t attr) const {
  if (attr >= num_attrs()) return Status::OutOfRange("attribute index");
  AggState state;
  Scan([&](const Coordinates&, const std::vector<double>& values) {
    state.Update(values[attr]);
    return true;
  });
  return state.Finalize(func);
}

Result<std::vector<std::pair<int64_t, double>>> Array::AggregateBy(
    AggFunc func, size_t attr, size_t keep_dim) const {
  if (attr >= num_attrs()) return Status::OutOfRange("attribute index");
  if (keep_dim >= num_dims()) return Status::OutOfRange("dimension index");
  std::map<int64_t, AggState> groups;
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    groups[coords[keep_dim]].Update(values[attr]);
    return true;
  });
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(groups.size());
  for (const auto& [coord, state] : groups) {
    BIGDAWG_ASSIGN_OR_RETURN(double v, state.Finalize(func));
    out.emplace_back(coord, v);
  }
  return out;
}

Result<Array> Array::WindowAggregate(AggFunc func, size_t attr,
                                     int64_t radius) const {
  if (num_dims() != 1) {
    return Status::FailedPrecondition("window aggregate requires a 1-D array");
  }
  if (attr >= num_attrs()) return Status::OutOfRange("attribute index");
  if (radius < 0) return Status::InvalidArgument("radius must be >= 0");
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<double> data, ToVector(attr));
  const Dimension& d = dims()[0];
  BIGDAWG_ASSIGN_OR_RETURN(
      Array out, Create({Dimension(d.name, d.start, d.length, d.chunk_length)},
                        {std::string(AggFuncToString(func)) + "_" + attrs()[attr]}));
  const int64_t n = d.length;
  for (int64_t i = 0; i < n; ++i) {
    AggState state;
    for (int64_t j = std::max<int64_t>(0, i - radius);
         j <= std::min(n - 1, i + radius); ++j) {
      state.Update(data[static_cast<size_t>(j)]);
    }
    BIGDAWG_ASSIGN_OR_RETURN(double v, state.Finalize(func));
    BIGDAWG_RETURN_NOT_OK(out.Set({d.start + i}, {v}));
  }
  return out;
}

Result<std::vector<std::vector<double>>> Array::ToMatrix(size_t attr) const {
  if (num_dims() != 2) {
    return Status::FailedPrecondition("ToMatrix requires a 2-D array");
  }
  if (attr >= num_attrs()) return Status::OutOfRange("attribute index");
  const std::vector<Dimension>& ds = dims();
  std::vector<std::vector<double>> m(
      static_cast<size_t>(ds[0].length),
      std::vector<double>(static_cast<size_t>(ds[1].length), 0.0));
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    m[static_cast<size_t>(coords[0] - ds[0].start)]
     [static_cast<size_t>(coords[1] - ds[1].start)] = values[attr];
    return true;
  });
  return m;
}

Result<std::vector<double>> Array::ToVector(size_t attr) const {
  if (num_dims() != 1) {
    return Status::FailedPrecondition("ToVector requires a 1-D array");
  }
  if (attr >= num_attrs()) return Status::OutOfRange("attribute index");
  const Dimension& d = dims()[0];
  std::vector<double> v(static_cast<size_t>(d.length), 0.0);
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    v[static_cast<size_t>(coords[0] - d.start)] = values[attr];
    return true;
  });
  return v;
}

Result<Array> Array::FromVector(const std::vector<double>& data,
                                const std::string& attr) {
  if (data.empty()) return Status::InvalidArgument("empty vector");
  BIGDAWG_ASSIGN_OR_RETURN(
      Array out,
      Create({Dimension("i", 0, static_cast<int64_t>(data.size()), 1024)}, {attr}));
  for (size_t i = 0; i < data.size(); ++i) {
    BIGDAWG_RETURN_NOT_OK(out.Set({static_cast<int64_t>(i)}, {data[i]}));
  }
  return out;
}

Result<Array> Array::FromMatrix(const std::vector<std::vector<double>>& m,
                                const std::string& attr) {
  if (m.empty() || m[0].empty()) return Status::InvalidArgument("empty matrix");
  const int64_t rows = static_cast<int64_t>(m.size());
  const int64_t cols = static_cast<int64_t>(m[0].size());
  for (const auto& row : m) {
    if (static_cast<int64_t>(row.size()) != cols) {
      return Status::InvalidArgument("ragged matrix");
    }
  }
  BIGDAWG_ASSIGN_OR_RETURN(
      Array out, Create({Dimension("row", 0, rows, 64), Dimension("col", 0, cols, 64)},
                        {attr}));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      BIGDAWG_RETURN_NOT_OK(
          out.Set({r, c}, {m[static_cast<size_t>(r)][static_cast<size_t>(c)]}));
    }
  }
  return out;
}

Result<Array> Array::Matmul(const Array& other) const {
  if (num_dims() != 2 || other.num_dims() != 2) {
    return Status::FailedPrecondition("matmul requires 2-D arrays");
  }
  if (dims()[1].length != other.dims()[0].length) {
    return Status::InvalidArgument(
        "inner dimensions differ: " + std::to_string(dims()[1].length) + " vs " +
        std::to_string(other.dims()[0].length));
  }
  BIGDAWG_ASSIGN_OR_RETURN(auto a, ToMatrix(0));
  BIGDAWG_ASSIGN_OR_RETURN(auto b, other.ToMatrix(0));
  const size_t n = a.size();
  const size_t k = b.size();
  const size_t m = b[0].size();
  std::vector<std::vector<double>> c(n, std::vector<double>(m, 0.0));
  // i-k-j loop order for cache-friendly access to b's rows.
  for (size_t i = 0; i < n; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const double aik = a[i][kk];
      if (aik == 0.0) continue;
      const std::vector<double>& brow = b[kk];
      std::vector<double>& crow = c[i];
      for (size_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
  return FromMatrix(c, attrs()[0]);
}

Result<Array> Array::Transpose() const {
  if (num_dims() != 2) {
    return Status::FailedPrecondition("transpose requires a 2-D array");
  }
  std::vector<Dimension> new_dims = {dims()[1], dims()[0]};
  BIGDAWG_ASSIGN_OR_RETURN(Array out, Create(new_dims, attrs()));
  Status st = Status::OK();
  Scan([&](const Coordinates& coords, const std::vector<double>& values) {
    st = out.Set({coords[1], coords[0]}, values);
    return st.ok();
  });
  BIGDAWG_RETURN_NOT_OK(st);
  return out;
}

}  // namespace bigdawg::array
