#ifndef BIGDAWG_ARRAY_ARRAY_H_
#define BIGDAWG_ARRAY_ARRAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cow.h"
#include "common/result.h"

namespace bigdawg::array {

/// \brief One dimension of an array: a named, half-open coordinate range
/// [start, start + length) split into chunks of `chunk_length` cells.
struct Dimension {
  std::string name;
  int64_t start = 0;
  int64_t length = 0;
  int64_t chunk_length = 0;

  Dimension() = default;
  Dimension(std::string name_in, int64_t start_in, int64_t length_in,
            int64_t chunk_length_in)
      : name(std::move(name_in)),
        start(start_in),
        length(length_in),
        chunk_length(chunk_length_in) {}
};

/// \brief Coordinates of a cell (one entry per dimension).
using Coordinates = std::vector<int64_t>;

/// \brief Aggregates supported by the array engine.
enum class AggFunc : int { kCount, kSum, kAvg, kMin, kMax, kStdev };

Result<AggFunc> AggFuncFromString(const std::string& name);
const char* AggFuncToString(AggFunc f);

/// \brief A chunked, n-dimensional array of double attributes (the SciDB
/// stand-in's storage unit).
///
/// Attributes are numeric (double) by design: in the polystore, numeric
/// array data (waveforms, matrices) lives here while string payloads live
/// in the relational and key-value engines. Cells are "empty" until
/// written, so sparse arrays cost memory proportional to occupied chunks.
///
/// Storage is copy-on-write at two levels. An Array is a handle over a
/// refcounted block (dims, attrs, chunk map); copies, engine snapshot
/// reads, and cast-cache hits are pointer swaps. Mutating a shared
/// handle clones only the block's chunk *map* (O(chunks) pointer
/// copies), and each chunk is itself refcounted: a cell write clones
/// just the one chunk it touches, leaving every other chunk shared with
/// the original.
class Array {
 public:
  Array() = default;

  /// Creates an array; every dimension needs positive length and
  /// chunk_length, and at least one attribute is required.
  static Result<Array> Create(std::vector<Dimension> dims,
                              std::vector<std::string> attrs);

  const std::vector<Dimension>& dims() const { return rep_->dims; }
  const std::vector<std::string>& attrs() const { return rep_->attrs; }
  size_t num_dims() const { return rep_->dims.size(); }
  size_t num_attrs() const { return rep_->attrs.size(); }

  Result<size_t> AttrIndex(const std::string& name) const;
  Result<size_t> DimIndex(const std::string& name) const;

  /// Total logical cells (product of dimension lengths).
  int64_t LogicalSize() const;
  /// Number of written (non-empty) cells.
  int64_t NonEmptyCount() const { return rep_->non_empty; }
  /// Number of materialized chunks.
  size_t NumChunks() const { return rep_->chunks.size(); }

  /// O(1) resident size carried on the block: allocated chunk storage
  /// (chunks x chunk volume x attributes x 8 bytes) plus the filled
  /// bitmap. The cast cache's byte accounting.
  int64_t ByteSize() const;

  /// True when both handles alias the same block (a zero-copy share).
  bool SharesStorageWith(const Array& other) const {
    return rep_.SharesWith(other.rep_);
  }
  /// True when no other handle references this block.
  bool UniquelyOwned() const { return rep_.Unique(); }
  /// Ensures exclusive ownership of the block (chunk payloads stay
  /// shared until individually written).
  Array& Thaw();

  /// Writes all attributes of one cell; OutOfRange outside the array box.
  Status Set(const Coordinates& coords, const std::vector<double>& values);
  /// Writes one attribute of one cell (other attributes default to 0).
  Status SetAttr(const Coordinates& coords, size_t attr, double value);

  /// Reads a cell; NotFound when the cell is empty.
  Result<std::vector<double>> Get(const Coordinates& coords) const;

  /// Visits every non-empty cell in chunk order. The callback returns false
  /// to stop early.
  void Scan(const std::function<bool(const Coordinates&,
                                     const std::vector<double>&)>& fn) const;

  /// Restriction to the box [lo, hi] (inclusive, one pair per dimension);
  /// coordinates are preserved.
  Result<Array> Subarray(const Coordinates& lo, const Coordinates& hi) const;

  /// Keeps cells where `pred(attr values)` holds; coordinates preserved.
  Result<Array> Filter(
      const std::function<bool(const std::vector<double>&)>& pred) const;

  /// Adds a derived attribute computed per cell from the existing
  /// attribute values (SciDB's apply()).
  Result<Array> Apply(
      const std::string& new_attr,
      const std::function<double(const std::vector<double>&)>& fn) const;

  /// Keeps only the named attributes, in the given order (SciDB's
  /// project()).
  Result<Array> ProjectAttrs(const std::vector<std::string>& attrs) const;

  /// Aggregates one attribute over all non-empty cells.
  Result<double> Aggregate(AggFunc func, size_t attr) const;

  /// Group-by-dimension aggregate: collapses every dimension except
  /// `keep_dim`, producing (coordinate, aggregate) pairs sorted by
  /// coordinate.
  Result<std::vector<std::pair<int64_t, double>>> AggregateBy(
      AggFunc func, size_t attr, size_t keep_dim) const;

  /// Sliding-window aggregate along `dim` (centered, width = 2*radius+1)
  /// over attribute `attr` for a 1-D array; returns a new 1-D array.
  Result<Array> WindowAggregate(AggFunc func, size_t attr, int64_t radius) const;

  /// Dense 2-D extraction of one attribute (row-major, empty cells are 0).
  /// FailedPrecondition unless the array has exactly 2 dimensions.
  Result<std::vector<std::vector<double>>> ToMatrix(size_t attr) const;

  /// Dense 1-D extraction of one attribute.
  Result<std::vector<double>> ToVector(size_t attr) const;

  /// Builds a 1-D array (dimension "i", chunk 1024) from a vector.
  static Result<Array> FromVector(const std::vector<double>& data,
                                  const std::string& attr = "val");
  /// Builds a 2-D array (dims "row","col") from a dense matrix.
  static Result<Array> FromMatrix(const std::vector<std::vector<double>>& m,
                                  const std::string& attr = "val");

  /// 2-D matrix multiply on attribute 0: (this: n x k) * (other: k x m).
  Result<Array> Matmul(const Array& other) const;
  /// 2-D transpose.
  Result<Array> Transpose() const;

 private:
  struct Chunk : common::CowCount {
    // Per attribute, chunk-volume values; parallel bitmap of filled cells.
    std::vector<std::vector<double>> attr_data;
    std::vector<bool> filled;
    int64_t filled_count = 0;
  };

  struct CoordsHash {
    size_t operator()(const Coordinates& c) const {
      size_t h = 1469598103934665603ULL;
      for (int64_t v : c) {
        h ^= static_cast<size_t>(v);
        h *= 1099511628211ULL;
      }
      return h;
    }
  };

  /// The refcounted block. Copying it (a thaw of a shared handle)
  /// copies chunk *handles*, not chunk payloads.
  struct Rep : common::CowCount {
    std::vector<Dimension> dims;
    std::vector<std::string> attrs;
    std::unordered_map<Coordinates, common::CowPtr<Chunk>, CoordsHash> chunks;
    int64_t non_empty = 0;
  };

  Status CheckCoords(const Coordinates& coords) const;
  Coordinates ChunkKeyFor(const Coordinates& coords) const;
  size_t OffsetInChunk(const Coordinates& coords, const Coordinates& key) const;
  int64_t ChunkVolume() const;
  /// Writable chunk at `key` in `rep` (which must be exclusively owned),
  /// thawing a shared chunk or creating an empty one.
  Chunk* GetOrCreateChunk(Rep* rep, const Coordinates& key);

  common::CowPtr<Rep> rep_;
};

}  // namespace bigdawg::array

#endif  // BIGDAWG_ARRAY_ARRAY_H_
