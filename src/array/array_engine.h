#ifndef BIGDAWG_ARRAY_ARRAY_ENGINE_H_
#define BIGDAWG_ARRAY_ARRAY_ENGINE_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "array/array.h"
#include "common/result.h"

namespace bigdawg::array {

/// \brief The array DBMS (SciDB stand-in): a catalog of named arrays plus
/// an AFL-style functional query language.
///
/// Query grammar (every operator returns an array; aggregates return a
/// one-cell or 1-D array, as in SciDB):
///
///   expr     := NAME
///             | subarray(expr, lo..., hi...)
///             | between(expr, lo..., hi...)         alias of subarray
///             | filter(expr, ATTR op NUMBER)        op in = <> < <= > >=
///             | apply(expr, NEW_ATTR, ARITH)        derived attribute
///             | project(expr, ATTR [, ATTR...])     keep attributes
///             | aggregate(expr, FUNC, ATTR)         overall aggregate
///             | aggregate(expr, FUNC, ATTR, DIM)    group by dimension
///             | window(expr, FUNC, ATTR, RADIUS)    1-D sliding window
///             | transpose(expr)
///             | matmul(expr, expr)
///   FUNC     := count | sum | avg | min | max | stdev
///   ARITH    := attribute/number expressions with + - * / and parens
class ArrayEngine {
 public:
  ArrayEngine() = default;

  ArrayEngine(const ArrayEngine&) = delete;
  ArrayEngine& operator=(const ArrayEngine&) = delete;

  /// Creates an empty array; AlreadyExists if the name is taken.
  Status CreateArray(const std::string& name, std::vector<Dimension> dims,
                     std::vector<std::string> attrs);
  /// Stores (or replaces) an array wholesale — used by CAST loads and
  /// stream age-out.
  Status PutArray(const std::string& name, Array array);
  Status RemoveArray(const std::string& name);

  /// O(1) zero-copy snapshot: shares the stored array's chunk block;
  /// later writes on either side copy-on-write.
  Result<Array> GetArray(const std::string& name) const;
  bool HasArray(const std::string& name) const;
  std::vector<std::string> ListArrays() const;

  /// Writes one cell of a stored array.
  Status SetCell(const std::string& name, const Coordinates& coords,
                 const std::vector<double>& values);

  /// Appends a whole 1-D slice along the first dimension of a 2-D array
  /// at row `coord0` (used by stream age-out of waveforms).
  Status AppendRow(const std::string& name, int64_t coord0,
                   const std::vector<double>& values);

  /// Executes an AFL-style query (see class comment).
  Result<Array> Query(const std::string& afl) const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, Array> arrays_;
};

}  // namespace bigdawg::array

#endif  // BIGDAWG_ARRAY_ARRAY_ENGINE_H_
