#include "seedb/seedb.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/macros.h"
#include "common/rng.h"

namespace bigdawg::seedb {

const char* ViewAggToString(ViewAgg agg) {
  switch (agg) {
    case ViewAgg::kAvg:
      return "avg";
    case ViewAgg::kSum:
      return "sum";
    case ViewAgg::kCount:
      return "count";
  }
  return "?";
}

std::string ViewSpec::ToString() const {
  std::string m = measure.empty() ? "*" : measure;
  return std::string(ViewAggToString(agg)) + "(" + m + ") GROUP BY " + dimension;
}

double EarthMoversDistance(const std::vector<double>& a,
                           const std::vector<double>& b) {
  // Normalize both to probability distributions.
  double sum_a = 0, sum_b = 0;
  for (double v : a) sum_a += std::fabs(v);
  for (double v : b) sum_b += std::fabs(v);
  if (sum_a == 0 && sum_b == 0) return 0;
  if (sum_a == 0 || sum_b == 0) return 1.0;
  // 1-D EMD = cumulative absolute difference.
  double emd = 0, carry = 0;
  const size_t n = std::max(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    double pa = i < a.size() ? std::fabs(a[i]) / sum_a : 0;
    double pb = i < b.size() ? std::fabs(b[i]) / sum_b : 0;
    carry += pa - pb;
    emd += std::fabs(carry);
  }
  return emd;
}

SeeDb::SeeDb(relational::Table data, relational::ExprPtr target_predicate)
    : data_(std::move(data)), predicate_(std::move(target_predicate)) {
  init_status_ = predicate_->Bind(data_.schema());
  if (!init_status_.ok()) return;
  in_target_.resize(data_.num_rows(), false);
  for (size_t i = 0; i < data_.num_rows(); ++i) {
    Result<Value> v = predicate_->Eval(data_.rows()[i]);
    if (!v.ok()) {
      init_status_ = v.status();
      return;
    }
    in_target_[i] =
        !v->is_null() && v->type() == DataType::kBool && v->bool_unchecked();
  }
}

std::vector<ViewSpec> SeeDb::EnumerateViews() const {
  // Attributes the target predicate conditions on are excluded: grouping
  // by a selection attribute deviates trivially and tells the analyst
  // nothing (SeeDB's view-space rule).
  std::vector<std::string> predicate_cols;
  predicate_->CollectColumnRefs(&predicate_cols);
  std::set<std::string> excluded(predicate_cols.begin(), predicate_cols.end());

  // Surrogate-key columns carry no analytic meaning as measures or
  // dimensions; skip anything named like an id.
  auto is_id_column = [](const std::string& name) {
    return name == "id" || (name.size() > 3 && name.compare(name.size() - 3, 3, "_id") == 0);
  };

  std::vector<std::string> dimensions;
  std::vector<std::string> measures;
  for (const Field& f : data_.schema().fields()) {
    if (excluded.count(f.name) > 0 || is_id_column(f.name)) continue;
    if (f.type == DataType::kString) dimensions.push_back(f.name);
    if (IsNumeric(f.type)) measures.push_back(f.name);
  }
  std::vector<ViewSpec> views;
  for (const std::string& d : dimensions) {
    views.push_back({d, "", ViewAgg::kCount});
    for (const std::string& m : measures) {
      views.push_back({d, m, ViewAgg::kAvg});
      views.push_back({d, m, ViewAgg::kSum});
    }
  }
  return views;
}

Result<ViewResult> SeeDb::EvaluateViewOnRows(
    const ViewSpec& spec, const std::vector<size_t>& row_ids) const {
  BIGDAWG_RETURN_NOT_OK(init_status_);
  BIGDAWG_ASSIGN_OR_RETURN(size_t dim_idx, data_.schema().IndexOf(spec.dimension));
  size_t measure_idx = 0;
  if (spec.agg != ViewAgg::kCount) {
    BIGDAWG_ASSIGN_OR_RETURN(measure_idx, data_.schema().IndexOf(spec.measure));
  }

  struct GroupAgg {
    double sum_target = 0, sum_ref = 0;
    int64_t count_target = 0, count_ref = 0;
  };
  std::map<std::string, GroupAgg> groups;
  for (size_t row_id : row_ids) {
    const Row& row = data_.rows()[row_id];
    const Value& dim = row[dim_idx];
    if (dim.is_null()) continue;
    GroupAgg& g = groups[dim.ToString()];
    double v = 0;
    if (spec.agg != ViewAgg::kCount) {
      const Value& mv = row[measure_idx];
      if (mv.is_null()) continue;
      v = *mv.ToNumeric();
    }
    if (in_target_[row_id]) {
      g.sum_target += v;
      ++g.count_target;
    } else {
      g.sum_ref += v;
      ++g.count_ref;
    }
  }

  ViewResult result;
  result.spec = spec;
  for (const auto& [group, g] : groups) {
    result.distribution.groups.push_back(group);
    double t = 0, r = 0;
    switch (spec.agg) {
      case ViewAgg::kCount:
        t = static_cast<double>(g.count_target);
        r = static_cast<double>(g.count_ref);
        break;
      case ViewAgg::kSum:
        t = g.sum_target;
        r = g.sum_ref;
        break;
      case ViewAgg::kAvg:
        t = g.count_target > 0 ? g.sum_target / static_cast<double>(g.count_target) : 0;
        r = g.count_ref > 0 ? g.sum_ref / static_cast<double>(g.count_ref) : 0;
        break;
    }
    result.distribution.target.push_back(t);
    result.distribution.reference.push_back(r);
  }
  result.utility =
      EarthMoversDistance(result.distribution.target, result.distribution.reference);
  return result;
}

Result<ViewResult> SeeDb::EvaluateView(const ViewSpec& spec) const {
  std::vector<size_t> all(data_.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return EvaluateViewOnRows(spec, all);
}

Result<std::vector<ViewResult>> SeeDb::RecommendFull(size_t k) const {
  BIGDAWG_RETURN_NOT_OK(init_status_);
  std::vector<ViewResult> results;
  for (const ViewSpec& spec : EnumerateViews()) {
    BIGDAWG_ASSIGN_OR_RETURN(ViewResult r, EvaluateView(spec));
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const ViewResult& a, const ViewResult& b) {
              if (a.utility != b.utility) return a.utility > b.utility;
              return a.spec.ToString() < b.spec.ToString();
            });
  if (results.size() > k) results.resize(k);
  return results;
}

Result<std::vector<ViewResult>> SeeDb::RecommendSampled(size_t k,
                                                        double sample_fraction,
                                                        uint64_t seed,
                                                        SeeDbStats* stats) const {
  BIGDAWG_RETURN_NOT_OK(init_status_);
  if (sample_fraction <= 0 || sample_fraction > 1) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  // Phase 1: utilities on a Bernoulli row sample.
  Rng rng(seed);
  std::vector<size_t> sample;
  for (size_t i = 0; i < data_.num_rows(); ++i) {
    if (rng.NextBool(sample_fraction)) sample.push_back(i);
  }
  if (sample.empty() && data_.num_rows() > 0) sample.push_back(0);

  std::vector<ViewSpec> views = EnumerateViews();
  struct Estimate {
    ViewSpec spec;
    double utility;
  };
  std::vector<Estimate> estimates;
  for (const ViewSpec& spec : views) {
    BIGDAWG_ASSIGN_OR_RETURN(ViewResult r, EvaluateViewOnRows(spec, sample));
    estimates.push_back({spec, r.utility});
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const Estimate& a, const Estimate& b) { return a.utility > b.utility; });

  // Confidence-interval pruning: estimated utilities carry an error band
  // ~ 1/sqrt(sample size); a view survives when its optimistic utility
  // (estimate + band) can still reach the current k-th best estimate.
  // EMD of normalized distributions concentrates fast; 0.5/sqrt(n) is a
  // conservative band for the sampling error of a utility estimate.
  const double band = 0.5 / std::sqrt(static_cast<double>(
                                std::max<size_t>(1, sample.size())));
  double kth = k <= estimates.size() && k > 0 ? estimates[k - 1].utility : 0.0;
  std::vector<ViewSpec> survivors;
  for (const Estimate& e : estimates) {
    if (e.utility + band >= kth) survivors.push_back(e.spec);
  }

  // Phase 2: exact evaluation of survivors.
  std::vector<ViewResult> results;
  for (const ViewSpec& spec : survivors) {
    BIGDAWG_ASSIGN_OR_RETURN(ViewResult r, EvaluateView(spec));
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const ViewResult& a, const ViewResult& b) {
              if (a.utility != b.utility) return a.utility > b.utility;
              return a.spec.ToString() < b.spec.ToString();
            });
  if (results.size() > k) results.resize(k);

  if (stats != nullptr) {
    stats->views_enumerated = views.size();
    stats->views_pruned = views.size() - survivors.size();
    stats->full_evaluations = survivors.size();
    stats->sample_rows = sample.size();
    stats->total_rows = data_.num_rows();
  }
  return results;
}

relational::Table SeeDb::ResultToTable(const ViewResult& result) {
  relational::Table out{Schema({Field("group", DataType::kString),
                                Field("target", DataType::kDouble),
                                Field("reference", DataType::kDouble)})};
  for (size_t i = 0; i < result.distribution.groups.size(); ++i) {
    out.AppendUnchecked({Value(result.distribution.groups[i]),
                         Value(result.distribution.target[i]),
                         Value(result.distribution.reference[i])});
  }
  return out;
}

}  // namespace bigdawg::seedb
