#ifndef BIGDAWG_SEEDB_SEEDB_H_
#define BIGDAWG_SEEDB_SEEDB_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/expression.h"
#include "relational/table.h"

namespace bigdawg::seedb {

/// \brief Aggregates SeeDB considers for measures.
enum class ViewAgg : int { kAvg, kSum, kCount };

const char* ViewAggToString(ViewAgg agg);

/// \brief One candidate visualization: GROUP BY `dimension`, aggregate
/// `measure` with `agg`.
struct ViewSpec {
  std::string dimension;  // categorical (string) attribute
  std::string measure;    // numeric attribute ("" for COUNT)
  ViewAgg agg = ViewAgg::kAvg;

  std::string ToString() const;
  bool operator==(const ViewSpec& other) const {
    return dimension == other.dimension && measure == other.measure &&
           agg == other.agg;
  }
};

/// \brief Per-group aggregate values for the target subpopulation vs the
/// reference population.
struct ViewDistribution {
  std::vector<std::string> groups;
  std::vector<double> target;     // aggregate per group, target population
  std::vector<double> reference;  // aggregate per group, reference population
};

/// \brief A recommended view with its deviation utility.
struct ViewResult {
  ViewSpec spec;
  double utility = 0;  // deviation between target and reference
  ViewDistribution distribution;
};

/// \brief Execution counters for the sampled/pruned path (experiment C5).
struct SeeDbStats {
  size_t views_enumerated = 0;
  size_t views_pruned = 0;       // eliminated on the sample
  size_t full_evaluations = 0;   // views computed on the full data
  size_t sample_rows = 0;
  size_t total_rows = 0;
};

/// \brief The SeeDB visualization recommender.
///
/// Enumerates all (dimension, measure, aggregate) views over a dataset,
/// computes each view on the *target* subpopulation (rows matching the
/// predicate) and on the *reference* population (all other rows), and
/// ranks views by deviation-based utility — the earth mover's distance
/// between the two normalized distributions. RecommendSampled adds the
/// paper's sampling + confidence-interval pruning phase.
class SeeDb {
 public:
  /// `data` is the attribute table; `target_predicate` selects the
  /// analyzed subpopulation (bound lazily against the table schema).
  SeeDb(relational::Table data, relational::ExprPtr target_predicate);

  /// Views over every string dimension x {numeric measure x {avg,sum},
  /// COUNT}.
  std::vector<ViewSpec> EnumerateViews() const;

  /// Exact top-k by utility (full-data evaluation of every view).
  Result<std::vector<ViewResult>> RecommendFull(size_t k) const;

  /// Phase 1: evaluate every view on a row sample of `sample_fraction`;
  /// prune views whose optimistic utility cannot reach the current top-k.
  /// Phase 2: re-evaluate survivors on the full data. `stats` optional.
  Result<std::vector<ViewResult>> RecommendSampled(size_t k, double sample_fraction,
                                                   uint64_t seed,
                                                   SeeDbStats* stats) const;

  /// Evaluates a single view on the full data.
  Result<ViewResult> EvaluateView(const ViewSpec& spec) const;

  /// Renders a view result as a two-series table (group, target, reference).
  static relational::Table ResultToTable(const ViewResult& result);

 private:
  Result<ViewResult> EvaluateViewOnRows(const ViewSpec& spec,
                                        const std::vector<size_t>& row_ids) const;

  relational::Table data_;
  relational::ExprPtr predicate_;
  std::vector<bool> in_target_;  // per row, precomputed at construction
  Status init_status_;
};

/// \brief Earth mover's distance between two discrete distributions over
/// the same ordered support (inputs normalized to sum 1 internally; zero
/// vectors yield 0 against zero, 1 against non-zero).
double EarthMoversDistance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace bigdawg::seedb

#endif  // BIGDAWG_SEEDB_SEEDB_H_
