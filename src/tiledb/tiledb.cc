#include "tiledb/tiledb.h"

#include <algorithm>
#include <mutex>

#include "common/macros.h"

namespace bigdawg::tiledb {

Result<TileDbArray> TileDbArray::Create(TileSchema schema) {
  if (schema.rows <= 0 || schema.cols <= 0) {
    return Status::InvalidArgument("array domain must be positive");
  }
  if (schema.tile_rows <= 0 || schema.tile_cols <= 0) {
    return Status::InvalidArgument("tile extents must be positive");
  }
  TileDbArray a;
  a.schema_ = schema;
  return a;
}

int64_t TileDbArray::TileIndex(int64_t row, int64_t col) const {
  int64_t tile_r = row / schema_.tile_rows;
  int64_t tile_c = col / schema_.tile_cols;
  return tile_r * schema_.TilesPerRow() + tile_c;
}

Status TileDbArray::Write(int64_t row, int64_t col, double value) {
  if (row < 0 || row >= schema_.rows || col < 0 || col >= schema_.cols) {
    return Status::OutOfRange("cell (" + std::to_string(row) + "," +
                              std::to_string(col) + ") outside domain");
  }
  fragment_.push_back({row, col, value});
  return Status::OK();
}

Status TileDbArray::WriteBatch(const std::vector<CellEntry>& cells) {
  for (const CellEntry& c : cells) {
    BIGDAWG_RETURN_NOT_OK(Write(c.row, c.col, c.value));
  }
  return Status::OK();
}

void TileDbArray::MergeCellIntoTile(Tile* tile, int64_t local_row,
                                    int64_t local_col, double value) {
  if (auto* dense = std::get_if<DenseTile>(tile)) {
    dense->values[static_cast<size_t>(local_row * schema_.tile_cols + local_col)] =
        value;
    return;
  }
  auto& cells = std::get<SparseTile>(*tile).cells;
  CellEntry entry{local_row, local_col, value};
  auto it = std::lower_bound(cells.begin(), cells.end(), entry,
                             [](const CellEntry& a, const CellEntry& b) {
                               if (a.row != b.row) return a.row < b.row;
                               return a.col < b.col;
                             });
  if (it != cells.end() && it->row == local_row && it->col == local_col) {
    it->value = value;
  } else {
    cells.insert(it, entry);
  }
}

void TileDbArray::MaybeDensify(Tile* tile) {
  auto* sparse = std::get_if<SparseTile>(tile);
  if (sparse == nullptr) return;
  const double capacity =
      static_cast<double>(schema_.tile_rows * schema_.tile_cols);
  if (static_cast<double>(sparse->cells.size()) / capacity < kDenseThreshold) {
    return;
  }
  DenseTile dense;
  dense.values.assign(static_cast<size_t>(schema_.tile_rows * schema_.tile_cols),
                      0.0);
  for (const CellEntry& c : sparse->cells) {
    dense.values[static_cast<size_t>(c.row * schema_.tile_cols + c.col)] = c.value;
  }
  *tile = std::move(dense);
}

Status TileDbArray::Consolidate() {
  for (const CellEntry& c : fragment_) {
    int64_t idx = TileIndex(c.row, c.col);
    auto it = tiles_.find(idx);
    if (it == tiles_.end()) {
      it = tiles_.emplace(idx, SparseTile{}).first;
    }
    int64_t local_row = c.row % schema_.tile_rows;
    int64_t local_col = c.col % schema_.tile_cols;
    MergeCellIntoTile(&it->second, local_row, local_col, c.value);
  }
  fragment_.clear();
  for (auto& [idx, tile] : tiles_) MaybeDensify(&tile);
  return Status::OK();
}

Result<double> TileDbArray::Read(int64_t row, int64_t col) const {
  if (row < 0 || row >= schema_.rows || col < 0 || col >= schema_.cols) {
    return Status::OutOfRange("cell outside domain");
  }
  // Latest fragment write wins.
  for (auto it = fragment_.rbegin(); it != fragment_.rend(); ++it) {
    if (it->row == row && it->col == col) return it->value;
  }
  auto tile_it = tiles_.find(TileIndex(row, col));
  if (tile_it == tiles_.end()) return 0.0;
  int64_t local_row = row % schema_.tile_rows;
  int64_t local_col = col % schema_.tile_cols;
  if (const auto* dense = std::get_if<DenseTile>(&tile_it->second)) {
    return dense->values[static_cast<size_t>(local_row * schema_.tile_cols +
                                             local_col)];
  }
  const auto& cells = std::get<SparseTile>(tile_it->second).cells;
  for (const CellEntry& c : cells) {
    if (c.row == local_row && c.col == local_col) return c.value;
  }
  return 0.0;
}

Result<std::vector<CellEntry>> TileDbArray::ReadSubarray(int64_t row_lo,
                                                         int64_t row_hi,
                                                         int64_t col_lo,
                                                         int64_t col_hi) const {
  if (row_lo > row_hi || col_lo > col_hi) {
    return Status::InvalidArgument("empty subarray");
  }
  std::map<std::pair<int64_t, int64_t>, double> merged;
  ForEachNonZero([&](int64_t r, int64_t c, double v) {
    if (r >= row_lo && r <= row_hi && c >= col_lo && c <= col_hi) {
      merged[{r, c}] = v;
    }
  });
  for (const CellEntry& c : fragment_) {
    if (c.row >= row_lo && c.row <= row_hi && c.col >= col_lo && c.col <= col_hi) {
      merged[{c.row, c.col}] = c.value;
    }
  }
  std::vector<CellEntry> out;
  out.reserve(merged.size());
  for (const auto& [coords, v] : merged) {
    out.push_back({coords.first, coords.second, v});
  }
  return out;
}

void TileDbArray::ForEachNonZero(
    const std::function<void(int64_t, int64_t, double)>& fn) const {
  const int64_t tiles_per_row = schema_.TilesPerRow();
  for (const auto& [idx, tile] : tiles_) {
    const int64_t base_row = (idx / tiles_per_row) * schema_.tile_rows;
    const int64_t base_col = (idx % tiles_per_row) * schema_.tile_cols;
    if (const auto* dense = std::get_if<DenseTile>(&tile)) {
      for (int64_t lr = 0; lr < schema_.tile_rows; ++lr) {
        for (int64_t lc = 0; lc < schema_.tile_cols; ++lc) {
          double v = dense->values[static_cast<size_t>(lr * schema_.tile_cols + lc)];
          if (v != 0.0) fn(base_row + lr, base_col + lc, v);
        }
      }
    } else {
      for (const CellEntry& c : std::get<SparseTile>(tile).cells) {
        if (c.value != 0.0) fn(base_row + c.row, base_col + c.col, c.value);
      }
    }
  }
}

Result<std::vector<double>> TileDbArray::SpMV(const std::vector<double>& x) const {
  if (static_cast<int64_t>(x.size()) != schema_.cols) {
    return Status::InvalidArgument("vector length " + std::to_string(x.size()) +
                                   " != cols " + std::to_string(schema_.cols));
  }
  std::vector<double> y(static_cast<size_t>(schema_.rows), 0.0);
  ForEachNonZero([&](int64_t r, int64_t c, double v) {
    y[static_cast<size_t>(r)] += v * x[static_cast<size_t>(c)];
  });
  return y;
}

int64_t TileDbArray::NonZeroCount() const {
  int64_t count = 0;
  ForEachNonZero([&count](int64_t, int64_t, double) { ++count; });
  return count;
}

int64_t TileDbArray::DenseTileCount() const {
  int64_t count = 0;
  for (const auto& [idx, tile] : tiles_) {
    if (std::holds_alternative<DenseTile>(tile)) ++count;
  }
  return count;
}

Status TileDbEngine::CreateArray(const std::string& name, TileSchema schema) {
  BIGDAWG_ASSIGN_OR_RETURN(TileDbArray a, TileDbArray::Create(schema));
  std::unique_lock lock(mu_);
  if (arrays_.count(name) > 0) {
    return Status::AlreadyExists("array already exists: " + name);
  }
  arrays_.emplace(name, std::move(a));
  return Status::OK();
}

Status TileDbEngine::PutArray(const std::string& name, TileDbArray array) {
  std::unique_lock lock(mu_);
  arrays_.insert_or_assign(name, std::move(array));
  return Status::OK();
}

Result<TileDbArray> TileDbEngine::GetArray(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("no array named " + name);
  return it->second;
}

Status TileDbEngine::WithArray(const std::string& name,
                               const std::function<Status(TileDbArray*)>& fn) {
  std::unique_lock lock(mu_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("no array named " + name);
  return fn(&it->second);
}

bool TileDbEngine::HasArray(const std::string& name) const {
  std::shared_lock lock(mu_);
  return arrays_.count(name) > 0;
}

std::vector<std::string> TileDbEngine::ListArrays() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(arrays_.size());
  for (const auto& [name, array] : arrays_) out.push_back(name);
  return out;
}

Status TileDbEngine::RemoveArray(const std::string& name) {
  std::unique_lock lock(mu_);
  if (arrays_.erase(name) == 0) return Status::NotFound("no array named " + name);
  return Status::OK();
}

}  // namespace bigdawg::tiledb
