#ifndef BIGDAWG_TILEDB_TILEDB_H_
#define BIGDAWG_TILEDB_TILEDB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace bigdawg::tiledb {

/// \brief Layout of a 2-D tiled array: a rows x cols domain split into
/// tile_rows x tile_cols tiles.
struct TileSchema {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t tile_rows = 0;
  int64_t tile_cols = 0;

  int64_t TilesPerRow() const { return (cols + tile_cols - 1) / tile_cols; }
  int64_t TilesPerCol() const { return (rows + tile_rows - 1) / tile_rows; }
};

/// \brief A (row, col, value) cell, the unit of sparse reads/writes.
struct CellEntry {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0;
};

/// \brief The TileDB stand-in: a 2-D array store whose fundamental unit of
/// storage and computation is the *tile*.
///
/// Each tile independently chooses a dense (flat buffer) or sparse (COO)
/// representation based on its fill fraction, mirroring TileDB's
/// "irregular subarrays optimized for dense or sparse objects". Writes
/// accumulate in an in-memory *fragment*; Consolidate() merges fragments
/// into the tile set (TileDB's fragment/consolidation model). Reads see
/// consolidated tiles plus any open fragment.
class TileDbArray {
 public:
  /// Fill fraction above which a tile switches to the dense layout.
  static constexpr double kDenseThreshold = 0.25;

  static Result<TileDbArray> Create(TileSchema schema);

  const TileSchema& schema() const { return schema_; }

  /// Buffers a cell write in the open fragment.
  Status Write(int64_t row, int64_t col, double value);
  /// Buffers many writes.
  Status WriteBatch(const std::vector<CellEntry>& cells);

  /// Merges the open fragment into the tile set and clears it; tiles
  /// re-evaluate their dense/sparse layout afterwards.
  Status Consolidate();

  /// Reads a cell (0.0 for never-written cells). Sees the open fragment.
  Result<double> Read(int64_t row, int64_t col) const;

  /// All written cells intersecting the inclusive box, in (row, col) order.
  Result<std::vector<CellEntry>> ReadSubarray(int64_t row_lo, int64_t row_hi,
                                              int64_t col_lo, int64_t col_hi) const;

  /// Visits every consolidated non-zero cell, tile by tile. The sparse
  /// linear-algebra kernels iterate through this hook so computation is
  /// tile-local (the paper's tight coupling of §2.4).
  void ForEachNonZero(
      const std::function<void(int64_t, int64_t, double)>& fn) const;

  /// y = A * x over consolidated tiles (x sized cols, result sized rows).
  Result<std::vector<double>> SpMV(const std::vector<double>& x) const;

  /// Count of non-zero cells in consolidated tiles.
  int64_t NonZeroCount() const;
  /// Number of tiles currently using the dense layout.
  int64_t DenseTileCount() const;
  /// Number of materialized tiles.
  int64_t MaterializedTileCount() const { return static_cast<int64_t>(tiles_.size()); }
  /// Cells buffered in the open fragment.
  size_t OpenFragmentSize() const { return fragment_.size(); }

 private:
  struct DenseTile {
    std::vector<double> values;  // tile_rows * tile_cols, row-major
  };
  struct SparseTile {
    std::vector<CellEntry> cells;  // tile-local coords, sorted (row, col)
  };
  using Tile = std::variant<SparseTile, DenseTile>;

  TileDbArray() = default;

  int64_t TileIndex(int64_t row, int64_t col) const;
  void MergeCellIntoTile(Tile* tile, int64_t local_row, int64_t local_col,
                         double value);
  void MaybeDensify(Tile* tile);

  TileSchema schema_;
  std::map<int64_t, Tile> tiles_;        // tile index -> tile
  std::vector<CellEntry> fragment_;      // open (unconsolidated) writes
};

/// \brief Catalog of named TileDB arrays.
class TileDbEngine {
 public:
  TileDbEngine() = default;

  TileDbEngine(const TileDbEngine&) = delete;
  TileDbEngine& operator=(const TileDbEngine&) = delete;

  Status CreateArray(const std::string& name, TileSchema schema);
  Status PutArray(const std::string& name, TileDbArray array);
  Result<TileDbArray> GetArray(const std::string& name) const;
  /// Mutating access under the catalog lock.
  Status WithArray(const std::string& name,
                   const std::function<Status(TileDbArray*)>& fn);
  bool HasArray(const std::string& name) const;
  std::vector<std::string> ListArrays() const;
  Status RemoveArray(const std::string& name);

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, TileDbArray> arrays_;
};

}  // namespace bigdawg::tiledb

#endif  // BIGDAWG_TILEDB_TILEDB_H_
