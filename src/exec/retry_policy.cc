#include "exec/retry_policy.h"

#include <algorithm>
#include <thread>

namespace bigdawg::exec {

namespace {
using Clock = std::chrono::steady_clock;

Clock::duration MillisToDuration(double ms) {
  return std::chrono::microseconds(static_cast<int64_t>(ms * 1000));
}
}  // namespace

BackoffState::BackoffState(const RetryPolicy& policy, uint64_t salt)
    : policy_(policy),
      rng_(policy.jitter_seed ^ (salt * 0x9e3779b97f4a7c15ULL)),
      prev_ms_(policy.base_backoff_ms) {}

double BackoffState::NextDelayMs() {
  // Decorrelated jitter: uniform in [base, prev * 3], capped.
  double hi = std::max(policy_.base_backoff_ms, prev_ms_ * 3);
  double delay = rng_.NextDouble(policy_.base_backoff_ms, hi);
  delay = std::min(delay, policy_.max_backoff_ms);
  prev_ms_ = delay;
  return delay;
}

Status InterruptibleBackoff(double delay_ms, const std::atomic<bool>* cancelled,
                            bool has_deadline, Clock::time_point deadline) {
  Clock::time_point now = Clock::now();
  Clock::time_point wake = now + MillisToDuration(delay_ms);
  if (has_deadline && wake > deadline) {
    return Status::DeadlineExceeded("retry backoff would outlive the deadline");
  }
  // Poll in ~1 ms slices so Cancel() aborts the sleep promptly.
  constexpr auto kSlice = std::chrono::milliseconds(1);
  while (now < wake) {
    if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled during retry backoff");
    }
    if (has_deadline && now > deadline) {
      return Status::DeadlineExceeded("query deadline passed during retry backoff");
    }
    std::this_thread::sleep_for(std::min<Clock::duration>(kSlice, wake - now));
    now = Clock::now();
  }
  return Status::OK();
}

CircuitBreaker::CircuitBreaker(CircuitBreakerPolicy policy) : policy_(policy) {}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() < open_until_) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: back to a full open window.
    state_ = State::kOpen;
    open_until_ = Clock::now() + MillisToDuration(policy_.open_ms);
    probe_in_flight_ = false;
    ++trips_;
    return true;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = Clock::now() + MillisToDuration(policy_.open_ms);
    consecutive_failures_ = 0;
    ++trips_;
    return true;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard lock(mu_);
  return trips_;
}

}  // namespace bigdawg::exec
