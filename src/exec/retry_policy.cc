#include "exec/retry_policy.h"

#include <algorithm>

namespace bigdawg::exec {

BackoffState::BackoffState(const RetryPolicy& policy, uint64_t salt)
    : policy_(policy),
      rng_(policy.jitter_seed ^ (salt * 0x9e3779b97f4a7c15ULL)),
      prev_ms_(policy.base_backoff_ms) {}

double BackoffState::NextDelayMs() {
  // Decorrelated jitter: uniform in [base, prev * 3], capped.
  double hi = std::max(policy_.base_backoff_ms, prev_ms_ * 3);
  double delay = rng_.NextDouble(policy_.base_backoff_ms, hi);
  delay = std::min(delay, policy_.max_backoff_ms);
  prev_ms_ = delay;
  return delay;
}

Status InterruptibleBackoff(const obs::Clock* clock, double delay_ms,
                            const std::atomic<bool>* cancelled,
                            bool has_deadline, obs::Clock::TimePoint deadline) {
  if (clock == nullptr) clock = obs::Clock::System();
  obs::Clock::TimePoint now = clock->Now();
  const obs::Clock::TimePoint wake = now + obs::Clock::FromMillis(delay_ms);
  if (has_deadline && wake > deadline) {
    return Status::DeadlineExceeded("retry backoff would outlive the deadline");
  }
  // Sleep in ~1 ms slices so Cancel() aborts the sleep promptly; a
  // FakeClock's SleepFor may also return early or advance time itself.
  constexpr auto kSlice = std::chrono::milliseconds(1);
  while (now < wake) {
    if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled during retry backoff");
    }
    if (has_deadline && now > deadline) {
      return Status::DeadlineExceeded("query deadline passed during retry backoff");
    }
    clock->SleepFor(std::min<obs::Clock::Duration>(kSlice, wake - now));
    now = clock->Now();
  }
  return Status::OK();
}

CircuitBreaker::CircuitBreaker(CircuitBreakerPolicy policy,
                               const obs::Clock* clock)
    : policy_(policy),
      clock_(clock != nullptr ? clock : obs::Clock::System()) {}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_->Now() < open_until_) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: back to a full open window.
    state_ = State::kOpen;
    open_until_ = clock_->Now() + obs::Clock::FromMillis(policy_.open_ms);
    probe_in_flight_ = false;
    ++trips_;
    return true;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = clock_->Now() + obs::Clock::FromMillis(policy_.open_ms);
    consecutive_failures_ = 0;
    ++trips_;
    return true;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard lock(mu_);
  return trips_;
}

}  // namespace bigdawg::exec
