#include "exec/adaptive_placement.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/lexer.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/catalog.h"
#include "core/monitor.h"
#include "exec/query_service.h"
#include "obs/trace.h"

namespace bigdawg::exec {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

/// True for engines CopyObjectTo can materialize a relation on — the
/// candidate pool for shadow copies.
bool EngineSupportsShadowCopy(const std::string& engine) {
  return engine == core::kEnginePostgres || engine == core::kEngineSciDb ||
         engine == core::kEngineTileDb || engine == core::kEngineD4m;
}

/// Replaces every identifier token spelled `from` with `to`, preserving
/// all other bytes. Identifier tokens only — string literals and symbols
/// are never touched.
std::string ReplaceIdentifier(const std::string& query, const std::string& from,
                              const std::string& to) {
  Result<std::vector<Token>> tokens = Tokenize(query);
  if (!tokens.ok()) return query;
  std::string out;
  size_t copied = 0;
  for (const Token& tok : *tokens) {
    if (tok.type != TokenType::kIdentifier || tok.text != from) continue;
    out.append(query, copied, tok.offset - copied);
    out += to;
    copied = tok.offset + from.size();
  }
  out.append(query, copied, std::string::npos);
  return out;
}

}  // namespace

AdaptivePlacement::AdaptivePlacement(core::BigDawg* dawg, QueryService* service,
                                     AdaptiveConfig config,
                                     const obs::Clock* clock, ThreadPool* pool,
                                     obs::MetricsRegistry* metrics)
    : dawg_(dawg),
      service_(service),
      config_(config),
      clock_(clock != nullptr ? clock : obs::Clock::System()),
      pool_(pool),
      controller_(config.policy, clock_),
      rng_(config.seed),
      tokens_ms_(config.budget_ms),
      last_refill_(clock_->Now()) {
  auto counter = [metrics](const char* outcome) {
    return metrics->GetCounter(obs::SeriesName(
        "bigdawg_placement_shadow_total", {{"outcome", outcome}}));
  };
  c_sampled_ = counter("sampled");
  c_ok_ = counter("ok");
  c_error_ = counter("error");
  c_deadline_ = counter("deadline");
  c_cancelled_ = counter("cancelled");
  c_budget_rejected_ = counter("budget_rejected");
  c_load_skipped_ = counter("load_skipped");
  c_breaker_skipped_ = counter("breaker_skipped");
  c_profile_skipped_ = counter("profile_skipped");
}

AdaptivePlacement::~AdaptivePlacement() {
  Stop();
  Drain();
}

bool AdaptivePlacement::EnvAllows(bool config_enabled) {
  const char* v = std::getenv("BIGDAWG_ADAPTIVE");
  if (v == nullptr || *v == '\0') return config_enabled;
  return std::string(v) != "0";
}

void AdaptivePlacement::RefillLocked() {
  const obs::Clock::TimePoint now = clock_->Now();
  const double elapsed_s =
      obs::Clock::ToMillis(now - last_refill_) / 1000.0;
  last_refill_ = now;
  if (elapsed_s <= 0) return;
  tokens_ms_ = std::min(config_.budget_ms,
                        tokens_ms_ + elapsed_s * config_.refill_ms_per_s);
}

std::optional<AdaptivePlacement::ShadowJob> AdaptivePlacement::BuildJob(
    const std::string& query, const std::string& island) const {
  Result<std::vector<Token>> tokens = Tokenize(query);
  if (!tokens.ok()) return std::nullopt;
  ShadowJob job;
  job.query = query;
  job.island = island;
  for (const Token& tok : *tokens) {
    if (tok.type != TokenType::kIdentifier) continue;
    if (StartsWith(tok.text, "__cast_")) continue;
    if (!dawg_->catalog().Contains(tok.text)) continue;
    job.object = tok.text;
    break;
  }
  if (job.object.empty()) return std::nullopt;
  Result<core::ObjectSnapshot> snap = dawg_->catalog().Snapshot(job.object);
  if (!snap.ok() || snap->placement.sharded()) return std::nullopt;
  job.home = snap->location.engine;
  job.candidate = core::Monitor::PreferredEngineForIsland(island);
  if (job.candidate.empty() || job.candidate == job.home) return std::nullopt;
  if (!EngineSupportsShadowCopy(job.candidate) ||
      !EngineSupportsShadowCopy(job.home)) {
    return std::nullopt;
  }
  return job;
}

void AdaptivePlacement::ScheduleTracked(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    ++outstanding_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    std::lock_guard lock(mu_);
    if (--outstanding_ == 0) idle_cv_.notify_all();
  });
}

void AdaptivePlacement::OnQueryCompleted(const std::string& query,
                                         const std::string& island,
                                         bool is_write, const Status& status,
                                         double latency_ms) {
  if (stop_.load(std::memory_order_relaxed)) return;
  std::optional<ShadowJob> job = BuildJob(query, island);
  std::string object = job.has_value() ? job->object : std::string();
  bool sharded = false;
  if (object.empty()) {
    // No shadow-eligible candidate, but the query may still score its
    // object's current home (e.g. a sharded object, or one already on
    // the island's preferred engine).
    Result<std::vector<Token>> tokens = Tokenize(query);
    if (!tokens.ok()) return;
    for (const Token& tok : *tokens) {
      if (tok.type != TokenType::kIdentifier) continue;
      if (StartsWith(tok.text, "__cast_")) continue;
      if (!dawg_->catalog().Contains(tok.text)) continue;
      object = tok.text;
      break;
    }
    if (object.empty()) return;
    Result<core::ObjectSnapshot> snap = dawg_->catalog().Snapshot(object);
    if (!snap.ok()) return;
    sharded = snap->placement.sharded();
    if (status.ok()) {
      controller_.RecordClient(object, snap->location.engine, latency_ms);
    }
  } else if (status.ok()) {
    controller_.RecordClient(object, job->home, latency_ms);
  }

  if (status.ok() && !is_write && job.has_value()) {
    bool take;
    {
      std::lock_guard lock(mu_);
      take = rng_.NextBool(config_.sample_rate);
    }
    if (take) {
      c_sampled_->Increment();
      ShadowJob j = *job;
      ScheduleTracked([this, j = std::move(j)] {
        (void)RunShadow(j);
        // Fresh shadow evidence may complete a comparison: decide now,
        // inline — we are already off the client path.
        DriveDecisions(j.object, /*sharded=*/false, /*inline_exec=*/true);
      });
      return;  // decisions ride on the shadow task's tail
    }
  }
  DriveDecisions(object, sharded, /*inline_exec=*/false);
}

void AdaptivePlacement::DriveDecisions(const std::string& object, bool sharded,
                                       bool inline_exec) {
  if (object.empty()) return;
  std::optional<core::PlacementDecision> decision =
      controller_.MaybeRevert(object);
  if (!decision.has_value()) decision = controller_.Evaluate(object, sharded);
  if (!decision.has_value()) return;
  if (inline_exec) {
    ExecuteDecision(*decision);
  } else {
    // Client path: never make a real query's completion wait on a
    // migration — execute it as its own tracked pool task.
    core::PlacementDecision d = *decision;
    ScheduleTracked([this, d = std::move(d)] { ExecuteDecision(d); });
  }
}

void AdaptivePlacement::ExecuteDecision(const core::PlacementDecision& decision) {
  if (config_.policy.dry_run) {
    controller_.OnActionResult(decision, /*applied=*/false, Status::OK());
    BIGDAWG_CLOG(Info, "place")
        << "dry-run " << core::PlacementActionName(decision.action) << " "
        << decision.object << " " << decision.from_engine << "->"
        << decision.to_engine << " (" << decision.reason << ")";
    return;
  }
  Status status;
  switch (decision.action) {
    case core::PlacementAction::kMigrate:
    case core::PlacementAction::kRevert:
      status = service_->Migrate(decision.object, decision.to_engine);
      break;
    case core::PlacementAction::kShard:
      status = dawg_->ShardObject(decision.object, config_.policy.shard_count);
      break;
  }
  controller_.OnActionResult(decision, /*applied=*/true, status);
  if (dawg_->tracer().enabled()) {
    obs::Trace trace(clock_, "placement");
    {
      obs::SpanGuard span(&trace, core::PlacementActionName(decision.action));
      span.Tag("object", decision.object);
      span.Tag("from", decision.from_engine);
      span.Tag("to", decision.to_engine);
      span.Tag("reason", decision.reason);
      span.Tag("status", StatusCodeToString(status.code()));
    }
    dawg_->tracer().Record(std::move(trace).Finish());
  }
  BIGDAWG_CLOG(Info, "place")
      << core::PlacementActionName(decision.action) << " " << decision.object
      << " " << decision.from_engine << "->" << decision.to_engine << " "
      << (status.ok() ? "ok" : status.ToString()) << " (" << decision.reason
      << ")";
}

Result<double> AdaptivePlacement::TimedRun(const std::string& query) {
  core::ExecContext ctx;
  ctx.temp_prefix =
      "__cast_shdw" +
      std::to_string(shadow_seq_.fetch_add(1, std::memory_order_relaxed)) + "_";
  ctx.shadow = true;
  ctx.clock = clock_;
  ctx.cancelled = &stop_;
  if (config_.shadow_deadline_ms > 0) {
    ctx.has_deadline = true;
    ctx.deadline = clock_->Now() + obs::Clock::FromMillis(config_.shadow_deadline_ms);
  }
  const obs::Clock::TimePoint start = clock_->Now();
  Result<relational::Table> result = dawg_->Execute(query, &ctx);
  if (!result.ok()) return result.status();
  // Deadline/cancellation may have fired mid-execution, after the last
  // in-query check (implicit fetches resolve inside island exec): a
  // shadow that blew its budget is discarded, not recorded as evidence.
  BIGDAWG_RETURN_NOT_OK(ctx.Check());
  return obs::Clock::ToMillis(clock_->Now() - start);
}

Status AdaptivePlacement::RunShadow(const ShadowJob& job) {
  if (stop_.load(std::memory_order_relaxed)) {
    c_cancelled_->Increment();
    return Status::Cancelled("adaptive placement stopping");
  }
  // Breaker consult: an ailing engine gets no extra traffic, and a
  // measurement against it would be garbage anyway. Shadow outcomes are
  // never fed back into the client-facing breakers.
  for (const std::string& engine : {job.home, job.candidate}) {
    if (service_->BreakerState(engine) == CircuitBreaker::State::kOpen ||
        dawg_->monitor().EngineAdvisoryDown(engine)) {
      c_breaker_skipped_->Increment();
      return Status::Unavailable("shadow skipped: engine " + engine +
                                 " breaker-open or advisory-down");
    }
  }
  // Profile consult: a class whose latency the profiler attributes to
  // locks/backoff/breaker waits would give shadows a contention
  // measurement, not an engine comparison — placement evidence from such
  // runs is noise.
  if (config_.max_coordination_share < 1.0) {
    obs::Profiler* profiler = service_->profiler();
    if (profiler != nullptr &&
        profiler->CoordinationShare(job.island) >=
            config_.max_coordination_share) {
      c_profile_skipped_->Increment();
      return Status::Unavailable("shadow skipped: class " + job.island +
                                 " latency is coordination-dominated");
    }
  }
  // Load consult: admission headroom belongs to clients.
  const size_t max_in_flight = service_->config().max_in_flight;
  if (config_.max_load_fraction > 0 && max_in_flight > 0 &&
      static_cast<double>(service_->InFlight()) >=
          config_.max_load_fraction * static_cast<double>(max_in_flight)) {
    c_load_skipped_->Increment();
    return Status::Unavailable("shadow skipped: service near admission limit");
  }
  {
    std::lock_guard lock(mu_);
    RefillLocked();
    if (tokens_ms_ <= 0) {
      c_budget_rejected_->Increment();
      return Status::ResourceExhausted(
          "shadow budget exhausted (" + FormatMs(config_.budget_ms) +
          "ms cap, refills " + FormatMs(config_.refill_ms_per_s) + "ms/s)");
    }
  }

  const obs::Clock::TimePoint start = clock_->Now();
  // Baseline: the query exactly as the client ran it, timed without the
  // client's queue wait. Runs before the copy so materialization cost
  // never pollutes either timing.
  Result<double> baseline = TimedRun(job.query);
  Result<double> candidate = Status::Internal("candidate not attempted");
  if (baseline.ok()) {
    const std::string copy_name =
        "__cast_shadow" +
        std::to_string(shadow_seq_.fetch_add(1, std::memory_order_relaxed)) +
        "_" + job.object;
    Status copied = dawg_->CopyObjectTo(job.object, job.candidate, copy_name);
    if (copied.ok()) {
      candidate = TimedRun(ReplaceIdentifier(job.query, job.object, copy_name));
      (void)dawg_->DropObject(copy_name);
    } else {
      candidate = copied;
    }
  }
  {
    // Charge the bucket for everything the shadow actually spent,
    // success or not (may go negative; the refill recovers it).
    std::lock_guard lock(mu_);
    tokens_ms_ -= obs::Clock::ToMillis(clock_->Now() - start);
  }

  const Status failed = !baseline.ok() ? baseline.status()
                        : !candidate.ok() ? candidate.status()
                                          : Status::OK();
  if (!failed.ok()) {
    if (failed.IsDeadlineExceeded()) {
      c_deadline_->Increment();
    } else if (failed.IsCancelled()) {
      c_cancelled_->Increment();
    } else {
      c_error_->Increment();
    }
    return failed;
  }
  controller_.RecordShadow(job.object, job.home, *baseline);
  controller_.RecordShadow(job.object, job.candidate, *candidate);
  c_ok_->Increment();
  return Status::OK();
}

Status AdaptivePlacement::RunShadowSync(const std::string& query,
                                        const std::string& island) {
  std::optional<ShadowJob> job = BuildJob(query, island);
  if (!job.has_value()) {
    return Status::FailedPrecondition(
        "query has no shadow-eligible object/candidate pair");
  }
  c_sampled_->Increment();
  Status status = RunShadow(*job);
  DriveDecisions(job->object, /*sharded=*/false, /*inline_exec=*/true);
  return status;
}

void AdaptivePlacement::Drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void AdaptivePlacement::Stop() { stop_.store(true, std::memory_order_relaxed); }

ShadowStats AdaptivePlacement::shadow_stats() const {
  ShadowStats s;
  s.sampled = c_sampled_->Value();
  s.ok = c_ok_->Value();
  s.errors = c_error_->Value();
  s.deadline = c_deadline_->Value();
  s.cancelled = c_cancelled_->Value();
  s.budget_rejected = c_budget_rejected_->Value();
  s.load_skipped = c_load_skipped_->Value();
  s.breaker_skipped = c_breaker_skipped_->Value();
  s.profile_skipped = c_profile_skipped_->Value();
  return s;
}

double AdaptivePlacement::budget_remaining_ms() const {
  std::lock_guard lock(mu_);
  const_cast<AdaptivePlacement*>(this)->RefillLocked();
  return tokens_ms_ > 0 ? tokens_ms_ : 0;
}

void AdaptivePlacement::ExportMetrics(obs::MetricsRegistry* registry) const {
  registry->GetGauge("bigdawg_placement_enabled")->Set(1);
  registry->GetGauge("bigdawg_placement_shadow_budget_ms")
      ->Set(budget_remaining_ms());
  controller_.ExportMetrics(registry);
}

std::string AdaptivePlacement::Render() const {
  const core::PlacementPolicy& p = config_.policy;
  const ShadowStats s = shadow_stats();
  std::string body = "adaptive placement: enabled dry_run=";
  body += p.dry_run ? "1" : "0";
  body += " sample_rate=" + FormatMs(config_.sample_rate) + "\n";
  body += "budget: remaining_ms=" + FormatMs(budget_remaining_ms()) +
          " cap_ms=" + FormatMs(config_.budget_ms) +
          " refill_ms_per_s=" + FormatMs(config_.refill_ms_per_s) +
          " shadow_deadline_ms=" + FormatMs(config_.shadow_deadline_ms) + "\n";
  body += "shadow: sampled=" + std::to_string(s.sampled) +
          " ok=" + std::to_string(s.ok) +
          " error=" + std::to_string(s.errors) +
          " deadline=" + std::to_string(s.deadline) +
          " cancelled=" + std::to_string(s.cancelled) +
          " budget_rejected=" + std::to_string(s.budget_rejected) +
          " load_skipped=" + std::to_string(s.load_skipped) +
          " breaker_skipped=" + std::to_string(s.breaker_skipped) +
          " profile_skipped=" + std::to_string(s.profile_skipped) + "\n";
  body += "policy: min_samples=" + std::to_string(p.min_samples) +
          " gap_ratio=" + FormatMs(p.gap_ratio) +
          " cooldown_ms=" + FormatMs(p.cooldown_ms) +
          " revert_window_ms=" + FormatMs(p.revert_window_ms) +
          " revert_ratio=" + FormatMs(p.revert_ratio) +
          " blacklist_ms=" + FormatMs(p.blacklist_ms) + "\n";
  for (const core::PlacementScore& row : controller_.Scoreboard()) {
    body += "score " + row.object + "@" + row.engine +
            (row.is_home ? "*" : "") + ": samples=" +
            std::to_string(row.samples) + " p95=" + FormatMs(row.p95_ms) +
            "ms mean=" + FormatMs(row.mean_ms) + "ms\n";
  }
  for (const core::PlacementDecision& d : controller_.History()) {
    body += "decision " + std::to_string(d.seq) + " " +
            core::PlacementActionName(d.action) + " " + d.object + " " +
            d.from_engine + "->" + d.to_engine + " status=" + d.status +
            " p95=" + FormatMs(d.current_p95_ms) + "ms vs " +
            FormatMs(d.candidate_p95_ms) + "ms at t+" +
            FormatMs(d.decided_at_ms) + "ms: " + d.reason + "\n";
  }
  return body;
}

}  // namespace bigdawg::exec
