#ifndef BIGDAWG_EXEC_ENGINE_LOCKS_H_
#define BIGDAWG_EXEC_ENGINE_LOCKS_H_

#include <array>
#include <cstdint>
#include <shared_mutex>
#include <string>

namespace bigdawg::exec {

/// Bitmask identifying federation engines for lock-set computation.
/// The bit order is the canonical lock-acquisition order (deadlock
/// avoidance: every caller acquires in ascending bit order).
enum EngineLockBit : uint32_t {
  kLockPostgres = 1u << 0,
  kLockSciDb = 1u << 1,
  kLockAccumulo = 1u << 2,
  kLockSStore = 1u << 3,
  kLockTileDb = 1u << 4,
  kLockD4m = 1u << 5,
};
inline constexpr uint32_t kLockAllEngines = (1u << 6) - 1;
inline constexpr size_t kNumEngineLocks = 6;

/// Lock bit for a canonical engine name (core::kEngine*); 0 when unknown.
uint32_t EngineLockBitFor(const std::string& engine);

/// Human-readable lock set in canonical bit order: `{postgres,scidb}`;
/// the empty mask renders as `{}`. EXPLAIN and test assertions use this.
std::string EngineLockSetToString(uint32_t mask);

/// \brief Reader/writer locks, one per storage engine.
///
/// The engines synchronize their own containers internally, so these
/// locks are not about memory safety — they give multi-step polystore
/// operations (CAST materialization, migration, replica refresh) a
/// consistent view: readers of an engine share it, while operations that
/// move or rewrite objects on an engine exclude everything else touching
/// that engine. Read-only queries on disjoint engines proceed in
/// parallel.
class EngineLockManager {
 public:
  EngineLockManager() = default;
  EngineLockManager(const EngineLockManager&) = delete;
  EngineLockManager& operator=(const EngineLockManager&) = delete;

  /// RAII holder for an acquired lock set; releases on destruction.
  class ScopedLocks {
   public:
    ScopedLocks() = default;
    ScopedLocks(ScopedLocks&& other) noexcept
        : mgr_(other.mgr_), shared_(other.shared_), exclusive_(other.exclusive_) {
      other.mgr_ = nullptr;
    }
    ScopedLocks& operator=(ScopedLocks&& other) noexcept;
    ScopedLocks(const ScopedLocks&) = delete;
    ScopedLocks& operator=(const ScopedLocks&) = delete;
    ~ScopedLocks() { Release(); }

    void Release();

   private:
    friend class EngineLockManager;
    ScopedLocks(EngineLockManager* mgr, uint32_t shared, uint32_t exclusive)
        : mgr_(mgr), shared_(shared), exclusive_(exclusive) {}

    EngineLockManager* mgr_ = nullptr;
    uint32_t shared_ = 0;
    uint32_t exclusive_ = 0;
  };

  /// Blocks until every engine in `shared_mask` is held shared and every
  /// engine in `exclusive_mask` is held exclusive (exclusive wins when an
  /// engine appears in both). Locks are taken in canonical order, so
  /// concurrent acquirers cannot deadlock.
  ScopedLocks Acquire(uint32_t shared_mask, uint32_t exclusive_mask);

 private:
  std::array<std::shared_mutex, kNumEngineLocks> locks_;
};

}  // namespace bigdawg::exec

#endif  // BIGDAWG_EXEC_ENGINE_LOCKS_H_
