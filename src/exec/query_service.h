#ifndef BIGDAWG_EXEC_QUERY_SERVICE_H_
#define BIGDAWG_EXEC_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/bigdawg.h"
#include "exec/adaptive_placement.h"
#include "exec/engine_locks.h"
#include "exec/retry_policy.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slow_query_log.h"

namespace bigdawg::exec {

inline constexpr int64_t kNoSession = -1;

struct QueryServiceConfig {
  /// Worker threads executing admitted queries.
  size_t num_workers = 4;
  /// Admission limit on queries queued + running; submissions past it are
  /// rejected with ResourceExhausted. 0 = unbounded.
  size_t max_in_flight = 32;
  /// Deadline applied to queries that don't set their own; 0 = none.
  double default_timeout_ms = 0;
  /// Backoff/retry schedule for transient (Unavailable) engine errors.
  RetryPolicy retry;
  /// Per-engine circuit-breaker tuning.
  CircuitBreakerPolicy breaker;
  /// Time source for deadlines, backoff, breaker windows, latency
  /// measurements, and trace timestamps; null = the system clock. Tests
  /// inject an obs::FakeClock to make every timing path deterministic.
  const obs::Clock* clock = nullptr;
  /// Registry receiving the service's counters/gauges/histograms; null =
  /// a registry owned by the service (either way reachable via metrics()).
  obs::MetricsRegistry* metrics = nullptr;
  /// Slow-query threshold in ms; < 0 reads BIGDAWG_SLOW_MS from the
  /// environment (falling back to 100ms), 0 logs every query.
  double slow_query_ms = -1;
  /// Byte budget for the BigDawg's shared cast-result cache: < 0 keeps
  /// the dawg's current setting (default 64 MiB, killable at startup with
  /// BIGDAWG_CAST_CACHE=0), 0 disables the cache, > 0 sets the budget.
  /// Either way the cache's counters are bound into this service's
  /// metrics registry.
  int64_t cast_cache_bytes = -1;
  /// Bounded capacity of the slow-query ring.
  size_t slow_query_capacity = obs::SlowQueryLog::kDefaultCapacity;
  /// Adaptive placement: shadow execution + PlacementController turning
  /// sustained engine-score gaps into automatic migrations. Off by
  /// default; `adaptive.enabled = true` opts in, and the environment
  /// overrides either way (BIGDAWG_ADAPTIVE=0 kills it, =1 forces it).
  AdaptiveConfig adaptive;
  /// Always-on profiler: every sampled completion's span tree is folded
  /// into per-class critical-path profiles (see obs::Profiler, /profile,
  /// /costs). On by default; the environment overrides either way
  /// (BIGDAWG_PROFILE=0 kills it, =1 forces it). Off means no trace is
  /// ever created for profiling and the service behaves byte-identically
  /// to a build without the feature.
  bool profile = true;
  /// Ingest every Nth completion (1 = all). Raising this cuts the
  /// tracing overhead proportionally at the cost of profile freshness.
  int64_t profile_sample_every = 1;
};

struct SubmitOptions {
  /// Session the query belongs to (temp-object namespace); kNoSession
  /// for one-off queries.
  int64_t session = kNoSession;
  /// Per-query deadline in ms; < 0 uses the service default, 0 = none.
  double timeout_ms = -1;
};

/// Per-island latency digest in a stats snapshot.
struct IslandLatency {
  std::string island;
  int64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

/// \brief Counters and latency digests for everything the service has
/// processed. Latencies are end-to-end (admission to completion, queue
/// wait included), per island.
///
/// This is a point-in-time snapshot assembled from the MetricsRegistry —
/// the registry (see metrics()/DumpMetrics()) is the source of truth;
/// quantiles come from a bounded obs::SampleWindow per island, so memory
/// stays capped no matter how many queries run.
struct QueryServiceStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t timed_out = 0;
  int64_t in_flight = 0;
  int64_t sessions_open = 0;
  // ---- Resilience counters ----
  /// Attempts beyond each query's first (i.e. retries actually taken).
  int64_t retries = 0;
  /// Circuit-breaker transitions to open (closed->open and failed probes).
  int64_t breaker_trips = 0;
  /// Reads served by failing over to a replica of a down engine.
  int64_t failovers = 0;
  /// Queries that succeeded only after a retry or a failover.
  int64_t degraded = 0;
  std::vector<IslandLatency> islands;
};

/// \brief Handle to an admitted query: its id (for Cancel) and the
/// pending result. Move-only; Wait() consumes the result.
class QueryHandle {
 public:
  QueryHandle() = default;
  QueryHandle(QueryHandle&&) = default;
  QueryHandle& operator=(QueryHandle&&) = default;

  int64_t id() const { return id_; }
  bool valid() const { return future_.valid(); }

  /// Blocks until the query finishes and returns its result (or the
  /// Cancelled / DeadlineExceeded / execution-error status).
  Result<relational::Table> Wait();

 private:
  friend class QueryService;
  int64_t id_ = -1;
  std::future<Result<relational::Table>> future_;
};

/// \brief The concurrent query front-end of the polystore.
///
/// Accepts queries from many client threads and runs them safely over
/// one shared BigDawg:
///
///  * Sessions give each client a private CAST temp-object namespace, so
///    concurrent cross-model queries cannot collide.
///  * Admission control bounds queued + running work; past the limit,
///    Submit returns a typed ResourceExhausted instead of growing memory
///    without bound. Per-query deadlines and cooperative cancellation
///    ride on the same path.
///  * Per-engine reader/writer locks let read-only queries on disjoint
///    engines proceed in parallel while migrations, replica refreshes,
///    and CAST stores exclude conflicting work.
///  * Resilient execution: transient engine errors (Unavailable) are
///    retried with exponential backoff + decorrelated jitter, budgeted
///    against the query's deadline and aborted promptly by Cancel; a
///    per-engine circuit breaker fails doomed queries fast once an
///    engine keeps failing, and marks the engine advisory-down so the
///    core reroutes replicated reads to fresh replicas (failover).
///  * Observability: every counter lives in an obs::MetricsRegistry
///    (DumpMetrics() gives the Prometheus text form, Stats() a typed
///    snapshot), and when the BigDawg's tracer is enabled each query
///    records a span tree — attempts, lock waits, scope routing, casts,
///    shim calls, backoffs, breaker decisions — into
///    dawg->tracer().FinishedTraces().
class QueryService {
 public:
  explicit QueryService(core::BigDawg* dawg, QueryServiceConfig config = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- Sessions ----

  int64_t OpenSession();
  /// Closes a session; queries already admitted under it run to
  /// completion, further submissions are rejected.
  Status CloseSession(int64_t session);

  // ---- Query submission ----

  /// Admission-controlled asynchronous submit. ResourceExhausted when
  /// the service is at max_in_flight; FailedPrecondition for a closed or
  /// unknown session.
  ///
  /// A query prefixed `EXPLAIN` is dry-run: scope resolution, lock-set
  /// analysis, and the cast plan are computed and returned as a one-column
  /// "plan" table, and nothing executes (no engine locks, no engines
  /// touched). `EXPLAIN ANALYZE` executes the query normally — retries,
  /// breakers, failover and all — and on success returns a one-column
  /// "profile" table folded from the query's span tree (per-stage
  /// durations, cast rows/bytes, engines touched) instead of the result;
  /// a failed query returns its error. ANALYZE traces the query even when
  /// the process-wide tracer is disabled.
  Result<QueryHandle> Submit(const std::string& query, SubmitOptions opts = {});

  /// Submit + Wait.
  Result<relational::Table> ExecuteSync(const std::string& query,
                                        SubmitOptions opts = {});

  /// Admission-controlled submit of an arbitrary unit of work (runs on
  /// the worker pool, engine locking is the task's business). Used by
  /// tests to create deterministic backpressure.
  Result<QueryHandle> SubmitTask(std::function<Result<relational::Table>()> fn,
                                 SubmitOptions opts = {});

  /// Requests cooperative cancellation of an in-flight query. NotFound
  /// once the query has already finished.
  Status Cancel(int64_t query_id);

  // ---- Admin operations (exclusive engine locks) ----

  /// MigrateObject under exclusive locks on the source and target
  /// engines; readers on other engines keep running.
  Status Migrate(const std::string& object, const std::string& target_engine);

  /// RefreshReplicas under exclusive locks on the replica engines.
  Result<int64_t> RefreshReplicas(const std::string& object);

  // ---- Introspection ----

  /// Blocks until nothing is queued or running.
  void Drain();

  QueryServiceStats Stats() const;

  /// The registry holding every service metric (plus whatever the caller
  /// shares it with).
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Prometheus text exposition of the registry, with the Monitor's
  /// engine-health and island-latency view exported into it first.
  std::string DumpMetrics() const;

  /// The bounded ring of queries that crossed the slow threshold
  /// (config.slow_query_ms / BIGDAWG_SLOW_MS). The admin endpoint and
  /// tests read or drain it.
  obs::SlowQueryLog& slow_log() { return slow_log_; }
  const obs::SlowQueryLog& slow_log() const { return slow_log_; }

  /// Current circuit-breaker state for an engine (kClosed when the engine
  /// has never failed).
  CircuitBreaker::State BreakerState(const std::string& engine) const;

  /// Queries currently queued or running (admission occupancy); the
  /// adaptive-placement load gate reads this before running a shadow.
  int64_t InFlight() const;

  /// The adaptive-placement loop, or null when disabled (config off, or
  /// BIGDAWG_ADAPTIVE=0). Null means the service behaves byte-identically
  /// to a build without the feature.
  AdaptivePlacement* adaptive() const { return adaptive_.get(); }

  /// The always-on profiler, or null when disabled (config.profile off,
  /// or BIGDAWG_PROFILE=0). The /profile and /costs admin endpoints and
  /// the adaptive-placement coordination gate read it.
  obs::Profiler* profiler() const { return profiler_.get(); }

  const QueryServiceConfig& config() const { return config_; }

 private:
  struct QueryState {
    std::atomic<bool> cancelled{false};
  };
  /// The admitted unit of work: runs on a pool worker with its assigned
  /// query id and shared cancellation state.
  using QueryRunner = std::function<Result<relational::Table>(
      int64_t id, const std::shared_ptr<QueryState>&)>;

  Result<QueryHandle> Admit(QueryRunner run, const SubmitOptions& opts);
  /// `trace_id` >= 0 stamps the island latency histogram's bucket with an
  /// exemplar linking the sample to its retained trace.
  void RecordOutcome(int64_t query_id, const std::string& island,
                     const Status& status, double latency_ms,
                     int64_t retries = 0, int64_t failovers = 0,
                     bool degraded = false, int64_t trace_id = -1);
  /// Feeds the slow-query log (and the warn log) when `latency_ms`
  /// crosses the threshold.
  void MaybeRecordSlow(int64_t query_id, int64_t session,
                       const std::string& query, const std::string& island,
                       const Status& status, double latency_ms,
                       int64_t attempts, int64_t failovers,
                       int64_t trace_id = -1);

  /// The breaker guarding `engine`, created closed on first use.
  CircuitBreaker& BreakerFor(const std::string& engine);
  /// Feeds one attempt outcome into `engine`'s breaker; a trip marks the
  /// engine advisory-down in the monitor (reads start failing over), a
  /// success closes the breaker and clears the advisory.
  void RecordEngineSuccess(const std::string& engine);
  void RecordEngineFailure(const std::string& engine);

  core::BigDawg* dawg_;
  QueryServiceConfig config_;
  const obs::Clock* clock_;
  EngineLockManager lock_mgr_;
  obs::SlowQueryLog slow_log_;

  /// Backing registry when the config didn't share one.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  // Metric slots resolved once at construction; updates are lock-free.
  obs::Counter* c_submitted_;
  obs::Counter* c_admitted_;
  obs::Counter* c_rejected_;
  obs::Counter* c_completed_;
  obs::Counter* c_failed_;
  obs::Counter* c_cancelled_;
  obs::Counter* c_timed_out_;
  obs::Counter* c_retries_;
  obs::Counter* c_breaker_trips_;
  obs::Counter* c_failovers_;
  obs::Counter* c_degraded_;
  obs::Gauge* g_in_flight_;
  obs::Gauge* g_sessions_open_;

  /// Engine name -> breaker. CircuitBreaker owns a mutex (not movable),
  /// hence the unique_ptr; breakers are created lazily and never removed.
  mutable std::mutex breaker_mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  int64_t next_query_id_ = 0;
  int64_t next_session_id_ = 0;
  int64_t in_flight_ = 0;
  int64_t sessions_open_ = 0;
  std::map<int64_t, bool> sessions_;  // id -> open
  std::map<int64_t, std::shared_ptr<QueryState>> live_;
  /// island -> bounded latency reservoir (p50/p95 memory stays capped).
  std::map<std::string, obs::SampleWindow> latencies_;

  /// Null unless profiling is enabled; internally synchronized, fed from
  /// worker threads at completion.
  std::unique_ptr<obs::Profiler> profiler_;

  /// Null unless adaptive placement is enabled. Declared before pool_ so
  /// the pool (whose tasks may reference it) is joined first.
  std::unique_ptr<AdaptivePlacement> adaptive_;

  // Last member: destroyed (joined) first, so draining tasks can still
  // touch the fields above.
  ThreadPool pool_;
};

}  // namespace bigdawg::exec

#endif  // BIGDAWG_EXEC_QUERY_SERVICE_H_
