#include "exec/query_analysis.h"

#include <cctype>

#include "common/lexer.h"
#include "common/string_util.h"
#include "exec/engine_locks.h"

namespace bigdawg::exec {

namespace {

/// The engine an island's shims read even when no catalog object is
/// referenced by name (e.g. TEXT SEARCH scans the whole corpus).
uint32_t IslandBaseEngines(const std::string& island) {
  if (island == "RELATIONAL" || island == "POSTGRES" || island == "MYRIA") {
    return kLockPostgres;
  }
  if (island == "ARRAY" || island == "SCIDB") return kLockSciDb;
  if (island == "TEXT") return kLockAccumulo;
  if (island == "STREAM") return kLockSStore;
  if (island == "D4M") return kLockD4m | kLockAccumulo;
  return kLockAllEngines;
}

/// Statements that mutate engine state through the degenerate islands.
bool IsWriteKeyword(const Token& tok) {
  return tok.IsKeyword("INSERT") || tok.IsKeyword("UPDATE") ||
         tok.IsKeyword("DELETE") || tok.IsKeyword("CREATE") ||
         tok.IsKeyword("DROP") || tok.IsKeyword("ALTER");
}

/// Splits "ISLAND( body )" the same way the SCOPE dispatcher does, but
/// only needs the island name — body extent checks are the dispatcher's
/// job.
bool SplitIslandPrefix(const std::string& query,
                       const std::vector<std::string>& islands,
                       std::string* island_name) {
  std::string trimmed = Trim(query);
  size_t open = trimmed.find('(');
  if (open == std::string::npos || trimmed.empty() || trimmed.back() != ')') {
    return false;
  }
  std::string prefix = Trim(trimmed.substr(0, open));
  for (char c : prefix) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  std::string upper = ToUpper(prefix);
  for (const std::string& island : islands) {
    if (island == upper) {
      *island_name = upper;
      return true;
    }
  }
  return false;
}

}  // namespace

QueryPlan AnalyzeQuery(core::BigDawg& dawg, const std::string& query) {
  QueryPlan plan;
  SplitIslandPrefix(query, dawg.ListIslands(), &plan.island);

  Result<std::vector<Token>> tokens = Tokenize(query);
  if (!tokens.ok()) {
    // Unlexable query: it will very likely fail anyway, but lock
    // everything so a surprising parse cannot under-lock.
    plan.exclusive_engines = kLockAllEngines;
    return plan;
  }

  uint32_t referenced = IslandBaseEngines(plan.island);
  const core::Catalog& catalog = dawg.catalog();
  for (size_t i = 0; i < tokens->size(); ++i) {
    const Token& tok = (*tokens)[i];
    if (tok.IsKeyword("CAST") && i + 1 < tokens->size() &&
        (*tokens)[i + 1].IsSymbol("(")) {
      plan.has_cast = true;
    }
    if (IsWriteKeyword(tok)) plan.is_write = true;
    if (tok.type != TokenType::kIdentifier) continue;
    Result<core::ObjectLocation> loc = catalog.Lookup(tok.text);
    if (!loc.ok()) continue;
    referenced |= EngineLockBitFor(loc->engine);
    // Model-matched fetches may be served from any replica.
    for (const core::ReplicaLocation& replica : catalog.Replicas(tok.text)) {
      referenced |= EngineLockBitFor(replica.engine);
    }
  }

  if (plan.has_cast) {
    // CAST materializes temporaries on whichever engines the target
    // models live on, and nested scoped subqueries may cast further:
    // conservative exclusive set.
    plan.exclusive_engines = kLockAllEngines;
  } else if (plan.is_write) {
    // DDL/DML goes through a degenerate island straight into its engine.
    plan.exclusive_engines = referenced;
  } else {
    plan.shared_engines = referenced;
  }
  return plan;
}

}  // namespace bigdawg::exec
