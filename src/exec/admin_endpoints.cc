#include "exec/admin_endpoints.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/monitor.h"
#include "core/stream_ageout.h"
#include "obs/trace.h"
#include "stream/stream_engine.h"

namespace bigdawg::exec {

namespace {

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "?";
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Value of `key` in a raw query string (`a=1&b=2`); "" when absent.
/// Values are used verbatim — the admin surface is trusted-operator
/// plain text, not a web app.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

/// Per-engine health + breaker view shared by /readyz; `ready` reports
/// whether every engine is currently serving.
std::string RenderReadiness(QueryService* service, core::BigDawg* dawg,
                            bool* ready) {
  *ready = true;
  std::string body;
  for (const core::EngineHealth& h : dawg->monitor().EngineHealthView()) {
    const CircuitBreaker::State breaker = service->BreakerState(h.engine);
    const bool serving =
        !h.advisory_down && breaker != CircuitBreaker::State::kOpen;
    if (!serving) *ready = false;
    body += h.engine + ": " + (serving ? "serving" : "not-serving") +
            " breaker=" + BreakerStateName(breaker) +
            " advisory_down=" + (h.advisory_down ? "1" : "0") +
            " calls=" + std::to_string(h.calls) +
            " faults=" + std::to_string(h.faults) +
            " failovers=" + std::to_string(h.failovers) + "\n";
  }
  // Streaming ingest health: a running engine whose bounded ingest ring
  // is saturated has a wedged (or hopelessly behind) worker — every new
  // tuple is being backpressured, so the instance is not ready.
  const stream::StreamEngineStats s = dawg->sstore().GetStats();
  if (s.running) {
    const bool wedged = s.queue_saturation >= 1.0;
    if (wedged) *ready = false;
    body += "stream-ingest: " + std::string(wedged ? "wedged" : "serving") +
            " queue=" + std::to_string(s.queue_depth) + "/" +
            std::to_string(s.queue_capacity) +
            " saturation=" + FormatDouble(s.queue_saturation) +
            " backpressured=" + std::to_string(s.backpressured) + "\n";
  } else {
    body += "stream-ingest: stopped\n";
  }
  return body;
}

/// Human-readable dump of the streaming island: engine counters, queue
/// health, per-stream/window state, and the age-out pipeline.
std::string RenderStreams(core::BigDawg* dawg) {
  stream::StreamEngine& engine = dawg->sstore();
  const stream::StreamEngineStats s = engine.GetStats();
  std::string body =
      "stream engine: " + std::string(s.running ? "running" : "stopped") +
      " queue=" + std::to_string(s.queue_depth) + "/" +
      std::to_string(s.queue_capacity) +
      " saturation=" + FormatDouble(s.queue_saturation) +
      "\ningested=" + std::to_string(s.ingested) +
      " backpressured=" + std::to_string(s.backpressured) +
      " rejected=" + std::to_string(s.rejected) +
      " late_dropped=" + std::to_string(s.late_dropped) +
      " out_of_order=" + std::to_string(s.out_of_order) +
      "\ncommitted=" + std::to_string(s.committed) +
      " aborted=" + std::to_string(s.aborted) +
      " alerts=" + std::to_string(s.alerts) +
      " aged_out=" + std::to_string(s.aged_out) +
      " batches=" + std::to_string(s.batches) +
      "\ningest_lag_ms p50=" + FormatDouble(s.ingest_lag_p50_ms) +
      " p95=" + FormatDouble(s.ingest_lag_p95_ms) +
      " advance_ms p50=" + FormatDouble(s.advance_p50_ms) +
      " p95=" + FormatDouble(s.advance_p95_ms) + "\n";
  for (const stream::StreamInfo& info : engine.ListStreams()) {
    body += "stream " + info.name + ": buffered=" +
            std::to_string(info.buffered) +
            "/" + std::to_string(info.retention) +
            " total_appended=" + std::to_string(info.total_appended) +
            " trigger=" + (info.trigger.empty() ? "-" : info.trigger) +
            " windows=" + std::to_string(info.windows.size()) + "\n";
  }
  for (const stream::WindowInfo& info : engine.ListWindows()) {
    body += "window " + info.name + ": over=" + info.stream +
            " size=" + std::to_string(info.size) +
            " slide=" + std::to_string(info.slide) +
            " buffered=" + std::to_string(info.buffered) +
            " slides=" + std::to_string(info.slides) +
            " trigger=" + (info.trigger.empty() ? "-" : info.trigger) + "\n";
  }
  if (core::StreamAgeOut* ageout = dawg->stream_ageout()) {
    const core::StreamAgeOutStats a = ageout->GetStats();
    body += "ageout: pending=" + std::to_string(a.pending_rows) +
            " flushed=" + std::to_string(a.flushed_rows) +
            " flushes=" + std::to_string(a.flushes) +
            " failures=" + std::to_string(a.flush_failures) + "\n";
  } else {
    body += "ageout: disabled\n";
  }
  return body;
}

}  // namespace

void RegisterAdminEndpoints(obs::AdminServer* server, QueryService* service,
                            core::BigDawg* dawg) {
  server->Route("/metrics", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = service->DumpMetrics();
    return response;
  });

  server->Route("/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = "ok\n";
    return response;
  });

  server->Route("/readyz", [service, dawg](const obs::HttpRequest&) {
    obs::HttpResponse response;
    bool ready = true;
    std::string engines = RenderReadiness(service, dawg, &ready);
    response.status = ready ? 200 : 503;
    response.body = (ready ? "ready\n" : "not ready\n") + engines;
    return response;
  });

  server->Route("/traces", [dawg](const obs::HttpRequest& request) {
    obs::HttpResponse response;
    // ?id=<trace_id> fetches one retained trace (the hop target of
    // histogram exemplars and slow-query-log trace= fields).
    const std::string id_text = QueryParam(request.query, "id");
    if (!id_text.empty()) {
      char* end = nullptr;
      const long long id = std::strtoll(id_text.c_str(), &end, 10);
      Result<obs::RetainedTrace> found =
          end == id_text.c_str()
              ? Result<obs::RetainedTrace>(
                    Status::InvalidArgument("bad trace id: " + id_text))
              : dawg->tracer().Find(static_cast<int64_t>(id));
      if (!found.ok()) {
        response.status = 404;
        response.body = found.status().ToString() + "\n";
        return response;
      }
      response.body = "trace id=" + std::to_string(found->trace_id) +
                      (found->important ? " important=1\n" : " important=0\n") +
                      obs::DumpSpanTree(found->root);
      return response;
    }
    std::vector<obs::RetainedTrace> traces = dawg->tracer().Retained();
    response.body = "traces: retained=" + std::to_string(traces.size());
    if (!dawg->tracer().enabled()) {
      response.body += " (tracing disabled; enable with BIGDAWG_TRACE=1)";
    }
    response.body += "\n";
    // ?limit=N keeps only the newest N trees (the header still reports
    // the full retained count).
    size_t begin = 0;
    const std::string limit_text = QueryParam(request.query, "limit");
    if (!limit_text.empty()) {
      char* end = nullptr;
      const long long limit = std::strtoll(limit_text.c_str(), &end, 10);
      if (end != limit_text.c_str() && limit >= 0 &&
          static_cast<size_t>(limit) < traces.size()) {
        begin = traces.size() - static_cast<size_t>(limit);
      }
    }
    for (size_t i = begin; i < traces.size(); ++i) {
      response.body += "trace id=" + std::to_string(traces[i].trace_id) +
                       (traces[i].important ? " important=1\n"
                                            : " important=0\n") +
                       obs::DumpSpanTree(traces[i].root);
    }
    return response;
  });

  server->Route("/profile", [service](const obs::HttpRequest& request) {
    obs::HttpResponse response;
    obs::Profiler* profiler = service->profiler();
    if (profiler == nullptr) {
      response.body =
          "profiler: disabled (enable QueryServiceConfig::profile; "
          "BIGDAWG_PROFILE=0 kills it, =1 forces it)\n";
      return response;
    }
    response.body = profiler->Render(QueryParam(request.query, "class"));
    return response;
  });

  server->Route("/costs", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    obs::Profiler* profiler = service->profiler();
    if (profiler == nullptr) {
      response.body =
          "profiler: disabled (enable QueryServiceConfig::profile; "
          "BIGDAWG_PROFILE=0 kills it, =1 forces it)\n";
      return response;
    }
    response.body = profiler->RenderCosts();
    return response;
  });

  server->Route("/queries/slow", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = service->slow_log().Render();
    return response;
  });

  server->Route("/streams", [dawg](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = RenderStreams(dawg);
    return response;
  });

  server->Route("/shards", [dawg](const obs::HttpRequest&) {
    obs::HttpResponse response;
    const core::ShardStats& stats = dawg->shards().stats();
    response.body =
        "shards: scatters=" +
        std::to_string(stats.scatters.load(std::memory_order_relaxed)) +
        " calls=" +
        std::to_string(stats.shard_calls.load(std::memory_order_relaxed)) +
        " failures=" +
        std::to_string(stats.shard_failures.load(std::memory_order_relaxed)) +
        " hedges=" +
        std::to_string(stats.hedges.load(std::memory_order_relaxed)) +
        " retries=" +
        std::to_string(stats.retries.load(std::memory_order_relaxed)) +
        " repartitions=" +
        std::to_string(stats.repartitions.load(std::memory_order_relaxed)) +
        " pruned=" +
        std::to_string(stats.pruned.load(std::memory_order_relaxed)) + "\n";
    for (const auto& [location, placement] : dawg->catalog().ListPlacements()) {
      response.body +=
          location.object + "@" + location.engine + ": " +
          (placement.kind == core::PartitionKind::kHash ? "hash(" : "range(") +
          placement.key + ") shards=" + std::to_string(placement.shard_count) +
          " epoch=" + std::to_string(placement.epoch);
      if (!placement.range_splits.empty()) {
        response.body += " splits=";
        for (size_t i = 0; i < placement.range_splits.size(); ++i) {
          if (i > 0) response.body += ",";
          response.body += std::to_string(placement.range_splits[i]);
        }
      }
      response.body += " versions=";
      for (size_t i = 0; i < placement.shard_versions.size(); ++i) {
        if (i > 0) response.body += ",";
        response.body += std::to_string(placement.shard_versions[i]);
      }
      response.body += "\n";
    }
    return response;
  });

  server->Route("/placement", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    AdaptivePlacement* adaptive = service->adaptive();
    response.body =
        adaptive != nullptr
            ? adaptive->Render()
            : "adaptive placement: disabled (enable "
              "QueryServiceConfig::adaptive.enabled; BIGDAWG_ADAPTIVE=0 "
              "kills it, =1 forces it)\n";
    return response;
  });

  server->Route("/cache", [dawg](const obs::HttpRequest&) {
    obs::HttpResponse response;
    core::CastCache& cache = dawg->cast_cache();
    const core::CastCacheStats stats = cache.Stats();
    response.body =
        "cast cache: " + std::string(cache.enabled() ? "enabled" : "disabled") +
        " bytes=" + std::to_string(stats.bytes) + "/" +
        std::to_string(cache.max_bytes()) +
        " entries=" + std::to_string(stats.entries) +
        " hits=" + std::to_string(stats.hits) +
        " misses=" + std::to_string(stats.misses) +
        " coalesced=" + std::to_string(stats.coalesced_waits) +
        " evictions=" + std::to_string(stats.evictions) + "\n";
    for (const core::CastCacheEntryView& entry : cache.DumpEntries()) {
      char age[32];
      std::snprintf(age, sizeof(age), "%.1f", entry.age_ms);
      response.body += entry.key.ToString() +
                       " bytes=" + std::to_string(entry.bytes) +
                       " hits=" + std::to_string(entry.hits) + " age_ms=" + age +
                       "\n";
    }
    return response;
  });
}

Result<std::unique_ptr<obs::AdminServer>> StartAdminServer(
    QueryService* service, core::BigDawg* dawg,
    obs::AdminServerConfig config) {
  auto server = std::make_unique<obs::AdminServer>(std::move(config));
  RegisterAdminEndpoints(server.get(), service, dawg);
  BIGDAWG_RETURN_NOT_OK(server->Start());
  return server;
}

}  // namespace bigdawg::exec
