#include "exec/admin_endpoints.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/monitor.h"
#include "obs/trace.h"

namespace bigdawg::exec {

namespace {

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "?";
}

/// Per-engine health + breaker view shared by /readyz; `ready` reports
/// whether every engine is currently serving.
std::string RenderReadiness(QueryService* service, core::BigDawg* dawg,
                            bool* ready) {
  *ready = true;
  std::string body;
  for (const core::EngineHealth& h : dawg->monitor().EngineHealthView()) {
    const CircuitBreaker::State breaker = service->BreakerState(h.engine);
    const bool serving =
        !h.advisory_down && breaker != CircuitBreaker::State::kOpen;
    if (!serving) *ready = false;
    body += h.engine + ": " + (serving ? "serving" : "not-serving") +
            " breaker=" + BreakerStateName(breaker) +
            " advisory_down=" + (h.advisory_down ? "1" : "0") +
            " calls=" + std::to_string(h.calls) +
            " faults=" + std::to_string(h.faults) +
            " failovers=" + std::to_string(h.failovers) + "\n";
  }
  return body;
}

}  // namespace

void RegisterAdminEndpoints(obs::AdminServer* server, QueryService* service,
                            core::BigDawg* dawg) {
  server->Route("/metrics", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = service->DumpMetrics();
    return response;
  });

  server->Route("/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = "ok\n";
    return response;
  });

  server->Route("/readyz", [service, dawg](const obs::HttpRequest&) {
    obs::HttpResponse response;
    bool ready = true;
    std::string engines = RenderReadiness(service, dawg, &ready);
    response.status = ready ? 200 : 503;
    response.body = (ready ? "ready\n" : "not ready\n") + engines;
    return response;
  });

  server->Route("/traces", [dawg](const obs::HttpRequest&) {
    obs::HttpResponse response;
    std::vector<obs::TraceSpan> traces = dawg->tracer().FinishedTraces();
    response.body = "traces: retained=" + std::to_string(traces.size());
    if (!dawg->tracer().enabled()) {
      response.body += " (tracing disabled; enable with BIGDAWG_TRACE=1)";
    }
    response.body += "\n";
    for (const obs::TraceSpan& root : traces) {
      response.body += obs::DumpSpanTree(root);
    }
    return response;
  });

  server->Route("/queries/slow", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = service->slow_log().Render();
    return response;
  });

  server->Route("/cache", [dawg](const obs::HttpRequest&) {
    obs::HttpResponse response;
    core::CastCache& cache = dawg->cast_cache();
    const core::CastCacheStats stats = cache.Stats();
    response.body =
        "cast cache: " + std::string(cache.enabled() ? "enabled" : "disabled") +
        " bytes=" + std::to_string(stats.bytes) + "/" +
        std::to_string(cache.max_bytes()) +
        " entries=" + std::to_string(stats.entries) +
        " hits=" + std::to_string(stats.hits) +
        " misses=" + std::to_string(stats.misses) +
        " coalesced=" + std::to_string(stats.coalesced_waits) +
        " evictions=" + std::to_string(stats.evictions) + "\n";
    for (const core::CastCacheEntryView& entry : cache.DumpEntries()) {
      char age[32];
      std::snprintf(age, sizeof(age), "%.1f", entry.age_ms);
      response.body += entry.key.ToString() +
                       " bytes=" + std::to_string(entry.bytes) +
                       " hits=" + std::to_string(entry.hits) + " age_ms=" + age +
                       "\n";
    }
    return response;
  });
}

Result<std::unique_ptr<obs::AdminServer>> StartAdminServer(
    QueryService* service, core::BigDawg* dawg,
    obs::AdminServerConfig config) {
  auto server = std::make_unique<obs::AdminServer>(std::move(config));
  RegisterAdminEndpoints(server.get(), service, dawg);
  BIGDAWG_RETURN_NOT_OK(server->Start());
  return server;
}

}  // namespace bigdawg::exec
