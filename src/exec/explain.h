#ifndef BIGDAWG_EXEC_EXPLAIN_H_
#define BIGDAWG_EXEC_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "core/bigdawg.h"
#include "obs/trace.h"
#include "relational/table.h"

namespace bigdawg::exec {

/// How a submitted query wants to be explained (if at all).
enum class ExplainMode {
  kNone,     ///< no EXPLAIN prefix: run the query normally
  kPlan,     ///< EXPLAIN: dry-run the analysis, execute nothing
  kAnalyze,  ///< EXPLAIN ANALYZE: execute and return a per-stage profile
};

/// Detects a leading `EXPLAIN [ANALYZE]` prefix (case-insensitive,
/// whitespace-tolerant) and strips it into *body. `EXPLAIN` followed by
/// nothing is reported as kNone with the text unchanged, so a hypothetical
/// object named "explain" still parses as a query.
ExplainMode ParseExplainPrefix(const std::string& query, std::string* body);

/// Builds the EXPLAIN output for `query` as a single string-column
/// ("plan") table: resolved island and preferred engine, the engine lock
/// sets the admission layer would take, and every CAST the query would
/// perform (source, models, source engine) in execution order. Touches
/// only the catalog — no engine is contacted, nothing executes. Errors
/// (e.g. a malformed CAST) surface as the Status parsing would hit.
Result<relational::Table> BuildExplainPlan(core::BigDawg& dawg,
                                           const std::string& query);

/// Folds a finished query span tree (the root the service records for a
/// submitted query) into an EXPLAIN ANALYZE profile: a single
/// string-column ("profile") table with one line per span — attempts,
/// lock waits, breaker decisions, scope routing, casts, shims, failovers,
/// backoffs, each with its %.3f duration and tags — followed by stage
/// totals, cast volume (rows/bytes), the set of engines touched, and the
/// retry count. Deterministic under an obs::FakeClock.
relational::Table BuildAnalyzeProfile(const obs::TraceSpan& root);

}  // namespace bigdawg::exec

#endif  // BIGDAWG_EXEC_EXPLAIN_H_
