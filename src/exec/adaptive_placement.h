#ifndef BIGDAWG_EXEC_ADAPTIVE_PLACEMENT_H_
#define BIGDAWG_EXEC_ADAPTIVE_PLACEMENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/bigdawg.h"
#include "core/placement.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace bigdawg::exec {

class QueryService;

/// \brief Tuning for the adaptive-placement loop (shadow execution +
/// PlacementController). Disabled by default; BIGDAWG_ADAPTIVE=0 in the
/// environment vetoes even an enabled config (kill switch), and
/// BIGDAWG_ADAPTIVE=1 opts a default-config service in.
struct AdaptiveConfig {
  bool enabled = false;
  /// Seed for the shadow-sampling RNG — same seed, same workload, same
  /// shadow schedule (deterministic convergence tests).
  uint64_t seed = 17;
  /// Fraction of eligible (successful, read-only, misplaced-candidate)
  /// completions that get a shadow re-execution.
  double sample_rate = 0.25;
  /// Deadline applied to each shadow run; 0 = none. Shadows must never
  /// hold resources the way a hung client query would.
  double shadow_deadline_ms = 1000;
  /// Token/time budget: shadows may consume at most this many
  /// milliseconds of work before new ones are rejected with
  /// ResourceExhausted...
  double budget_ms = 2000;
  /// ...and the bucket refills at this many milliseconds of shadow work
  /// per second of (service-clock) time, up to the budget_ms cap.
  double refill_ms_per_s = 200;
  /// Shadows are skipped while in-flight client queries exceed this
  /// fraction of max_in_flight — admission headroom belongs to real
  /// traffic. 0 disables the load gate.
  double max_load_fraction = 0.5;
  /// Shadows are skipped for query classes whose profiled coordination
  /// share (locks/backoff/breaker self time over total wall time, from
  /// the always-on profiler) reaches this fraction: when a class's
  /// latency is contention, a shadow timing comparison measures the
  /// lock queue, not the engines. >= 1 (or a disabled profiler)
  /// disables the gate.
  double max_coordination_share = 0.9;
  /// Hysteresis for the decision half of the loop.
  core::PlacementPolicy policy;
};

/// \brief Shadow-execution counters (also exported as
/// bigdawg_placement_shadow_total{outcome=...}).
struct ShadowStats {
  int64_t sampled = 0;
  int64_t ok = 0;
  int64_t errors = 0;
  int64_t deadline = 0;
  int64_t cancelled = 0;
  int64_t budget_rejected = 0;
  int64_t load_skipped = 0;
  int64_t breaker_skipped = 0;
  /// Skipped because the class's profiled latency is coordination-bound.
  int64_t profile_skipped = 0;
};

/// \brief The acting half of the monitor->migrator feedback loop.
///
/// Owned by the QueryService when adaptive placement is enabled. Every
/// completed client query feeds the PlacementController's scoreboard
/// (object x current home engine); a sampled subset of successful
/// read-only queries whose island prefers a different engine than the
/// object's home is re-executed twice off the client path — once as-is
/// (baseline) and once against a temporary copy of the object
/// materialized on the candidate engine — and the two timings feed the
/// challenger's score. Sustained gaps become MigrateObject calls through
/// the query service's engine-locked Migrate (instance_id preserved, so
/// PR 5's cast cache stays warm across the move), with the controller's
/// hysteresis (min-samples, cooldown, revert-on-regression) deciding
/// when.
///
/// Shadows are guests, never tenants:
///  * they run on the shared worker pool but are skipped while client
///    load exceeds max_load_fraction of the admission limit;
///  * a token/time budget bounds total shadow work — past it, shadows
///    are rejected with a typed ResourceExhausted;
///  * engines whose breaker is open or that are advisory-down are never
///    shadowed, and shadow failures never feed the client-facing
///    breakers;
///  * shadow executions carry ExecContext::shadow, so monitor island
///    latencies, access attribution, and the trace ring describe only
///    real traffic.
class AdaptivePlacement {
 public:
  AdaptivePlacement(core::BigDawg* dawg, QueryService* service,
                    AdaptiveConfig config, const obs::Clock* clock,
                    ThreadPool* pool, obs::MetricsRegistry* metrics);
  ~AdaptivePlacement();

  AdaptivePlacement(const AdaptivePlacement&) = delete;
  AdaptivePlacement& operator=(const AdaptivePlacement&) = delete;

  /// Resolves the BIGDAWG_ADAPTIVE environment override: unset keeps
  /// `config_enabled`, "0" forces off (kill switch), anything else
  /// forces on.
  static bool EnvAllows(bool config_enabled);

  /// Completion hook, called by the query service's runner before the
  /// query releases its admission slot (so Drain() cannot miss work
  /// scheduled here). Cheap: bookkeeping plus at most one pool submit.
  void OnQueryCompleted(const std::string& query, const std::string& island,
                        bool is_write, const Status& status,
                        double latency_ms);

  /// Runs one shadow for `query` synchronously through every gate
  /// (breaker consult, load gate, budget) and returns the typed outcome;
  /// FailedPrecondition when the query has no eligible object/candidate
  /// pair. Test surface — the async path goes through OnQueryCompleted.
  Status RunShadowSync(const std::string& query, const std::string& island);

  /// Blocks until no shadow or decision task is outstanding.
  void Drain();
  /// Stops scheduling and cooperatively cancels in-flight shadows.
  void Stop();

  core::PlacementController& controller() { return controller_; }
  const AdaptiveConfig& config() const { return config_; }
  ShadowStats shadow_stats() const;
  double budget_remaining_ms() const;

  /// Human-readable state for the /placement admin endpoint: config,
  /// budget, shadow counters, scoreboard, decision history.
  std::string Render() const;
  /// Controller gauges + budget/enabled gauges into `registry`.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct ShadowJob {
    std::string query;
    std::string island;
    std::string object;
    std::string home;
    std::string candidate;
  };

  /// The object this query reads (first catalog identifier, temp names
  /// skipped) and its candidate engine; nullopt when nothing is eligible
  /// for shadowing.
  std::optional<ShadowJob> BuildJob(const std::string& query,
                                    const std::string& island) const;
  /// The full gated shadow: breaker/load/budget consults, timed baseline
  /// run, candidate copy + rewritten run, scoreboard recording, cleanup.
  Status RunShadow(const ShadowJob& job);
  /// One timed shadow execution (ExecContext::shadow set, deadline and
  /// cancellation wired); returns the elapsed ms on the service clock.
  Result<double> TimedRun(const std::string& query);
  /// Executes a controller decision (Migrate / ShardObject), reports the
  /// result back, emits the migration trace span and log line.
  void ExecuteDecision(const core::PlacementDecision& decision);
  /// Evaluate + MaybeRevert for `object`; schedules any decision as an
  /// outstanding pool task (client path) or runs it inline (shadow path).
  void DriveDecisions(const std::string& object, bool sharded, bool inline_exec);
  /// Submits `task` to the pool, tracked so Drain() can wait on it.
  void ScheduleTracked(std::function<void()> task);
  /// Refills the token bucket from elapsed clock time; mu_ held.
  void RefillLocked();

  core::BigDawg* dawg_;
  QueryService* service_;
  const AdaptiveConfig config_;
  const obs::Clock* clock_;
  ThreadPool* pool_;
  core::PlacementController controller_;

  obs::Counter* c_sampled_;
  obs::Counter* c_ok_;
  obs::Counter* c_error_;
  obs::Counter* c_deadline_;
  obs::Counter* c_cancelled_;
  obs::Counter* c_budget_rejected_;
  obs::Counter* c_load_skipped_;
  obs::Counter* c_breaker_skipped_;
  obs::Counter* c_profile_skipped_;

  std::atomic<bool> stop_{false};
  std::atomic<int64_t> shadow_seq_{0};

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  int64_t outstanding_ = 0;
  Rng rng_;
  double tokens_ms_;
  obs::Clock::TimePoint last_refill_;
};

}  // namespace bigdawg::exec

#endif  // BIGDAWG_EXEC_ADAPTIVE_PLACEMENT_H_
