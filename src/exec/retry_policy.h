#ifndef BIGDAWG_EXEC_RETRY_POLICY_H_
#define BIGDAWG_EXEC_RETRY_POLICY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/rng.h"
#include "common/status.h"
#include "obs/clock.h"

namespace bigdawg::exec {

/// \brief Retry configuration for transient engine failures.
///
/// Only `Status::Unavailable` is retried: every other error is either a
/// caller mistake (InvalidArgument, NotFound, ...) or a terminal
/// admission/deadline outcome that retrying would make worse. Backoff is
/// exponential-with-decorrelated-jitter (the AWS architecture blog
/// scheme): each delay is drawn uniformly from [base, prev * 3], capped,
/// so concurrent retriers spread out instead of thundering back in
/// lockstep. The jitter stream is seeded, so a chaos test replays the
/// exact same schedule from the same seed.
struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retries.
  int max_attempts = 4;
  double base_backoff_ms = 1;
  double max_backoff_ms = 50;
  /// Seed for the decorrelated-jitter stream (mixed with the query id so
  /// concurrent queries decorrelate while staying deterministic).
  uint64_t jitter_seed = 0x5eed;
};

/// True when the status is worth retrying under a RetryPolicy.
inline bool IsRetryableStatus(const Status& s) { return s.IsUnavailable(); }

/// \brief Per-query backoff schedule (not thread-safe; one per attempt
/// sequence).
class BackoffState {
 public:
  BackoffState(const RetryPolicy& policy, uint64_t salt);

  /// Delay before the next attempt, advancing the jitter stream.
  double NextDelayMs();

 private:
  RetryPolicy policy_;
  Rng rng_;
  double prev_ms_;
};

/// Sleeps up to `delay_ms` on `clock` (null = system), polling the
/// cooperative-cancellation flag and the deadline so a cancelled or
/// expiring query aborts its backoff promptly instead of sleeping through
/// it. Returns OK when the full delay elapsed, Cancelled/DeadlineExceeded
/// when aborted early. A delay that cannot finish before the deadline
/// returns DeadlineExceeded immediately — a retry never outlives its
/// deadline.
Status InterruptibleBackoff(const obs::Clock* clock, double delay_ms,
                            const std::atomic<bool>* cancelled,
                            bool has_deadline, obs::Clock::TimePoint deadline);

/// \brief Circuit-breaker tuning.
struct CircuitBreakerPolicy {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  /// How long the breaker stays open before admitting one half-open probe.
  double open_ms = 100;
};

/// \brief Per-engine circuit breaker: closed -> open -> half-open.
///
/// Closed passes every request and counts consecutive failures; at the
/// threshold it trips open. Open fails fast — no request reaches the
/// engine, so a dead engine stops burning admission slots and worker time
/// on doomed calls. After `open_ms` the breaker admits exactly one
/// half-open probe: success closes it, failure re-opens the window.
/// Thread-safe; one instance per engine lives in the query service.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// `clock` drives the open window (null = system clock).
  explicit CircuitBreaker(CircuitBreakerPolicy policy = {},
                          const obs::Clock* clock = nullptr);

  /// True when a request may proceed. While open, returns false until the
  /// window expires, then transitions to half-open and admits a single
  /// probe (concurrent callers keep failing fast until it resolves).
  bool AllowRequest();

  void RecordSuccess();
  /// Returns true when this failure tripped the breaker closed->open (or
  /// re-opened it from half-open), so the caller can record the trip and
  /// mark the engine advisory-down.
  bool RecordFailure();

  State state() const;
  int64_t trips() const;

 private:
  CircuitBreakerPolicy policy_;
  const obs::Clock* clock_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  obs::Clock::TimePoint open_until_{};
  int64_t trips_ = 0;
};

}  // namespace bigdawg::exec

#endif  // BIGDAWG_EXEC_RETRY_POLICY_H_
