#include "exec/explain.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/monitor.h"
#include "exec/engine_locks.h"
#include "exec/query_analysis.h"

namespace bigdawg::exec {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Case-insensitive match of `word` at text[*pos], which must be followed
/// by whitespace (a bare keyword with nothing after it does not count).
bool ConsumeWord(const std::string& text, size_t* pos, const char* word) {
  size_t p = *pos;
  for (const char* w = word; *w != '\0'; ++w, ++p) {
    if (p >= text.size() ||
        std::toupper(static_cast<unsigned char>(text[p])) != *w) {
      return false;
    }
  }
  if (p >= text.size() || !std::isspace(static_cast<unsigned char>(text[p]))) {
    return false;
  }
  while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) {
    ++p;
  }
  *pos = p;
  return true;
}

relational::Table LinesToTable(const std::string& column,
                               const std::vector<std::string>& lines) {
  relational::Table out{Schema({Field(column, DataType::kString)})};
  for (const std::string& line : lines) out.AppendUnchecked({Value(line)});
  return out;
}

/// One pass over the span tree: renders the per-span line and accumulates
/// stage totals, engines touched, and cast volume.
struct ProfileFold {
  std::vector<std::string> lines;
  std::map<std::string, double> stage_ms;
  std::set<std::string> engines;
  int64_t cast_rows = 0;
  int64_t cast_bytes = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_coalesced = 0;

  void Walk(const obs::TraceSpan& span, int depth) {
    // "shim:table" and "shim:array" fold into one "shim" stage bucket.
    const std::string stage = span.name.substr(0, span.name.find(':'));
    stage_ms[stage] += span.duration_ms;
    std::string line(static_cast<size_t>(depth) * 2, ' ');
    line += span.name;
    for (const auto& [key, value] : span.tags) {
      line += " " + key + "=" + value;
      if (key == "engine" || key == "replica" ||
          (span.name == "failover" && (key == "from" || key == "to"))) {
        engines.insert(value);
      }
      if (span.name == "cast") {
        if (key == "rows") cast_rows += std::atoll(value.c_str());
        if (key == "bytes") cast_bytes += std::atoll(value.c_str());
        if (key == "cache") {
          if (value == "hit") ++cache_hits;
          if (value == "miss") ++cache_misses;
          if (value == "coalesced") ++cache_coalesced;
        }
      }
    }
    line += " " + FormatMs(span.duration_ms) + "ms";
    lines.push_back(std::move(line));
    for (const obs::TraceSpan& child : span.children) Walk(child, depth + 1);
  }
};

std::string RootTagOr(const obs::TraceSpan& root, const std::string& key,
                      const char* fallback) {
  const std::string* value = root.FindTag(key);
  return value != nullptr ? *value : fallback;
}

}  // namespace

ExplainMode ParseExplainPrefix(const std::string& query, std::string* body) {
  *body = query;
  size_t pos = 0;
  while (pos < query.size() &&
         std::isspace(static_cast<unsigned char>(query[pos]))) {
    ++pos;
  }
  if (!ConsumeWord(query, &pos, "EXPLAIN")) return ExplainMode::kNone;
  ExplainMode mode = ExplainMode::kPlan;
  if (ConsumeWord(query, &pos, "ANALYZE")) mode = ExplainMode::kAnalyze;
  *body = query.substr(pos);
  return mode;
}

Result<relational::Table> BuildExplainPlan(core::BigDawg& dawg,
                                           const std::string& query) {
  // The cast plan is parsed first so a malformed query errors instead of
  // producing a plan for the conservative exclusive-everything fallback.
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<core::CastPlanStep> casts,
                           dawg.PlanCasts(query));
  QueryPlan plan = AnalyzeQuery(dawg, query);
  const std::string engine =
      core::Monitor::PreferredEngineForIsland(plan.island);

  std::vector<std::string> lines;
  lines.push_back("query: " + Trim(query));
  lines.push_back("island: " + plan.island +
                  (engine.empty() ? "" : " (engine " + engine + ")"));
  lines.push_back("locks: shared=" + EngineLockSetToString(plan.shared_engines) +
                  " exclusive=" + EngineLockSetToString(plan.exclusive_engines));
  if (plan.is_write) lines.push_back("write: yes");
  core::CastCache& cache = dawg.cast_cache();
  if (casts.empty()) {
    lines.push_back("casts: none");
  } else {
    int n = 0;
    for (const core::CastPlanStep& step : casts) {
      std::string source =
          step.subquery ? "<subquery> " + step.source : step.source;
      std::string from = step.from_model;
      if (!step.source_engine.empty()) from += " on " + step.source_engine;
      std::string line = "cast " + std::to_string(++n) + ": " + source + " (" +
                         from + ") -> " + step.to_model;
      // Annotate whether the cast's source fetch would be served warm.
      // Subqueries and native relational sources never consult the cache;
      // everything else probes for the (source, current version) entry
      // the executing fetch would look up.
      if (cache.enabled() && !step.subquery &&
          step.source_engine != core::kEnginePostgres) {
        Result<core::ObjectSnapshot> snap = dawg.catalog().Snapshot(step.source);
        if (snap.ok()) {
          core::CastCacheKey key{step.source, snap->instance_id, snap->version,
                                 core::CastTarget::kTable, ""};
          line += cache.Contains(key) ? " [cache: warm]" : " [cache: cold]";
        }
      }
      lines.push_back(std::move(line));
    }
  }
  lines.push_back("not executed");
  return LinesToTable("plan", lines);
}

relational::Table BuildAnalyzeProfile(const obs::TraceSpan& root) {
  std::vector<std::string> lines;
  lines.push_back("profile: island=" + RootTagOr(root, "island", "?") +
                  " status=" + RootTagOr(root, "status", "?") +
                  " attempts=" + RootTagOr(root, "attempts", "?") +
                  " failovers=" + RootTagOr(root, "failovers", "0") +
                  " total_ms=" + FormatMs(root.duration_ms));

  ProfileFold fold;
  for (const obs::TraceSpan& child : root.children) fold.Walk(child, 0);
  lines.insert(lines.end(), fold.lines.begin(), fold.lines.end());

  std::string totals = "stage totals:";
  for (const auto& [stage, ms] : fold.stage_ms) {
    totals += " " + stage + "=" + FormatMs(ms) + "ms";
  }
  lines.push_back(std::move(totals));
  if (fold.cast_rows > 0 || fold.cast_bytes > 0) {
    lines.push_back("cast volume: rows=" + std::to_string(fold.cast_rows) +
                    " bytes=" + std::to_string(fold.cast_bytes));
  }
  if (fold.cache_hits + fold.cache_misses + fold.cache_coalesced > 0) {
    lines.push_back("cast cache: hits=" + std::to_string(fold.cache_hits) +
                    " misses=" + std::to_string(fold.cache_misses) +
                    " coalesced=" + std::to_string(fold.cache_coalesced));
  }
  if (!fold.engines.empty()) {
    std::string engines = "engines touched:";
    for (const std::string& engine : fold.engines) engines += " " + engine;
    lines.push_back(std::move(engines));
  }
  const std::string attempts = RootTagOr(root, "attempts", "1");
  const int64_t retries = std::atoll(attempts.c_str()) - 1;
  lines.push_back("retries: " + std::to_string(retries < 0 ? 0 : retries));
  return LinesToTable("profile", lines);
}

}  // namespace bigdawg::exec
