#ifndef BIGDAWG_EXEC_QUERY_ANALYSIS_H_
#define BIGDAWG_EXEC_QUERY_ANALYSIS_H_

#include <cstdint>
#include <string>

#include "core/bigdawg.h"

namespace bigdawg::exec {

/// \brief What the admission layer learned about a query before running
/// it: the island that will interpret it and the engine lock sets it
/// needs.
struct QueryPlan {
  /// Resolved SCOPE island (RELATIONAL when the query is unscoped).
  std::string island = "RELATIONAL";
  bool has_cast = false;
  bool is_write = false;
  /// Engines the query may read (island's engines + homes and replicas
  /// of every referenced catalog object).
  uint32_t shared_engines = 0;
  /// Engines the query mutates. CAST-containing and write queries lock
  /// conservatively (CAST temporaries may materialize on any engine).
  uint32_t exclusive_engines = 0;
};

/// Computes the lock sets for `query` against the polystore's current
/// catalog. Conservative by construction: analysis failures (e.g. a
/// query the lexer rejects) degrade to exclusive-on-everything, never to
/// under-locking.
QueryPlan AnalyzeQuery(core::BigDawg& dawg, const std::string& query);

}  // namespace bigdawg::exec

#endif  // BIGDAWG_EXEC_QUERY_ANALYSIS_H_
