#include "exec/query_service.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "core/monitor.h"
#include "exec/query_analysis.h"

namespace bigdawg::exec {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineFor(const SubmitOptions& opts,
                              const QueryServiceConfig& config, bool* has) {
  double timeout_ms = opts.timeout_ms < 0 ? config.default_timeout_ms : opts.timeout_ms;
  if (timeout_ms <= 0) {
    *has = false;
    return Clock::time_point{};
  }
  *has = true;
  return Clock::now() +
         std::chrono::microseconds(static_cast<int64_t>(timeout_ms * 1000));
}

}  // namespace

Result<relational::Table> QueryHandle::Wait() {
  if (!future_.valid()) {
    return Status::FailedPrecondition("query handle is empty or already waited on");
  }
  return future_.get();
}

QueryService::QueryService(core::BigDawg* dawg, QueryServiceConfig config)
    : dawg_(dawg), config_(config), pool_(config.num_workers) {}

QueryService::~QueryService() { Drain(); }

int64_t QueryService::OpenSession() {
  std::lock_guard lock(mu_);
  int64_t id = next_session_id_++;
  sessions_[id] = true;
  ++counters_.sessions_open;
  return id;
}

Status QueryService::CloseSession(int64_t session) {
  std::lock_guard lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second) {
    return Status::NotFound("no open session " + std::to_string(session));
  }
  it->second = false;
  --counters_.sessions_open;
  return Status::OK();
}

Result<QueryHandle> QueryService::Admit(QueryRunner run, const SubmitOptions& opts) {
  int64_t id;
  auto state = std::make_shared<QueryState>();
  {
    std::lock_guard lock(mu_);
    ++counters_.submitted;
    if (opts.session != kNoSession) {
      auto it = sessions_.find(opts.session);
      if (it == sessions_.end() || !it->second) {
        return Status::FailedPrecondition("session " + std::to_string(opts.session) +
                                          " is not open");
      }
    }
    if (config_.max_in_flight > 0 &&
        in_flight_ >= static_cast<int64_t>(config_.max_in_flight)) {
      ++counters_.rejected;
      return Status::ResourceExhausted(
          "query service at admission limit (" +
          std::to_string(config_.max_in_flight) + " in flight)");
    }
    ++counters_.admitted;
    ++in_flight_;
    id = next_query_id_++;
    live_[id] = state;
  }

  auto promise = std::make_shared<std::promise<Result<relational::Table>>>();
  QueryHandle handle;
  handle.id_ = id;
  handle.future_ = promise->get_future();

  pool_.Submit([run = std::move(run), promise, state, id] {
    promise->set_value(run(id, state));
  });
  return handle;
}

void QueryService::RecordOutcome(int64_t query_id, const std::string& island,
                                 const Status& status, double latency_ms,
                                 int64_t retries, int64_t failovers,
                                 bool degraded) {
  std::lock_guard lock(mu_);
  live_.erase(query_id);
  --in_flight_;
  if (status.ok()) {
    ++counters_.completed;
  } else if (status.IsCancelled()) {
    ++counters_.cancelled;
  } else if (status.IsDeadlineExceeded()) {
    ++counters_.timed_out;
  } else {
    ++counters_.failed;
  }
  counters_.retries += retries;
  counters_.failovers += failovers;
  if (degraded) ++counters_.degraded;
  std::vector<double>& ring = latencies_[island];
  size_t& next = latency_next_[island];
  if (ring.size() < kLatencyWindow) {
    ring.push_back(latency_ms);
  } else {
    ring[next] = latency_ms;
    next = (next + 1) % kLatencyWindow;
  }
  drain_cv_.notify_all();
}

Result<QueryHandle> QueryService::Submit(const std::string& query,
                                         SubmitOptions opts) {
  bool has_deadline = false;
  Clock::time_point deadline = DeadlineFor(opts, config_, &has_deadline);
  Stopwatch latency_timer;  // admission -> completion, queue wait included

  QueryRunner run = [this, query, opts, has_deadline, deadline, latency_timer](
                        int64_t id, const std::shared_ptr<QueryState>& state)
      -> Result<relational::Table> {
    QueryPlan plan = AnalyzeQuery(*dawg_, query);
    const std::string island_engine =
        core::Monitor::PreferredEngineForIsland(plan.island);

    int attempts = 0;
    int64_t failovers = 0;
    BackoffState backoff(config_.retry, static_cast<uint64_t>(id));
    Result<relational::Table> result =
        Status::Internal("query was never attempted");

    for (;;) {
      ++attempts;
      bool breaker_fail_fast = false;
      std::string failed_engine;
      result = [&]() -> Result<relational::Table> {
        if (state->cancelled.load(std::memory_order_relaxed)) {
          return Status::Cancelled("query cancelled while queued");
        }
        if (has_deadline && Clock::now() > deadline) {
          return Status::DeadlineExceeded("query deadline passed while queued");
        }
        // Fail fast while the island's own engine is breaker-open: no
        // engine locks taken, no admission slot burned on a timeout.
        if (!island_engine.empty()) {
          CircuitBreaker& breaker = BreakerFor(island_engine);
          if (!breaker.AllowRequest()) {
            breaker_fail_fast = true;
            return Status::Unavailable("circuit breaker open for engine " +
                                       island_engine);
          }
          // A half-open probe must route like a normal query to prove the
          // engine is back, so lift the advisory-down mark (which would
          // otherwise reroute its reads away from the very engine under
          // probe). A failed probe re-raises it.
          if (breaker.state() == CircuitBreaker::State::kHalfOpen) {
            dawg_->monitor().SetEngineAdvisoryDown(island_engine, false);
          }
        }
        EngineLockManager::ScopedLocks locks =
            lock_mgr_.Acquire(plan.shared_engines, plan.exclusive_engines);

        core::ExecContext ctx;
        // Session id + query id make the temp namespace unique across all
        // live executions; the "__cast_" lead keeps the monitor skipping
        // temp names. Cancellation/deadline are re-checked inside Execute.
        ctx.temp_prefix =
            "__cast_s" +
            (opts.session == kNoSession ? std::string("a")
                                        : std::to_string(opts.session)) +
            "_q" + std::to_string(id) + "_";
        ctx.cancelled = &state->cancelled;
        ctx.has_deadline = has_deadline;
        ctx.deadline = deadline;
        Result<relational::Table> attempt = dawg_->Execute(query, &ctx);
        failovers += ctx.failovers;
        failed_engine = ctx.unavailable_engine;
        return attempt;
      }();

      // Resolve this attempt against the breakers. A half-open probe
      // admitted by AllowRequest above MUST see exactly one
      // RecordSuccess/RecordFailure, or the breaker would wedge.
      if (!island_engine.empty() && !breaker_fail_fast) {
        if (result.status().IsUnavailable() &&
            (failed_engine.empty() || failed_engine == island_engine)) {
          RecordEngineFailure(island_engine);
        } else {
          // The island's engine answered (the failure, if any, belongs to
          // another engine or to the query itself).
          RecordEngineSuccess(island_engine);
        }
      }
      if (result.status().IsUnavailable() && !failed_engine.empty() &&
          failed_engine != island_engine) {
        RecordEngineFailure(failed_engine);
      }

      if (result.ok()) break;
      if (!IsRetryableStatus(result.status())) break;
      if (breaker_fail_fast) break;  // open breaker = fail fast, not retry
      if (attempts >= std::max(1, config_.retry.max_attempts)) break;
      // Backoff, budgeted against the deadline and aborted by Cancel. A
      // deadline-capped backoff keeps the (bounded-retries) Unavailable;
      // an actual cancellation becomes the query's outcome.
      Status slept = InterruptibleBackoff(backoff.NextDelayMs(),
                                          &state->cancelled, has_deadline,
                                          deadline);
      if (slept.IsCancelled()) {
        result = slept;
        break;
      }
      if (slept.IsDeadlineExceeded()) break;
    }

    bool degraded = result.ok() && (attempts > 1 || failovers > 0);
    RecordOutcome(id, plan.island, result.status(), latency_timer.ElapsedMillis(),
                  attempts - 1, failovers, degraded);
    return result;
  };
  return Admit(std::move(run), opts);
}

CircuitBreaker& QueryService::BreakerFor(const std::string& engine) {
  std::lock_guard lock(breaker_mu_);
  std::unique_ptr<CircuitBreaker>& slot = breakers_[engine];
  if (slot == nullptr) slot = std::make_unique<CircuitBreaker>(config_.breaker);
  return *slot;
}

void QueryService::RecordEngineSuccess(const std::string& engine) {
  BreakerFor(engine).RecordSuccess();
  dawg_->monitor().SetEngineAdvisoryDown(engine, false);
}

void QueryService::RecordEngineFailure(const std::string& engine) {
  if (BreakerFor(engine).RecordFailure()) {
    // Tripped: advertise the outage so replicated reads start failing
    // over in the core, and count the trip.
    dawg_->monitor().SetEngineAdvisoryDown(engine, true);
    std::lock_guard lock(mu_);
    ++counters_.breaker_trips;
  }
}

CircuitBreaker::State QueryService::BreakerState(const std::string& engine) const {
  std::lock_guard lock(breaker_mu_);
  auto it = breakers_.find(engine);
  return it == breakers_.end() ? CircuitBreaker::State::kClosed
                               : it->second->state();
}

Result<QueryHandle> QueryService::SubmitTask(
    std::function<Result<relational::Table>()> fn, SubmitOptions opts) {
  Stopwatch latency_timer;
  QueryRunner run = [this, fn = std::move(fn), latency_timer](
                        int64_t id, const std::shared_ptr<QueryState>& state)
      -> Result<relational::Table> {
    Result<relational::Table> result =
        state->cancelled.load(std::memory_order_relaxed)
            ? Result<relational::Table>(
                  Status::Cancelled("task cancelled while queued"))
            : fn();
    RecordOutcome(id, "TASK", result.status(), latency_timer.ElapsedMillis());
    return result;
  };
  return Admit(std::move(run), opts);
}

Result<relational::Table> QueryService::ExecuteSync(const std::string& query,
                                                    SubmitOptions opts) {
  BIGDAWG_ASSIGN_OR_RETURN(QueryHandle handle, Submit(query, opts));
  return handle.Wait();
}

Status QueryService::Cancel(int64_t query_id) {
  std::lock_guard lock(mu_);
  auto it = live_.find(query_id);
  if (it == live_.end()) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " is not in flight");
  }
  it->second->cancelled.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status QueryService::Migrate(const std::string& object,
                             const std::string& target_engine) {
  // The object's home can move between lookup and lock acquisition
  // (another migration); re-check under the locks and retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    Result<core::ObjectLocation> loc = dawg_->catalog().Lookup(object);
    if (!loc.ok()) return loc.status();
    uint32_t exclusive =
        EngineLockBitFor(loc->engine) | EngineLockBitFor(target_engine);
    // FetchAsTable may serve the read from a fresh relational replica.
    uint32_t shared = kLockPostgres & ~exclusive;
    EngineLockManager::ScopedLocks locks = lock_mgr_.Acquire(shared, exclusive);
    Result<core::ObjectLocation> recheck = dawg_->catalog().Lookup(object);
    if (!recheck.ok()) return recheck.status();
    if (recheck->engine != loc->engine) continue;
    return dawg_->MigrateObject(object, target_engine);
  }
  return Status::Aborted("object " + object +
                         " kept moving; migration lock acquisition starved");
}

Result<int64_t> QueryService::RefreshReplicas(const std::string& object) {
  Result<core::ObjectLocation> loc = dawg_->catalog().Lookup(object);
  if (!loc.ok()) return loc.status();
  uint32_t exclusive = 0;
  for (const core::ReplicaLocation& replica : dawg_->catalog().Replicas(object)) {
    exclusive |= EngineLockBitFor(replica.engine);
  }
  uint32_t shared = EngineLockBitFor(loc->engine) & ~exclusive;
  EngineLockManager::ScopedLocks locks = lock_mgr_.Acquire(shared, exclusive);
  return dawg_->RefreshReplicas(object);
}

void QueryService::Drain() {
  std::unique_lock lock(mu_);
  drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

QueryServiceStats QueryService::Stats() const {
  std::lock_guard lock(mu_);
  QueryServiceStats stats = counters_;
  stats.in_flight = in_flight_;
  for (const auto& [island, ring] : latencies_) {
    if (ring.empty()) continue;
    IslandLatency lat;
    lat.island = island;
    lat.count = static_cast<int64_t>(ring.size());
    std::vector<double> sorted = ring;
    std::sort(sorted.begin(), sorted.end());
    double total = 0;
    for (double v : sorted) total += v;
    lat.mean_ms = total / static_cast<double>(sorted.size());
    auto quantile = [&sorted](double q) {
      size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
      return sorted[idx];
    };
    lat.p50_ms = quantile(0.50);
    lat.p95_ms = quantile(0.95);
    stats.islands.push_back(std::move(lat));
  }
  return stats;
}

}  // namespace bigdawg::exec
