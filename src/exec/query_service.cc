#include "exec/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "common/macros.h"
#include "core/monitor.h"
#include "core/stream_ageout.h"
#include "exec/explain.h"
#include "exec/query_analysis.h"
#include "obs/trace.h"

namespace bigdawg::exec {

namespace {

obs::Clock::TimePoint DeadlineFor(const obs::Clock* clock,
                                  const SubmitOptions& opts,
                                  const QueryServiceConfig& config, bool* has) {
  double timeout_ms = opts.timeout_ms < 0 ? config.default_timeout_ms : opts.timeout_ms;
  if (timeout_ms <= 0) {
    *has = false;
    return obs::Clock::TimePoint{};
  }
  *has = true;
  return clock->Now() + obs::Clock::FromMillis(timeout_ms);
}

// Deterministic %.3f for span tags (delay values come from a seeded jitter
// stream, so the text is reproducible).
std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

// Latency histogram buckets (ms): wide enough for queue waits under load,
// fine enough to see the sub-millisecond in-memory path.
std::vector<double> LatencyBuckets() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000};
}

}  // namespace

Result<relational::Table> QueryHandle::Wait() {
  if (!future_.valid()) {
    return Status::FailedPrecondition("query handle is empty or already waited on");
  }
  return future_.get();
}

QueryService::QueryService(core::BigDawg* dawg, QueryServiceConfig config)
    : dawg_(dawg),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : obs::Clock::System()),
      slow_log_(config.slow_query_ms, config.slow_query_capacity),
      pool_(config.num_workers) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  c_submitted_ = metrics_->GetCounter("bigdawg_queries_total{outcome=\"submitted\"}");
  c_admitted_ = metrics_->GetCounter("bigdawg_queries_total{outcome=\"admitted\"}");
  c_rejected_ = metrics_->GetCounter("bigdawg_queries_total{outcome=\"rejected\"}");
  c_completed_ = metrics_->GetCounter("bigdawg_queries_total{outcome=\"completed\"}");
  c_failed_ = metrics_->GetCounter("bigdawg_queries_total{outcome=\"failed\"}");
  c_cancelled_ = metrics_->GetCounter("bigdawg_queries_total{outcome=\"cancelled\"}");
  c_timed_out_ = metrics_->GetCounter("bigdawg_queries_total{outcome=\"timed_out\"}");
  c_retries_ = metrics_->GetCounter("bigdawg_resilience_events_total{event=\"retry\"}");
  c_breaker_trips_ =
      metrics_->GetCounter("bigdawg_resilience_events_total{event=\"breaker_trip\"}");
  c_failovers_ =
      metrics_->GetCounter("bigdawg_resilience_events_total{event=\"failover\"}");
  c_degraded_ =
      metrics_->GetCounter("bigdawg_resilience_events_total{event=\"degraded\"}");
  g_in_flight_ = metrics_->GetGauge("bigdawg_queries_in_flight");
  g_sessions_open_ = metrics_->GetGauge("bigdawg_sessions_open");
  if (config_.cast_cache_bytes == 0) {
    dawg_->cast_cache().SetEnabled(false);
  } else if (config_.cast_cache_bytes > 0) {
    dawg_->cast_cache().SetMaxBytes(config_.cast_cache_bytes);
  }
  if (config_.clock != nullptr) dawg_->cast_cache().SetClock(config_.clock);
  dawg_->cast_cache().BindMetrics(metrics_);
  obs::RegisterBuildInfo(metrics_);
  // Tail retention in the tracer keeps what the slow-query log would log.
  dawg_->tracer().SetSlowThresholdMs(slow_log_.threshold_ms());
  if (obs::Profiler::EnvAllows(config_.profile)) {
    profiler_ = std::make_unique<obs::Profiler>(config_.profile_sample_every);
  }
  if (AdaptivePlacement::EnvAllows(config_.adaptive.enabled)) {
    adaptive_ = std::make_unique<AdaptivePlacement>(
        dawg_, this, config_.adaptive, clock_, &pool_, metrics_);
  }
}

QueryService::~QueryService() {
  if (adaptive_ != nullptr) adaptive_->Stop();
  Drain();
}

int64_t QueryService::OpenSession() {
  std::lock_guard lock(mu_);
  int64_t id = next_session_id_++;
  sessions_[id] = true;
  ++sessions_open_;
  g_sessions_open_->Set(static_cast<double>(sessions_open_));
  return id;
}

Status QueryService::CloseSession(int64_t session) {
  std::lock_guard lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second) {
    return Status::NotFound("no open session " + std::to_string(session));
  }
  it->second = false;
  --sessions_open_;
  g_sessions_open_->Set(static_cast<double>(sessions_open_));
  return Status::OK();
}

Result<QueryHandle> QueryService::Admit(QueryRunner run, const SubmitOptions& opts) {
  int64_t id;
  auto state = std::make_shared<QueryState>();
  {
    std::lock_guard lock(mu_);
    c_submitted_->Increment();
    if (opts.session != kNoSession) {
      auto it = sessions_.find(opts.session);
      if (it == sessions_.end() || !it->second) {
        return Status::FailedPrecondition("session " + std::to_string(opts.session) +
                                          " is not open");
      }
    }
    if (config_.max_in_flight > 0 &&
        in_flight_ >= static_cast<int64_t>(config_.max_in_flight)) {
      c_rejected_->Increment();
      return Status::ResourceExhausted(
          "query service at admission limit (" +
          std::to_string(config_.max_in_flight) + " in flight)");
    }
    c_admitted_->Increment();
    ++in_flight_;
    g_in_flight_->Set(static_cast<double>(in_flight_));
    id = next_query_id_++;
    live_[id] = state;
  }

  auto promise = std::make_shared<std::promise<Result<relational::Table>>>();
  QueryHandle handle;
  handle.id_ = id;
  handle.future_ = promise->get_future();

  pool_.Submit([run = std::move(run), promise, state, id] {
    promise->set_value(run(id, state));
  });
  return handle;
}

void QueryService::RecordOutcome(int64_t query_id, const std::string& island,
                                 const Status& status, double latency_ms,
                                 int64_t retries, int64_t failovers,
                                 bool degraded, int64_t trace_id) {
  if (status.ok()) {
    c_completed_->Increment();
  } else if (status.IsCancelled()) {
    c_cancelled_->Increment();
  } else if (status.IsDeadlineExceeded()) {
    c_timed_out_->Increment();
  } else {
    c_failed_->Increment();
  }
  if (retries > 0) c_retries_->Increment(retries);
  if (failovers > 0) c_failovers_->Increment(failovers);
  if (degraded) c_degraded_->Increment();
  metrics_
      ->GetHistogram("bigdawg_query_latency_ms{island=\"" + island + "\"}",
                     LatencyBuckets())
      ->Observe(latency_ms, trace_id);
  std::lock_guard lock(mu_);
  live_.erase(query_id);
  --in_flight_;
  g_in_flight_->Set(static_cast<double>(in_flight_));
  latencies_[island].Record(latency_ms);
  drain_cv_.notify_all();
}

Result<QueryHandle> QueryService::Submit(const std::string& query,
                                         SubmitOptions opts) {
  std::string body;
  const ExplainMode explain = ParseExplainPrefix(query, &body);
  bool has_deadline = false;
  obs::Clock::TimePoint deadline = DeadlineFor(clock_, opts, config_, &has_deadline);
  // Admission -> completion, queue wait included, measured on the
  // service clock so FakeClock tests see deterministic latencies.
  obs::Clock::TimePoint admitted_at = clock_->Now();

  if (explain == ExplainMode::kPlan) {
    // EXPLAIN is admission-controlled like any query but is a pure
    // dry-run: it reads the catalog, takes no engine locks, and contacts
    // no engine.
    QueryRunner run = [this, body, admitted_at](
                          int64_t id, const std::shared_ptr<QueryState>& state)
        -> Result<relational::Table> {
      Result<relational::Table> plan_table =
          state->cancelled.load(std::memory_order_relaxed)
              ? Result<relational::Table>(
                    Status::Cancelled("query cancelled while queued"))
              : BuildExplainPlan(*dawg_, body);
      RecordOutcome(id, "EXPLAIN", plan_table.status(),
                    obs::Clock::ToMillis(clock_->Now() - admitted_at));
      return plan_table;
    };
    return Admit(std::move(run), opts);
  }
  const bool analyze = explain == ExplainMode::kAnalyze;

  QueryRunner run = [this, query = body, opts, has_deadline, deadline,
                     admitted_at, analyze](
                        int64_t id, const std::shared_ptr<QueryState>& state)
      -> Result<relational::Table> {
    QueryPlan plan = AnalyzeQuery(*dawg_, query);
    const std::string island_engine =
        core::Monitor::PreferredEngineForIsland(plan.island);

    // EXPLAIN ANALYZE needs the span tree to build its profile, so it
    // traces the execution even when the process-wide tracer is off. The
    // always-on profiler likewise traces its sampled completions — that
    // is its entire data source — but only tracer-enabled runs retain
    // the tree (and earn a trace_id) afterwards.
    const bool profiled = profiler_ != nullptr && profiler_->Sample();
    std::unique_ptr<obs::Trace> trace;
    if (analyze || profiled || dawg_->tracer().enabled()) {
      trace = std::make_unique<obs::Trace>(clock_, "query");
      trace->Tag(trace->root(), "island", plan.island);
    }

    int attempts = 0;
    int64_t failovers = 0;
    BackoffState backoff(config_.retry, static_cast<uint64_t>(id));
    Result<relational::Table> result =
        Status::Internal("query was never attempted");

    for (;;) {
      ++attempts;
      bool breaker_fail_fast = false;
      std::string failed_engine;
      {
        obs::SpanGuard attempt_span(trace.get(), "attempt");
        attempt_span.Tag("n", std::to_string(attempts));
        result = [&]() -> Result<relational::Table> {
          if (state->cancelled.load(std::memory_order_relaxed)) {
            return Status::Cancelled("query cancelled while queued");
          }
          if (has_deadline && clock_->Now() > deadline) {
            return Status::DeadlineExceeded("query deadline passed while queued");
          }
          // Fail fast while the island's own engine is breaker-open: no
          // engine locks taken, no admission slot burned on a timeout.
          if (!island_engine.empty()) {
            CircuitBreaker& breaker = BreakerFor(island_engine);
            if (!breaker.AllowRequest()) {
              breaker_fail_fast = true;
              if (trace != nullptr) {
                obs::SpanGuard breaker_span(trace.get(), "breaker");
                breaker_span.Tag("engine", island_engine);
                breaker_span.Tag("decision", "fail_fast");
              }
              return Status::Unavailable("circuit breaker open for engine " +
                                         island_engine);
            }
            // A half-open probe must route like a normal query to prove the
            // engine is back, so lift the advisory-down mark (which would
            // otherwise reroute its reads away from the very engine under
            // probe). A failed probe re-raises it.
            if (breaker.state() == CircuitBreaker::State::kHalfOpen) {
              if (trace != nullptr) {
                obs::SpanGuard breaker_span(trace.get(), "breaker");
                breaker_span.Tag("engine", island_engine);
                breaker_span.Tag("decision", "probe");
              }
              dawg_->monitor().SetEngineAdvisoryDown(island_engine, false);
            }
          }
          EngineLockManager::ScopedLocks locks = [&] {
            obs::SpanGuard locks_span(trace.get(), "locks");
            return lock_mgr_.Acquire(plan.shared_engines, plan.exclusive_engines);
          }();

          core::ExecContext ctx;
          // Session id + query id make the temp namespace unique across all
          // live executions; the "__cast_" lead keeps the monitor skipping
          // temp names. Cancellation/deadline are re-checked inside Execute.
          ctx.temp_prefix =
              "__cast_s" +
              (opts.session == kNoSession ? std::string("a")
                                          : std::to_string(opts.session)) +
              "_q" + std::to_string(id) + "_";
          ctx.cancelled = &state->cancelled;
          ctx.has_deadline = has_deadline;
          ctx.deadline = deadline;
          ctx.clock = clock_;
          ctx.trace = trace.get();
          Result<relational::Table> attempt = dawg_->Execute(query, &ctx);
          failovers += ctx.failovers;
          failed_engine = ctx.unavailable_engine;
          return attempt;
        }();
        if (!result.ok()) {
          attempt_span.Tag("error", StatusCodeToString(result.status().code()));
        }
      }

      // Resolve this attempt against the breakers. A half-open probe
      // admitted by AllowRequest above MUST see exactly one
      // RecordSuccess/RecordFailure, or the breaker would wedge.
      if (!island_engine.empty() && !breaker_fail_fast) {
        if (result.status().IsUnavailable() &&
            (failed_engine.empty() || failed_engine == island_engine)) {
          RecordEngineFailure(island_engine);
        } else {
          // The island's engine answered (the failure, if any, belongs to
          // another engine or to the query itself).
          RecordEngineSuccess(island_engine);
        }
      }
      if (result.status().IsUnavailable() && !failed_engine.empty() &&
          failed_engine != island_engine) {
        RecordEngineFailure(failed_engine);
      }

      if (result.ok()) break;
      if (!IsRetryableStatus(result.status())) break;
      if (breaker_fail_fast) break;  // open breaker = fail fast, not retry
      if (attempts >= std::max(1, config_.retry.max_attempts)) break;
      // Backoff, budgeted against the deadline and aborted by Cancel. A
      // deadline-capped backoff keeps the (bounded-retries) Unavailable;
      // an actual cancellation becomes the query's outcome.
      double delay_ms = backoff.NextDelayMs();
      BIGDAWG_CLOG(Warn, "exec")
          << "q" << id << " attempt " << attempts << " failed ("
          << StatusCodeToString(result.status().code()) << "); retrying in "
          << FormatMs(delay_ms) << "ms";
      Status slept;
      {
        obs::SpanGuard backoff_span(trace.get(), "backoff");
        backoff_span.Tag("delay_ms", FormatMs(delay_ms));
        slept = InterruptibleBackoff(clock_, delay_ms, &state->cancelled,
                                     has_deadline, deadline);
      }
      if (slept.IsCancelled()) {
        result = slept;
        break;
      }
      if (slept.IsDeadlineExceeded()) break;
    }

    bool degraded = result.ok() && (attempts > 1 || failovers > 0);
    double latency_ms = obs::Clock::ToMillis(clock_->Now() - admitted_at);
    Result<relational::Table> profile =
        Status::Internal("no profile was built");
    int64_t trace_id = -1;
    if (trace != nullptr) {
      trace->Tag(trace->root(), "status",
                 StatusCodeToString(result.status().code()));
      trace->Tag(trace->root(), "attempts", std::to_string(attempts));
      trace->Tag(trace->root(), "failovers", std::to_string(failovers));
      obs::TraceSpan finished = std::move(*trace).Finish();
      trace.reset();
      if (analyze && result.ok()) profile = BuildAnalyzeProfile(finished);
      if (profiled) profiler_->Ingest(finished);
      if (dawg_->tracer().enabled()) {
        trace_id = dawg_->tracer().Record(std::move(finished));
      }
    }
    // Adaptive placement sees the completion BEFORE the admission slot
    // releases, so Drain() (wait in_flight==0, then drain shadows) can
    // never miss a shadow or migration scheduled here.
    if (adaptive_ != nullptr) {
      adaptive_->OnQueryCompleted(query, plan.island, plan.is_write,
                                  result.status(), latency_ms);
    }
    RecordOutcome(id, plan.island, result.status(), latency_ms,
                  attempts - 1, failovers, degraded, trace_id);
    MaybeRecordSlow(id, opts.session, query, plan.island, result.status(),
                    latency_ms, attempts, failovers, trace_id);
    // ANALYZE swaps the result rows for the profile; failures keep their
    // error so callers see exactly what a plain run would have seen.
    if (analyze && result.ok()) return profile;
    return result;
  };
  return Admit(std::move(run), opts);
}

void QueryService::MaybeRecordSlow(int64_t query_id, int64_t session,
                                   const std::string& query,
                                   const std::string& island,
                                   const Status& status, double latency_ms,
                                   int64_t attempts, int64_t failovers,
                                   int64_t trace_id) {
  if (!slow_log_.ShouldLog(latency_ms)) return;
  obs::SlowQueryEntry entry;
  entry.query_id = query_id;
  entry.session = session;
  entry.query = query;
  entry.island = island;
  entry.status = StatusCodeToString(status.code());
  entry.latency_ms = latency_ms;
  entry.attempts = attempts;
  entry.failovers = failovers;
  entry.trace_id = trace_id;
  BIGDAWG_CLOG(Warn, "exec") << "slow query " << entry.ToLine();
  slow_log_.Record(std::move(entry));
}

CircuitBreaker& QueryService::BreakerFor(const std::string& engine) {
  std::lock_guard lock(breaker_mu_);
  std::unique_ptr<CircuitBreaker>& slot = breakers_[engine];
  if (slot == nullptr) {
    slot = std::make_unique<CircuitBreaker>(config_.breaker, clock_);
  }
  return *slot;
}

void QueryService::RecordEngineSuccess(const std::string& engine) {
  BreakerFor(engine).RecordSuccess();
  dawg_->monitor().SetEngineAdvisoryDown(engine, false);
}

void QueryService::RecordEngineFailure(const std::string& engine) {
  if (BreakerFor(engine).RecordFailure()) {
    // Tripped: advertise the outage so replicated reads start failing
    // over in the core, and count the trip.
    BIGDAWG_CLOG(Warn, "exec") << "circuit breaker opened for engine "
                               << engine << "; marking advisory-down";
    dawg_->monitor().SetEngineAdvisoryDown(engine, true);
    c_breaker_trips_->Increment();
  }
}

CircuitBreaker::State QueryService::BreakerState(const std::string& engine) const {
  std::lock_guard lock(breaker_mu_);
  auto it = breakers_.find(engine);
  return it == breakers_.end() ? CircuitBreaker::State::kClosed
                               : it->second->state();
}

Result<QueryHandle> QueryService::SubmitTask(
    std::function<Result<relational::Table>()> fn, SubmitOptions opts) {
  obs::Clock::TimePoint admitted_at = clock_->Now();
  QueryRunner run = [this, fn = std::move(fn), admitted_at](
                        int64_t id, const std::shared_ptr<QueryState>& state)
      -> Result<relational::Table> {
    Result<relational::Table> result =
        state->cancelled.load(std::memory_order_relaxed)
            ? Result<relational::Table>(
                  Status::Cancelled("task cancelled while queued"))
            : fn();
    RecordOutcome(id, "TASK", result.status(),
                  obs::Clock::ToMillis(clock_->Now() - admitted_at));
    return result;
  };
  return Admit(std::move(run), opts);
}

Result<relational::Table> QueryService::ExecuteSync(const std::string& query,
                                                    SubmitOptions opts) {
  BIGDAWG_ASSIGN_OR_RETURN(QueryHandle handle, Submit(query, opts));
  return handle.Wait();
}

Status QueryService::Cancel(int64_t query_id) {
  std::lock_guard lock(mu_);
  auto it = live_.find(query_id);
  if (it == live_.end()) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " is not in flight");
  }
  it->second->cancelled.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status QueryService::Migrate(const std::string& object,
                             const std::string& target_engine) {
  // The object's home can move between lookup and lock acquisition
  // (another migration); re-check under the locks and retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    Result<core::ObjectLocation> loc = dawg_->catalog().Lookup(object);
    if (!loc.ok()) return loc.status();
    uint32_t exclusive =
        EngineLockBitFor(loc->engine) | EngineLockBitFor(target_engine);
    // FetchAsTable may serve the read from a fresh relational replica.
    uint32_t shared = kLockPostgres & ~exclusive;
    EngineLockManager::ScopedLocks locks = lock_mgr_.Acquire(shared, exclusive);
    Result<core::ObjectLocation> recheck = dawg_->catalog().Lookup(object);
    if (!recheck.ok()) return recheck.status();
    if (recheck->engine != loc->engine) continue;
    return dawg_->MigrateObject(object, target_engine);
  }
  return Status::Aborted("object " + object +
                         " kept moving; migration lock acquisition starved");
}

Result<int64_t> QueryService::RefreshReplicas(const std::string& object) {
  Result<core::ObjectLocation> loc = dawg_->catalog().Lookup(object);
  if (!loc.ok()) return loc.status();
  uint32_t exclusive = 0;
  for (const core::ReplicaLocation& replica : dawg_->catalog().Replicas(object)) {
    exclusive |= EngineLockBitFor(replica.engine);
  }
  uint32_t shared = EngineLockBitFor(loc->engine) & ~exclusive;
  EngineLockManager::ScopedLocks locks = lock_mgr_.Acquire(shared, exclusive);
  return dawg_->RefreshReplicas(object);
}

void QueryService::Drain() {
  {
    std::unique_lock lock(mu_);
    drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  // Shadows and migrations are scheduled while their triggering query
  // still holds its admission slot, so by this point every adaptive task
  // is at least queued; wait for them too.
  if (adaptive_ != nullptr) adaptive_->Drain();
}

int64_t QueryService::InFlight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

QueryServiceStats QueryService::Stats() const {
  QueryServiceStats stats;
  stats.submitted = c_submitted_->Value();
  stats.admitted = c_admitted_->Value();
  stats.rejected = c_rejected_->Value();
  stats.completed = c_completed_->Value();
  stats.failed = c_failed_->Value();
  stats.cancelled = c_cancelled_->Value();
  stats.timed_out = c_timed_out_->Value();
  stats.retries = c_retries_->Value();
  stats.breaker_trips = c_breaker_trips_->Value();
  stats.failovers = c_failovers_->Value();
  stats.degraded = c_degraded_->Value();
  std::lock_guard lock(mu_);
  stats.in_flight = in_flight_;
  stats.sessions_open = sessions_open_;
  for (const auto& [island, window] : latencies_) {
    if (window.count() == 0) continue;
    IslandLatency lat;
    lat.island = island;
    lat.count = window.count();
    lat.mean_ms = window.mean();
    lat.p50_ms = window.Quantile(0.50);
    lat.p95_ms = window.Quantile(0.95);
    stats.islands.push_back(std::move(lat));
  }
  return stats;
}

std::string QueryService::DumpMetrics() const {
  dawg_->monitor().ExportMetrics(metrics_);
  dawg_->sstore().ExportMetrics(metrics_);
  dawg_->shards().ExportMetrics(metrics_);
  if (core::StreamAgeOut* ageout = dawg_->stream_ageout()) {
    ageout->ExportMetrics(metrics_);
  }
  if (adaptive_ != nullptr) adaptive_->ExportMetrics(metrics_);
  if (profiler_ != nullptr) profiler_->ExportMetrics(metrics_);
  return metrics_->DumpPrometheus();
}

}  // namespace bigdawg::exec
