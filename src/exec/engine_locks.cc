#include "exec/engine_locks.h"

#include "core/catalog.h"

namespace bigdawg::exec {

uint32_t EngineLockBitFor(const std::string& engine) {
  int ordinal = core::EngineOrdinal(engine);
  return ordinal < 0 ? 0 : 1u << ordinal;
}

std::string EngineLockSetToString(uint32_t mask) {
  static const char* const kNames[kNumEngineLocks] = {
      core::kEnginePostgres, core::kEngineSciDb,  core::kEngineAccumulo,
      core::kEngineSStore,   core::kEngineTileDb, core::kEngineD4m};
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < kNumEngineLocks; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += kNames[i];
  }
  out += "}";
  return out;
}

EngineLockManager::ScopedLocks& EngineLockManager::ScopedLocks::operator=(
    ScopedLocks&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    shared_ = other.shared_;
    exclusive_ = other.exclusive_;
    other.mgr_ = nullptr;
  }
  return *this;
}

void EngineLockManager::ScopedLocks::Release() {
  if (mgr_ == nullptr) return;
  // Release in reverse acquisition order.
  for (size_t i = kNumEngineLocks; i-- > 0;) {
    uint32_t bit = 1u << i;
    if (exclusive_ & bit) {
      mgr_->locks_[i].unlock();
    } else if (shared_ & bit) {
      mgr_->locks_[i].unlock_shared();
    }
  }
  mgr_ = nullptr;
}

EngineLockManager::ScopedLocks EngineLockManager::Acquire(uint32_t shared_mask,
                                                          uint32_t exclusive_mask) {
  shared_mask &= kLockAllEngines & ~exclusive_mask;
  exclusive_mask &= kLockAllEngines;
  for (size_t i = 0; i < kNumEngineLocks; ++i) {
    uint32_t bit = 1u << i;
    if (exclusive_mask & bit) {
      locks_[i].lock();
    } else if (shared_mask & bit) {
      locks_[i].lock_shared();
    }
  }
  return ScopedLocks(this, shared_mask, exclusive_mask);
}

}  // namespace bigdawg::exec
