#ifndef BIGDAWG_EXEC_ADMIN_ENDPOINTS_H_
#define BIGDAWG_EXEC_ADMIN_ENDPOINTS_H_

#include <memory>

#include "common/result.h"
#include "core/bigdawg.h"
#include "exec/query_service.h"
#include "obs/admin_server.h"

namespace bigdawg::exec {

/// Registers the polystore's admin surface on `server` (call before
/// Start()):
///
///   GET /metrics      Prometheus text exposition — byte-identical to
///                     service->DumpMetrics() at the same instant
///   GET /healthz      liveness: always 200
///   GET /readyz       readiness: 200 when every engine is serving, 503
///                     while any engine is advisory-down or its breaker
///                     is open; the body lists per-engine health and
///                     breaker state either way
///   GET /traces       the tracer's retained span trees (DumpSpanTree,
///                     oldest first); notes when tracing is disabled
///   GET /queries/slow the slow-query log (SlowQueryLog::Render)
///   GET /cache        the cast-result cache: a totals line (enabled,
///                     bytes/budget, entries, hit/miss/coalesced/eviction
///                     counts) then one line per entry — key (object@
///                     version#instance->target), bytes, hits, age — in
///                     LRU order, most recently used first
///
/// `service` and `dawg` must outlive the server.
void RegisterAdminEndpoints(obs::AdminServer* server, QueryService* service,
                            core::BigDawg* dawg);

/// Convenience: constructs a server with `config`, registers the admin
/// endpoints, and starts it. Port 0 (the default) binds an ephemeral
/// port, readable via the returned server's port().
Result<std::unique_ptr<obs::AdminServer>> StartAdminServer(
    QueryService* service, core::BigDawg* dawg,
    obs::AdminServerConfig config = {});

}  // namespace bigdawg::exec

#endif  // BIGDAWG_EXEC_ADMIN_ENDPOINTS_H_
