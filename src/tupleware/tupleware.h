#ifndef BIGDAWG_TUPLEWARE_TUPLEWARE_H_
#define BIGDAWG_TUPLEWARE_TUPLEWARE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace bigdawg::tupleware {

/// \brief UDF statistics Tupleware feeds its optimizer (predicted cost per
/// record and selectivity). In this reproduction they drive executor
/// choice and are reported by benchmarks.
struct UdfStats {
  double predicted_cycles_per_record = 1.0;
  double selectivity = 1.0;  // for filters: fraction of records kept
};

// ---------------------------------------------------------------------------
// Interpreted execution (the "standard Hadoop codeline" stand-in).
//
// Each operator is a virtual object processing boxed Values one record at a
// time and materializing its full output before the next stage runs —
// exactly the per-record interpretation + materialization overhead that
// Tupleware's compilation removes.
// ---------------------------------------------------------------------------

/// \brief A dynamically-dispatched dataflow operator over boxed records.
class InterpretedOp {
 public:
  virtual ~InterpretedOp() = default;
  /// Materializes the full output for `input`.
  virtual Result<std::vector<Value>> Execute(const std::vector<Value>& input) = 0;
  virtual std::string name() const = 0;
};

/// \brief map(f): one boxed output per boxed input.
class InterpretedMap final : public InterpretedOp {
 public:
  explicit InterpretedMap(std::function<Value(const Value&)> fn)
      : fn_(std::move(fn)) {}
  Result<std::vector<Value>> Execute(const std::vector<Value>& input) override;
  std::string name() const override { return "map"; }

 private:
  std::function<Value(const Value&)> fn_;
};

/// \brief filter(p): keeps records satisfying the predicate.
class InterpretedFilter final : public InterpretedOp {
 public:
  explicit InterpretedFilter(std::function<bool(const Value&)> pred)
      : pred_(std::move(pred)) {}
  Result<std::vector<Value>> Execute(const std::vector<Value>& input) override;
  std::string name() const override { return "filter"; }

 private:
  std::function<bool(const Value&)> pred_;
};

/// \brief A map-reduce style job executed operator-by-operator with
/// materialization between stages.
class InterpretedJob {
 public:
  InterpretedJob& Map(std::function<Value(const Value&)> fn);
  InterpretedJob& Filter(std::function<bool(const Value&)> pred);

  /// Runs the operator chain, then folds with `reduce` from `init`.
  Result<double> Reduce(const std::vector<Value>& input, double init,
                        const std::function<double(double, const Value&)>& reduce) const;

  /// Runs the operator chain and returns the materialized records.
  Result<std::vector<Value>> Collect(const std::vector<Value>& input) const;

  size_t num_stages() const { return ops_.size(); }

 private:
  std::vector<std::shared_ptr<InterpretedOp>> ops_;
};

// ---------------------------------------------------------------------------
// Compiled execution.
//
// The pipeline is assembled from template parameters, so the compiler
// inlines every UDF into a single fused loop over unboxed doubles: no
// virtual dispatch, no Value boxing, no intermediate materialization. This
// is the mechanism behind the paper's ~two-orders-of-magnitude claim.
// ---------------------------------------------------------------------------

/// \brief Fused map -> filter -> reduce over a dense double vector.
///
/// `map_fn(double)->double`, `filter_fn(double)->bool`, and
/// `reduce_fn(double acc, double v)->double` must be inlineable callables
/// (lambdas / function objects, not std::function).
template <typename MapFn, typename FilterFn, typename ReduceFn>
double CompiledMapFilterReduce(const std::vector<double>& input, MapFn map_fn,
                               FilterFn filter_fn, double init,
                               ReduceFn reduce_fn) {
  double acc = init;
  for (double v : input) {
    double mapped = map_fn(v);
    if (filter_fn(mapped)) acc = reduce_fn(acc, mapped);
  }
  return acc;
}

/// \brief Fused map -> filter producing a dense output vector.
template <typename MapFn, typename FilterFn>
std::vector<double> CompiledMapFilter(const std::vector<double>& input,
                                      MapFn map_fn, FilterFn filter_fn) {
  std::vector<double> out;
  out.reserve(input.size());
  for (double v : input) {
    double mapped = map_fn(v);
    if (filter_fn(mapped)) out.push_back(mapped);
  }
  return out;
}

/// \brief Chooses between executors given UDF statistics: cheap UDFs on
/// large inputs are compilation-bound wins; expensive UDFs amortize
/// interpretation overhead (diminishing advantage). Returns true when the
/// compiled path is predicted to win by at least `threshold`x.
bool ShouldCompile(const UdfStats& stats, size_t input_size, double threshold = 2.0);

/// \brief Boxes a double vector into Values (to feed the interpreted path
/// with identical data).
std::vector<Value> BoxDoubles(const std::vector<double>& input);

}  // namespace bigdawg::tupleware

#endif  // BIGDAWG_TUPLEWARE_TUPLEWARE_H_
