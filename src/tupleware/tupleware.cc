#include "tupleware/tupleware.h"

#include "common/macros.h"

namespace bigdawg::tupleware {

Result<std::vector<Value>> InterpretedMap::Execute(const std::vector<Value>& input) {
  std::vector<Value> out;
  out.reserve(input.size());
  for (const Value& v : input) out.push_back(fn_(v));
  return out;
}

Result<std::vector<Value>> InterpretedFilter::Execute(
    const std::vector<Value>& input) {
  std::vector<Value> out;
  for (const Value& v : input) {
    if (pred_(v)) out.push_back(v);
  }
  return out;
}

InterpretedJob& InterpretedJob::Map(std::function<Value(const Value&)> fn) {
  ops_.push_back(std::make_shared<InterpretedMap>(std::move(fn)));
  return *this;
}

InterpretedJob& InterpretedJob::Filter(std::function<bool(const Value&)> pred) {
  ops_.push_back(std::make_shared<InterpretedFilter>(std::move(pred)));
  return *this;
}

Result<std::vector<Value>> InterpretedJob::Collect(
    const std::vector<Value>& input) const {
  std::vector<Value> current = input;
  for (const auto& op : ops_) {
    BIGDAWG_ASSIGN_OR_RETURN(current, op->Execute(current));
  }
  return current;
}

Result<double> InterpretedJob::Reduce(
    const std::vector<Value>& input, double init,
    const std::function<double(double, const Value&)>& reduce) const {
  BIGDAWG_ASSIGN_OR_RETURN(std::vector<Value> current, Collect(input));
  double acc = init;
  for (const Value& v : current) acc = reduce(acc, v);
  return acc;
}

bool ShouldCompile(const UdfStats& stats, size_t input_size, double threshold) {
  // Model: interpretation adds ~kInterpOverheadCycles per record per stage;
  // compiled execution adds ~0. The advantage ratio shrinks as the UDF's
  // own cost grows.
  constexpr double kInterpOverheadCycles = 60.0;
  if (input_size == 0) return false;
  double interpreted = stats.predicted_cycles_per_record + kInterpOverheadCycles;
  double compiled = stats.predicted_cycles_per_record;
  if (compiled <= 0) return true;
  return interpreted / compiled >= threshold;
}

std::vector<Value> BoxDoubles(const std::vector<double>& input) {
  std::vector<Value> out;
  out.reserve(input.size());
  for (double v : input) out.emplace_back(v);
  return out;
}

}  // namespace bigdawg::tupleware
