#ifndef BIGDAWG_OBS_SLOW_QUERY_LOG_H_
#define BIGDAWG_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace bigdawg::obs {

/// \brief One query that crossed the slow threshold: enough structure to
/// answer "what was slow, how slow, and why" without re-running it.
struct SlowQueryEntry {
  int64_t query_id = -1;
  int64_t session = -1;  // -1 = no session
  std::string query;
  std::string island;
  std::string status;  // StatusCodeToString of the outcome
  double latency_ms = 0;
  int64_t attempts = 1;
  int64_t failovers = 0;
  /// The query's retained trace id (fetch the full span tree via
  /// /traces?id=...); -1 when the query was not traced.
  int64_t trace_id = -1;

  /// Deterministic one-line rendering (used by the admin endpoint).
  std::string ToLine() const;
};

/// \brief Bounded ring of recent slow queries.
///
/// The query service records every finished query whose end-to-end
/// latency meets the threshold; the admin endpoint (and tests) drain or
/// snapshot the ring. Memory is capped at `capacity` entries no matter
/// how much traffic crosses the threshold. Internally synchronized —
/// recorded from worker threads, read from the admin server's.
class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 128;
  static constexpr double kDefaultThresholdMs = 100.0;

  /// `threshold_ms` < 0 reads BIGDAWG_SLOW_MS from the environment,
  /// falling back to kDefaultThresholdMs when unset or unparsable. A
  /// threshold of 0 logs every query (demos and tests).
  explicit SlowQueryLog(double threshold_ms = -1,
                        size_t capacity = kDefaultCapacity);

  double threshold_ms() const { return threshold_ms_; }
  void set_threshold_ms(double ms) { threshold_ms_ = ms; }
  size_t capacity() const { return capacity_; }

  /// True when a query with this latency belongs in the log.
  bool ShouldLog(double latency_ms) const { return latency_ms >= threshold_ms_; }

  void Record(SlowQueryEntry entry);

  /// Snapshot of retained entries, oldest first.
  std::vector<SlowQueryEntry> Entries() const;
  /// Moves the retained entries out, leaving the ring empty.
  std::vector<SlowQueryEntry> Drain();

  /// Entries ever recorded (including those the ring has dropped).
  int64_t total_recorded() const;

  /// Deterministic multi-line rendering: a header (threshold, retained
  /// vs total counts) plus one ToLine() per entry, oldest first.
  std::string Render() const;

 private:
  double threshold_ms_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> ring_;
  int64_t total_ = 0;
};

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_SLOW_QUERY_LOG_H_
