#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace bigdawg::obs {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double d) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + d,
                                        std::memory_order_relaxed)) {
  }
}

// Family name = series name up to the label block, e.g.
// `bigdawg_queries_total{outcome="x"}` -> `bigdawg_queries_total`.
std::string FamilyOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Integral values print without a decimal point so counters read
// naturally; everything else gets shortest-ish %g.
std::string FormatValue(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Derive a series name with an extra label merged into the existing label
// block: (`fam{a="b"}`, `le`, `5`) -> `fam_bucket{a="b",le="5"}`.
std::string SuffixedSeries(const std::string& name, const std::string& suffix,
                           const std::string& label_key,
                           const std::string& label_value) {
  const size_t brace = name.find('{');
  std::string out;
  if (brace == std::string::npos) {
    out = name + suffix;
    if (!label_key.empty()) {
      out += "{" + label_key + "=\"" + label_value + "\"}";
    }
    return out;
  }
  out = name.substr(0, brace) + suffix;
  // Existing labels minus the closing brace.
  std::string labels = name.substr(brace, name.size() - brace - 1);
  out += labels;
  if (!label_key.empty()) {
    out += "," + label_key + "=\"" + label_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string SeriesName(
    const std::string& family,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return family;
  std::string out = family + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  out += "}";
  return out;
}

void Gauge::Add(double d) { AtomicAddDouble(&value_, d); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1) {}

void Histogram::Observe(double v, int64_t trace_id) {
  // First bucket whose upper bound satisfies v <= bound; past-the-end is
  // the +Inf overflow bucket.
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  if (trace_id >= 0) {
    exemplars_[idx].value.store(v, std::memory_order_relaxed);
    exemplars_[idx].trace_id.store(trace_id, std::memory_order_relaxed);
  }
}

SampleWindow::SampleWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SampleWindow::Record(double v) {
  ++count_;
  total_ += v;
  if (ring_.size() < capacity_) {
    ring_.push_back(v);
  } else {
    ring_[next_] = v;
    next_ = (next_ + 1) % capacity_;
  }
}

double SampleWindow::Quantile(double q) const {
  if (ring_.empty()) return 0.0;
  std::vector<double> sorted = ring_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const size_t idx = static_cast<size_t>(clamped * (sorted.size() - 1));
  return sorted[idx];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::DumpPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;

  // Series are grouped by family before emission so each family gets
  // exactly one # TYPE line with all of its series contiguous — the
  // exposition format's contract, which byte-sorted map iteration alone
  // cannot guarantee (a bare `fam` series and `fam{...}` series can sort
  // around an unrelated `famx` family).
  auto emit_section = [&out](const auto& metrics, const char* type,
                             const auto& emit_series) {
    std::set<std::string> emitted;
    for (const auto& [name, metric] : metrics) {
      const std::string family = FamilyOf(name);
      if (!emitted.insert(family).second) continue;
      out += "# TYPE " + family + " " + type + "\n";
      for (const auto& [series, series_metric] : metrics) {
        if (FamilyOf(series) != family) continue;
        emit_series(series, *series_metric);
      }
    }
  };

  emit_section(counters_, "counter",
               [&out](const std::string& name, const Counter& counter) {
                 out += name + " " +
                        FormatValue(static_cast<double>(counter.Value())) + "\n";
               });
  emit_section(gauges_, "gauge",
               [&out](const std::string& name, const Gauge& gauge) {
                 out += name + " " + FormatValue(gauge.Value()) + "\n";
               });
  emit_section(
      histograms_, "histogram",
      [&out](const std::string& name, const Histogram& hist) {
        // Exemplar suffix for bucket `i`, OpenMetrics-style; "" when the
        // bucket never saw an exemplar-carrying sample, keeping the
        // exposition byte-identical to the pre-exemplar format.
        auto exemplar = [&hist](size_t i) -> std::string {
          const int64_t trace_id = hist.BucketExemplarTrace(i);
          if (trace_id < 0) return "";
          return " # {trace_id=\"" + std::to_string(trace_id) + "\"} " +
                 FormatValue(hist.BucketExemplarValue(i));
        };
        int64_t cumulative = 0;
        for (size_t i = 0; i < hist.bounds().size(); ++i) {
          cumulative += hist.BucketCount(i);
          out += SuffixedSeries(name, "_bucket", "le",
                                FormatValue(hist.bounds()[i])) +
                 " " + FormatValue(static_cast<double>(cumulative)) +
                 exemplar(i) + "\n";
        }
        cumulative += hist.BucketCount(hist.bounds().size());
        out += SuffixedSeries(name, "_bucket", "le", "+Inf") + " " +
               FormatValue(static_cast<double>(cumulative)) +
               exemplar(hist.bounds().size()) + "\n";
        out += SuffixedSeries(name, "_sum", "", "") + " " +
               FormatValue(hist.Sum()) + "\n";
        // _count is emitted from the same cumulative tally as the +Inf
        // bucket, not the separate count_ atomic: under concurrent
        // Observe() calls the two can transiently disagree, and the
        // exposition format requires _count == the +Inf bucket.
        out += SuffixedSeries(name, "_count", "", "") + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
      });
  return out;
}

#ifndef BIGDAWG_VERSION
#define BIGDAWG_VERSION "0.9.0-dev"
#endif
#ifndef BIGDAWG_GIT_SHA
#define BIGDAWG_GIT_SHA "unknown"
#endif
#ifndef BIGDAWG_BUILD_TYPE
#define BIGDAWG_BUILD_TYPE "unspecified"
#endif

void RegisterBuildInfo(MetricsRegistry* registry) {
  registry
      ->GetGauge(SeriesName("bigdawg_build_info",
                            {{"version", BIGDAWG_VERSION},
                             {"git_sha", BIGDAWG_GIT_SHA},
                             {"build_type", BIGDAWG_BUILD_TYPE}}))
      ->Set(1.0);
}

}  // namespace bigdawg::obs
