#ifndef BIGDAWG_OBS_PROFILER_H_
#define BIGDAWG_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bigdawg::obs {

/// \brief One node of a merged flame tree: every span that ever occurred
/// at this name-path across all ingested queries of a class, folded into
/// a single aggregate.
///
/// `self_ms` is the node's wall time minus the wall time of its children
/// (clamped at zero against clock-rounding), i.e. time attributable to
/// the node itself rather than anything beneath it — the quantity that
/// makes a flame tree answer "where does the time actually go".
struct ProfileNode {
  int64_t count = 0;
  double total_ms = 0;
  double self_ms = 0;
  /// Bounded reservoir of per-occurrence durations (p50/p95).
  SampleWindow window{256};
  /// Children keyed by span name. std::map keeps rendering
  /// deterministic regardless of ingestion interleaving.
  std::map<std::string, ProfileNode> children;
};

/// \brief Resource costs attributed to one engine within a query class:
/// how many exec/shim calls it served, how much self time they took, and
/// the cast volume that moved through it.
struct EngineCost {
  int64_t execs = 0;
  double exec_self_ms = 0;
  int64_t cast_rows = 0;
  int64_t cast_bytes = 0;
  int64_t shards = 0;
};

/// \brief Everything the profiler knows about one query class (keyed by
/// the root span's `island` tag): the merged flame tree, per-engine
/// costs, and the class-level counters/latency digest.
struct ClassProfile {
  int64_t queries = 0;
  int64_t errors = 0;
  int64_t retries = 0;
  int64_t failovers = 0;
  double total_ms = 0;
  /// Self time of `exec` and `shim:*` spans — real engine work.
  double exec_self_ms = 0;
  /// Self time of `locks` + `backoff` + `breaker` spans — time the query
  /// spent coordinating rather than computing.
  double coordination_self_ms = 0;
  ProfileNode root;
  std::map<std::string, EngineCost> engines;
  /// Root (end-to-end) durations for the class p50/p95.
  SampleWindow latency{512};
};

/// \brief Always-on cross-query profiler: folds finished span trees into
/// per-class critical-path profiles.
///
/// Where a trace answers "what happened to THIS query", the profiler
/// answers "where do queries of this class spend their time in
/// aggregate". Every (sampled) completion's span tree is merged into a
/// flame tree keyed by span-name path — query -> attempt ->
/// scope/cast/exec -> shim/gather/failover — with per-node counts,
/// total/self wall-ms, and bounded p50/p95 reservoirs, plus resource
/// costs (cast rows/bytes, shard fan-out) attributed per island x engine
/// via the enclosing scope's engine tag.
///
/// Bounded by construction: node count is capped by the span-name
/// vocabulary (not by traffic), every reservoir is a fixed-size
/// SampleWindow, and class count is the island count. Ingest takes one
/// mutex and walks one already-built tree; it allocates only the first
/// time a name-path appears. The kill switch is BIGDAWG_PROFILE=0 (see
/// EnvAllows) — a disabled profiler is a null pointer in the query
/// service, leaving the hot path byte-identical to a build without the
/// feature.
///
/// The per-class self-time breakdown doubles as a placement signal:
/// CoordinationShare() tells the adaptive-placement loop when a class's
/// latency is dominated by locks/backoff/breaker waits, in which case
/// shadow timing comparisons would measure contention, not engines.
class Profiler {
 public:
  /// `sample_every` = N ingests every Nth completion (1 = all, the
  /// default; clamped to >= 1). Sampling trades profile freshness for
  /// tracing overhead on the query path, not ingest cost.
  explicit Profiler(int64_t sample_every = 1);

  /// Resolves the BIGDAWG_PROFILE environment override: unset keeps
  /// `config_enabled`, "0" forces off (kill switch), anything else
  /// forces on.
  static bool EnvAllows(bool config_enabled);

  /// True when the current completion should be traced + ingested (every
  /// `sample_every`-th call). The first call always samples, so a
  /// single-query test profiles deterministically at any rate.
  bool Sample();

  /// Folds one finished span tree into its class profile. The root's
  /// `island` tag is the class key ("unknown" when untagged).
  void Ingest(const TraceSpan& root);

  /// Completions ingested (not just sampled) so far.
  int64_t ingested() const;
  /// Class keys currently profiled, sorted.
  std::vector<std::string> Classes() const;
  /// Snapshot of one class profile; queries == 0 when never seen.
  ClassProfile Snapshot(const std::string& klass) const;

  /// Fraction of the class's total wall time spent in exec/shim self
  /// time (0 when the class is unknown or has no time recorded).
  double ExecSelfShare(const std::string& klass) const;
  /// Fraction spent coordinating (locks/backoff/breaker self time).
  double CoordinationShare(const std::string& klass) const;

  /// Deterministic rendering for /profile: per class, a header line, the
  /// flame tree (indented two spaces per depth, children name-sorted),
  /// and the per-engine cost table. `class_filter` non-empty renders
  /// only that class.
  std::string Render(const std::string& class_filter = "") const;
  /// Deterministic rendering of just the cost tables for /costs.
  std::string RenderCosts() const;

  /// Per-class totals and per-engine costs as gauges
  /// (bigdawg_profile_*). Series count is bounded by classes x engines.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  void Fold(const TraceSpan& span, ProfileNode* node,
            const std::string& engine, ClassProfile* profile);

  const int64_t sample_every_;
  std::atomic<int64_t> completions_{0};
  mutable std::mutex mu_;
  int64_t ingested_ = 0;
  std::map<std::string, ClassProfile> classes_;
};

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_PROFILER_H_
