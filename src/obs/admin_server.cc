#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace bigdawg::obs {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void SetIoTimeout(int fd, double timeout_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until the end of the header block ("\r\n\r\n"), EOF, or the size
/// cap. The admin surface is GET-only, so the body (if any) is ignored.
enum class ReadResult { kOk, kTooLarge, kError };
ReadResult ReadRequestHead(int fd, size_t max_bytes, std::string* head) {
  char buf[1024];
  while (head->find("\r\n\r\n") == std::string::npos) {
    if (head->size() >= max_bytes) return ReadResult::kTooLarge;
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return head->empty() ? ReadResult::kError : ReadResult::kOk;
    head->append(buf, static_cast<size_t>(n));
  }
  return ReadResult::kOk;
}

bool ParseRequestLine(const std::string& head, HttpRequest* request) {
  size_t eol = head.find("\r\n");
  if (eol == std::string::npos) eol = head.find('\n');
  if (eol == std::string::npos) eol = head.size();
  std::vector<std::string> parts = SplitWhitespace(head.substr(0, eol));
  if (parts.size() < 2) return false;
  request->method = parts[0];
  std::string target = parts[1];
  size_t question = target.find('?');
  if (question == std::string::npos) {
    request->path = target;
  } else {
    request->path = target.substr(0, question);
    request->query = target.substr(question + 1);
  }
  return !request->path.empty() && request->path[0] == '/';
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config) : config_(config) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status AdminServer::Start() {
  if (running()) {
    return Status::FailedPrecondition("admin server is already running");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address: " + config_.bind_address);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  if (listen(fd, 16) != 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(config_.num_workers);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminServer::Stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes the acceptor blocked in accept(); close() alone is
  // not guaranteed to on every platform.
  shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  pool_.reset();  // joins workers after in-flight requests drain
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void AdminServer::AcceptLoop() {
  for (;;) {
    int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Shutdown (or a fatal socket error) ends the server either way.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(conn);
      return;
    }
    SetIoTimeout(conn, config_.io_timeout_ms);
    pool_->Submit([this, conn] { ServeConnection(conn); });
  }
}

HttpResponse AdminServer::Dispatch(const HttpRequest& request) const {
  if (request.method != "GET") {
    return {405, "text/plain; charset=utf-8",
            "method " + request.method + " not allowed\n"};
  }
  auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    std::string body = "no route " + request.path + "\nroutes:\n";
    for (const auto& [path, handler] : routes_) body += "  " + path + "\n";
    return {404, "text/plain; charset=utf-8", body};
  }
  return it->second(request);
}

void AdminServer::ServeConnection(int fd) {
  std::string head;
  HttpResponse response;
  switch (ReadRequestHead(fd, config_.max_request_bytes, &head)) {
    case ReadResult::kError:
      close(fd);
      return;
    case ReadResult::kTooLarge:
      response = {431, "text/plain; charset=utf-8", "request too large\n"};
      break;
    case ReadResult::kOk: {
      HttpRequest request;
      if (!ParseRequestLine(head, &request)) {
        response = {400, "text/plain; charset=utf-8", "malformed request\n"};
      } else {
        response = Dispatch(request);
      }
      break;
    }
  }
  WriteAll(fd, SerializeResponse(response));
  close(fd);
}

Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& path, double timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  SetIoTimeout(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        Status::IOError("connect " + host + ":" + std::to_string(port) + ": " +
                        std::strerror(errno));
    close(fd);
    return status;
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    close(fd);
    return Status::IOError("send failed");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  // Status line: HTTP/1.1 <code> <reason>.
  size_t eol = raw.find("\r\n");
  if (eol == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::ParseError("malformed HTTP response");
  }
  std::vector<std::string> parts = SplitWhitespace(raw.substr(0, eol));
  if (parts.size() < 2) return Status::ParseError("malformed status line");
  HttpResponse response;
  response.status = std::atoi(parts[1].c_str());
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::ParseError("missing header terminator");
  }
  std::string headers = raw.substr(eol + 2, header_end - eol - 2);
  for (const std::string& line : Split(headers, '\n')) {
    std::string trimmed = Trim(line);
    if (StartsWith(ToLower(trimmed), "content-type:")) {
      response.content_type = Trim(trimmed.substr(std::strlen("content-type:")));
    }
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace bigdawg::obs
