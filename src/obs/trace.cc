#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>

namespace bigdawg::obs {

const std::string* TraceSpan::FindTag(const std::string& key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

const TraceSpan* TraceSpan::FindChild(const std::string& child_name) const {
  for (const TraceSpan& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

namespace {

void DumpSpan(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %.3fms +%.3fms", span.start_ms,
                span.duration_ms);
  out->append(buf);
  for (const auto& [k, v] : span.tags) {
    out->append(" ");
    out->append(k);
    out->append("=");
    out->append(v);
  }
  out->append("\n");
  for (const TraceSpan& child : span.children) {
    DumpSpan(child, depth + 1, out);
  }
}

}  // namespace

std::string DumpSpanTree(const TraceSpan& root) {
  std::string out;
  DumpSpan(root, 0, &out);
  return out;
}

Trace::Trace(const Clock* clock, std::string root_name) : clock_(clock) {
  Rec root;
  root.name = std::move(root_name);
  root.start = clock_->Now();
  recs_.push_back(std::move(root));
  stack_.push_back(0);
}

int64_t Trace::StartSpan(std::string name) {
  Rec rec;
  rec.name = std::move(name);
  rec.start = clock_->Now();
  rec.parent = stack_.empty() ? 0 : stack_.back();
  const int64_t id = static_cast<int64_t>(recs_.size());
  recs_.push_back(std::move(rec));
  stack_.push_back(id);
  return id;
}

void Trace::EndSpan(int64_t id) {
  if (id < 0 || id >= static_cast<int64_t>(recs_.size())) return;
  Rec& rec = recs_[static_cast<size_t>(id)];
  if (!rec.open) return;
  rec.end = clock_->Now();
  rec.open = false;
  // Mismatched guards can only happen via early returns that unwind in
  // LIFO order, so popping through `id` keeps the stack consistent.
  while (!stack_.empty()) {
    const int64_t top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
}

void Trace::Tag(int64_t id, std::string key, std::string value) {
  if (id < 0 || id >= static_cast<int64_t>(recs_.size())) return;
  recs_[static_cast<size_t>(id)].tags.emplace_back(std::move(key),
                                                   std::move(value));
}

TraceSpan Trace::Finish() && {
  const Clock::TimePoint now = clock_->Now();
  for (Rec& rec : recs_) {
    if (rec.open) {
      rec.end = now;
      rec.open = false;
    }
  }
  const Clock::TimePoint origin = recs_[0].start;

  // Children were appended in creation order and every parent index is
  // smaller than its child's, so a single forward grouping pass suffices.
  std::vector<std::vector<int64_t>> children_of(recs_.size());
  for (size_t i = 1; i < recs_.size(); ++i) {
    children_of[static_cast<size_t>(recs_[i].parent)].push_back(
        static_cast<int64_t>(i));
  }

  struct Builder {
    std::vector<Rec>* recs;
    std::vector<std::vector<int64_t>>* children_of;
    Clock::TimePoint origin;

    TraceSpan Build(int64_t id) const {
      Rec& rec = (*recs)[static_cast<size_t>(id)];
      TraceSpan span;
      span.name = std::move(rec.name);
      span.start_ms = Clock::ToMillis(rec.start - origin);
      span.duration_ms = Clock::ToMillis(rec.end - rec.start);
      span.tags = std::move(rec.tags);
      for (int64_t child : (*children_of)[static_cast<size_t>(id)]) {
        span.children.push_back(Build(child));
      }
      return span;
    }
  };
  return Builder{&recs_, &children_of, origin}.Build(0);
}

namespace {

double SlowThresholdFromEnv() {
  const char* env = std::getenv("BIGDAWG_SLOW_MS");
  if (env == nullptr || env[0] == '\0') return 100.0;
  char* end = nullptr;
  double ms = std::strtod(env, &end);
  if (end == env || ms < 0) return 100.0;
  return ms;
}

}  // namespace

Tracer::Tracer() : slow_threshold_ms_(SlowThresholdFromEnv()) {
  const char* env = std::getenv("BIGDAWG_TRACE");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

double Tracer::slow_threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_threshold_ms_;
}

void Tracer::SetSlowThresholdMs(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_ms_ = ms;
}

int64_t Tracer::Record(TraceSpan root) {
  std::lock_guard<std::mutex> lock(mu_);
  RetainedTrace retained;
  const int64_t id = next_trace_id_++;
  retained.trace_id = id;
  const std::string* status = root.FindTag("status");
  retained.important = root.duration_ms >= slow_threshold_ms_ ||
                       (status != nullptr && *status != "OK");
  retained.root = std::move(root);
  finished_.push_back(std::move(retained));
  if (finished_.size() > kMaxFinished) {
    // Tail retention: age out the oldest trace nobody would page through
    // — fast and successful — before touching slow or error traces. (A
    // fast-OK newcomer into a ring full of important traces is itself the
    // victim.) When every retained trace is important, plain FIFO keeps
    // memory capped.
    auto victim = finished_.begin();
    for (auto it = finished_.begin(); it != finished_.end(); ++it) {
      if (!it->important) {
        victim = it;
        break;
      }
    }
    finished_.erase(victim);
  }
  return id;
}

std::vector<TraceSpan> Tracer::FinishedTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(finished_.size());
  for (const RetainedTrace& retained : finished_) {
    out.push_back(retained.root);
  }
  return out;
}

std::vector<RetainedTrace> Tracer::Retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {finished_.begin(), finished_.end()};
}

Result<RetainedTrace> Tracer::Find(int64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RetainedTrace& retained : finished_) {
    if (retained.trace_id == trace_id) return retained;
  }
  return Status::NotFound("trace " + std::to_string(trace_id) +
                          " is not retained (never recorded, or evicted)");
}

std::vector<TraceSpan> Tracer::DrainFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(finished_.size());
  for (RetainedTrace& retained : finished_) {
    out.push_back(std::move(retained.root));
  }
  finished_.clear();
  return out;
}

}  // namespace bigdawg::obs
