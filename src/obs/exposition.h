#ifndef BIGDAWG_OBS_EXPOSITION_H_
#define BIGDAWG_OBS_EXPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace bigdawg::obs {

/// \brief One sample line of a Prometheus text exposition.
struct ExpositionSeries {
  /// Full metric name as written (family + histogram suffix, if any).
  std::string name;
  /// "", "_bucket", "_sum", or "_count" relative to the owning family.
  std::string suffix;
  /// Parsed (unescaped) label key/value pairs, in document order.
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;

  /// OpenMetrics exemplar (`... # {trace_id="7"} 3.2`), when present.
  bool has_exemplar = false;
  std::vector<std::pair<std::string, std::string>> exemplar_labels;
  double exemplar_value = 0;

  /// First label with `key`, or null.
  const std::string* Label(const std::string& key) const;
  /// The label block minus any `le` label — the identity that groups one
  /// histogram's buckets with its _sum/_count.
  std::string SignatureWithoutLe() const;
};

/// \brief A `# TYPE` family and its samples.
struct ExpositionFamily {
  std::string name;
  std::string type;  // counter | gauge | histogram
  std::vector<ExpositionSeries> series;
};

struct Exposition {
  std::vector<ExpositionFamily> families;

  const ExpositionFamily* Find(const std::string& name) const;
  size_t TotalSeries() const;
};

/// \brief Parses and validates the Prometheus text exposition format as
/// DumpPrometheus emits it. This is the conformance oracle behind the
/// metrics tests and the admin /metrics smoke checks; it rejects:
///
///  * text not terminated by a newline, or unparsable sample lines;
///  * samples appearing before any `# TYPE`, or whose name does not
///    belong to the current family (histogram samples may carry the
///    `_bucket`/`_sum`/`_count` suffixes);
///  * duplicate `# TYPE` lines for one family (series of a family must
///    be contiguous);
///  * malformed label blocks — unterminated values, bad escapes (only
///    \\, \", \n are legal), missing '=' or ',';
///  * histogram families missing a `+Inf` bucket, with non-monotonic
///    cumulative buckets, missing `_sum`, or whose `_count` differs from
///    the `+Inf` bucket value;
///  * malformed exemplars — an ` # ` annotation not followed by a label
///    block and a value.
Result<Exposition> ParseExposition(const std::string& text);

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_EXPOSITION_H_
