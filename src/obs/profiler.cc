#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace bigdawg::obs {

namespace {

// %.3f ms, matching DumpSpanTree so /profile and /traces read alike.
std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string FormatShare(double share) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", share);
  return buf;
}

int64_t TagAsInt(const TraceSpan& span, const char* key) {
  const std::string* value = span.FindTag(key);
  if (value == nullptr) return 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  return end == value->c_str() ? 0 : static_cast<int64_t>(parsed);
}

bool IsShim(const std::string& name) {
  return name.compare(0, 5, "shim:") == 0;
}

bool IsCoordination(const std::string& name) {
  return name == "locks" || name == "backoff" || name == "breaker";
}

void RenderNode(const std::string& name, const ProfileNode& node, int depth,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += name + " count=" + std::to_string(node.count) +
          " total=" + FormatMs(node.total_ms) + "ms self=" +
          FormatMs(node.self_ms) + "ms p50=" + FormatMs(node.window.Quantile(0.5)) +
          "ms p95=" + FormatMs(node.window.Quantile(0.95)) + "ms\n";
  for (const auto& [child_name, child] : node.children) {
    RenderNode(child_name, child, depth + 1, out);
  }
}

void RenderCostTable(const ClassProfile& profile, std::string* out) {
  for (const auto& [engine, cost] : profile.engines) {
    *out += "  engine " + engine + " execs=" + std::to_string(cost.execs) +
            " exec_self=" + FormatMs(cost.exec_self_ms) +
            "ms cast_rows=" + std::to_string(cost.cast_rows) +
            " cast_bytes=" + std::to_string(cost.cast_bytes) +
            " shards=" + std::to_string(cost.shards) + "\n";
  }
}

std::string ClassHeader(const std::string& klass, const ClassProfile& p) {
  double exec_share = 0, coord_share = 0;
  if (p.total_ms > 0) {
    exec_share = p.exec_self_ms / p.total_ms;
    coord_share = p.coordination_self_ms / p.total_ms;
  }
  return "class " + klass + " queries=" + std::to_string(p.queries) +
         " errors=" + std::to_string(p.errors) +
         " retries=" + std::to_string(p.retries) +
         " failovers=" + std::to_string(p.failovers) +
         " total=" + FormatMs(p.total_ms) +
         "ms p50=" + FormatMs(p.latency.Quantile(0.5)) +
         "ms p95=" + FormatMs(p.latency.Quantile(0.95)) +
         "ms exec_share=" + FormatShare(exec_share) +
         " coord_share=" + FormatShare(coord_share) + "\n";
}

}  // namespace

Profiler::Profiler(int64_t sample_every)
    : sample_every_(std::max<int64_t>(1, sample_every)) {}

bool Profiler::EnvAllows(bool config_enabled) {
  const char* v = std::getenv("BIGDAWG_PROFILE");
  if (v == nullptr || *v == '\0') return config_enabled;
  return std::string(v) != "0";
}

bool Profiler::Sample() {
  const int64_t n = completions_.fetch_add(1, std::memory_order_relaxed);
  return n % sample_every_ == 0;
}

void Profiler::Fold(const TraceSpan& span, ProfileNode* node,
                    const std::string& engine, ClassProfile* profile) {
  ++node->count;
  node->total_ms += span.duration_ms;
  node->window.Record(span.duration_ms);

  double children_ms = 0;
  for (const TraceSpan& child : span.children) {
    children_ms += child.duration_ms;
  }
  // Clock rounding (or spans closed out of order) can make children sum
  // past the parent; self time never goes negative.
  const double self_ms = std::max(0.0, span.duration_ms - children_ms);
  node->self_ms += self_ms;

  // Engine context: a scope pins the engine for everything beneath it;
  // shim spans know their own engine (failover may have rerouted them).
  std::string scope_engine = engine;
  if (span.name == "scope" || IsShim(span.name)) {
    const std::string* tagged = span.FindTag("engine");
    if (tagged != nullptr) scope_engine = *tagged;
  }

  if (span.name == "exec" || IsShim(span.name)) {
    profile->exec_self_ms += self_ms;
    if (!scope_engine.empty()) {
      EngineCost& cost = profile->engines[scope_engine];
      ++cost.execs;
      cost.exec_self_ms += self_ms;
    }
  } else if (IsCoordination(span.name)) {
    profile->coordination_self_ms += self_ms;
  } else if (span.name == "cast" && !scope_engine.empty()) {
    EngineCost& cost = profile->engines[scope_engine];
    cost.cast_rows += TagAsInt(span, "rows");
    cost.cast_bytes += TagAsInt(span, "bytes");
  }
  if (span.name.compare(0, 8, "scatter:") == 0 && !scope_engine.empty()) {
    profile->engines[scope_engine].shards += TagAsInt(span, "shards");
  }

  for (const TraceSpan& child : span.children) {
    Fold(child, &node->children[child.name], scope_engine, profile);
  }
}

void Profiler::Ingest(const TraceSpan& root) {
  const std::string* island = root.FindTag("island");
  const std::string klass = island != nullptr ? *island : "unknown";
  const std::string* status = root.FindTag("status");

  std::lock_guard<std::mutex> lock(mu_);
  ++ingested_;
  ClassProfile& profile = classes_[klass];
  ++profile.queries;
  if (status != nullptr && *status != "OK") ++profile.errors;
  profile.retries += std::max<int64_t>(0, TagAsInt(root, "attempts") - 1);
  profile.failovers += TagAsInt(root, "failovers");
  profile.total_ms += root.duration_ms;
  profile.latency.Record(root.duration_ms);
  Fold(root, &profile.root, "", &profile);
}

int64_t Profiler::ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ingested_;
}

std::vector<std::string> Profiler::Classes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(classes_.size());
  for (const auto& [klass, profile] : classes_) out.push_back(klass);
  return out;
}

ClassProfile Profiler::Snapshot(const std::string& klass) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(klass);
  return it == classes_.end() ? ClassProfile{} : it->second;
}

double Profiler::ExecSelfShare(const std::string& klass) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(klass);
  if (it == classes_.end() || it->second.total_ms <= 0) return 0;
  return it->second.exec_self_ms / it->second.total_ms;
}

double Profiler::CoordinationShare(const std::string& klass) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(klass);
  if (it == classes_.end() || it->second.total_ms <= 0) return 0;
  return it->second.coordination_self_ms / it->second.total_ms;
}

std::string Profiler::Render(const std::string& class_filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "profile: classes=" + std::to_string(classes_.size()) +
                    " ingested=" + std::to_string(ingested_) + "\n";
  for (const auto& [klass, profile] : classes_) {
    if (!class_filter.empty() && klass != class_filter) continue;
    out += ClassHeader(klass, profile);
    RenderNode("query", profile.root, 1, &out);
    RenderCostTable(profile, &out);
  }
  return out;
}

std::string Profiler::RenderCosts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "costs: classes=" + std::to_string(classes_.size()) +
                    " ingested=" + std::to_string(ingested_) + "\n";
  for (const auto& [klass, profile] : classes_) {
    out += ClassHeader(klass, profile);
    RenderCostTable(profile, &out);
  }
  return out;
}

void Profiler::ExportMetrics(MetricsRegistry* registry) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [klass, profile] : classes_) {
    auto gauge = [&](const char* family, double value) {
      registry->GetGauge(SeriesName(family, {{"class", klass}}))->Set(value);
    };
    gauge("bigdawg_profile_queries", static_cast<double>(profile.queries));
    gauge("bigdawg_profile_total_ms", profile.total_ms);
    gauge("bigdawg_profile_exec_self_ms", profile.exec_self_ms);
    gauge("bigdawg_profile_coordination_self_ms",
          profile.coordination_self_ms);
    for (const auto& [engine, cost] : profile.engines) {
      auto engine_gauge = [&](const char* family, double value) {
        registry
            ->GetGauge(SeriesName(family,
                                  {{"class", klass}, {"engine", engine}}))
            ->Set(value);
      };
      engine_gauge("bigdawg_profile_engine_exec_self_ms", cost.exec_self_ms);
      engine_gauge("bigdawg_profile_engine_cast_rows",
                   static_cast<double>(cost.cast_rows));
      engine_gauge("bigdawg_profile_engine_cast_bytes",
                   static_cast<double>(cost.cast_bytes));
    }
  }
}

}  // namespace bigdawg::obs
