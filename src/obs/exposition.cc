#include "obs/exposition.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>

#include "common/string_util.h"

namespace bigdawg::obs {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c));
}

Status ParseLabels(const std::string& line, size_t* pos,
                   std::vector<std::pair<std::string, std::string>>* labels) {
  // *pos points at '{'.
  ++*pos;
  while (*pos < line.size() && line[*pos] != '}') {
    size_t key_begin = *pos;
    if (!IsNameStartChar(line[*pos])) {
      return Status::ParseError("bad label name in: " + line);
    }
    while (*pos < line.size() && IsNameChar(line[*pos])) ++*pos;
    std::string key = line.substr(key_begin, *pos - key_begin);
    if (*pos >= line.size() || line[*pos] != '=') {
      return Status::ParseError("expected '=' after label name in: " + line);
    }
    ++*pos;
    if (*pos >= line.size() || line[*pos] != '"') {
      return Status::ParseError("expected '\"' opening label value in: " + line);
    }
    ++*pos;
    std::string value;
    bool closed = false;
    while (*pos < line.size()) {
      char c = line[(*pos)++];
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\') {
        if (*pos >= line.size()) {
          return Status::ParseError("dangling escape in label value: " + line);
        }
        char esc = line[(*pos)++];
        if (esc == '\\') value += '\\';
        else if (esc == '"') value += '"';
        else if (esc == 'n') value += '\n';
        else return Status::ParseError(std::string("bad escape '\\") + esc +
                                       "' in label value: " + line);
      } else {
        value += c;
      }
    }
    if (!closed) {
      return Status::ParseError("unterminated label value in: " + line);
    }
    labels->emplace_back(std::move(key), std::move(value));
    if (*pos < line.size() && line[*pos] == ',') ++*pos;
  }
  if (*pos >= line.size() || line[*pos] != '}') {
    return Status::ParseError("unterminated label block in: " + line);
  }
  ++*pos;
  return Status::OK();
}

Status ParseSampleLine(const std::string& line, ExpositionSeries* series) {
  size_t pos = 0;
  if (line.empty() || !IsNameStartChar(line[0])) {
    return Status::ParseError("bad metric name in: " + line);
  }
  while (pos < line.size() && IsNameChar(line[pos])) ++pos;
  series->name = line.substr(0, pos);
  if (pos < line.size() && line[pos] == '{') {
    Status parsed = ParseLabels(line, &pos, &series->labels);
    if (!parsed.ok()) return parsed;
  }
  std::string rest = line.substr(pos);
  // An OpenMetrics exemplar rides after the value: `value # {labels} value`.
  // Split it off before the strict value parse below.
  std::string exemplar_text;
  const size_t hash = rest.find(" # ");
  if (hash != std::string::npos) {
    exemplar_text = Trim(rest.substr(hash + 3));
    rest = rest.substr(0, hash);
  }
  std::string value_text = Trim(rest);
  if (value_text.empty()) {
    return Status::ParseError("missing value in: " + line);
  }
  char* end = nullptr;
  series->value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    // Prometheus also allows +Inf/-Inf/NaN sample values; strtod on glibc
    // accepts "inf"/"nan" spellings, so only truly malformed text lands here.
    return Status::ParseError("bad sample value in: " + line);
  }
  if (hash != std::string::npos) {
    if (exemplar_text.empty() || exemplar_text[0] != '{') {
      return Status::ParseError("exemplar without label block in: " + line);
    }
    size_t epos = 0;
    Status parsed = ParseLabels(exemplar_text, &epos, &series->exemplar_labels);
    if (!parsed.ok()) return parsed;
    std::string evalue_text = Trim(exemplar_text.substr(epos));
    if (evalue_text.empty()) {
      return Status::ParseError("exemplar without value in: " + line);
    }
    end = nullptr;
    series->exemplar_value = std::strtod(evalue_text.c_str(), &end);
    if (end == evalue_text.c_str() || *end != '\0') {
      return Status::ParseError("bad exemplar value in: " + line);
    }
    series->has_exemplar = true;
  }
  return Status::OK();
}

/// Histogram-family invariants: per label-signature, cumulative buckets
/// are non-decreasing and end at +Inf, `_count` equals the +Inf bucket,
/// and `_sum` exists.
Status ValidateHistogram(const ExpositionFamily& family) {
  struct Group {
    std::vector<double> bucket_values;  // document order
    bool saw_inf = false;
    double inf_value = 0;
    bool saw_sum = false;
    bool saw_count = false;
    double count_value = 0;
  };
  std::map<std::string, Group> groups;
  for (const ExpositionSeries& series : family.series) {
    Group& group = groups[series.SignatureWithoutLe()];
    if (series.suffix == "_bucket") {
      const std::string* le = series.Label("le");
      if (le == nullptr) {
        return Status::ParseError("histogram bucket without le label: " +
                                  series.name);
      }
      if (!group.bucket_values.empty() &&
          series.value < group.bucket_values.back()) {
        return Status::ParseError("non-monotonic cumulative buckets in " +
                                  family.name);
      }
      group.bucket_values.push_back(series.value);
      if (*le == "+Inf") {
        group.saw_inf = true;
        group.inf_value = series.value;
      }
    } else if (series.suffix == "_sum") {
      group.saw_sum = true;
    } else if (series.suffix == "_count") {
      group.saw_count = true;
      group.count_value = series.value;
    } else {
      return Status::ParseError("bare sample " + series.name +
                                " in histogram family " + family.name);
    }
  }
  for (const auto& [signature, group] : groups) {
    const std::string where =
        family.name + (signature.empty() ? "" : "{" + signature + "}");
    if (!group.saw_inf) {
      return Status::ParseError("histogram " + where + " missing +Inf bucket");
    }
    if (!group.saw_sum) {
      return Status::ParseError("histogram " + where + " missing _sum");
    }
    if (!group.saw_count) {
      return Status::ParseError("histogram " + where + " missing _count");
    }
    if (group.count_value != group.inf_value) {
      return Status::ParseError("histogram " + where +
                                " _count disagrees with its +Inf bucket");
    }
  }
  return Status::OK();
}

Status ValidateFamily(const ExpositionFamily& family) {
  if (family.type == "histogram") return ValidateHistogram(family);
  for (const ExpositionSeries& series : family.series) {
    if (!series.suffix.empty()) {
      return Status::ParseError("suffixed sample " + series.name + " in " +
                                family.type + " family " + family.name);
    }
  }
  return Status::OK();
}

}  // namespace

const std::string* ExpositionSeries::Label(const std::string& key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string ExpositionSeries::SignatureWithoutLe() const {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (k == "le") continue;
    if (!out.empty()) out += ",";
    out += k + "=\"" + v + "\"";
  }
  return out;
}

const ExpositionFamily* Exposition::Find(const std::string& name) const {
  for (const ExpositionFamily& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

size_t Exposition::TotalSeries() const {
  size_t n = 0;
  for (const ExpositionFamily& family : families) n += family.series.size();
  return n;
}

Result<Exposition> ParseExposition(const std::string& text) {
  if (!text.empty() && text.back() != '\n') {
    return Status::ParseError("exposition must end with a newline");
  }
  Exposition exposition;
  std::set<std::string> seen_families;
  ExpositionFamily* current = nullptr;

  std::vector<std::string> lines = Split(text, '\n');
  if (!lines.empty()) lines.pop_back();  // the empty piece after the final \n
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::vector<std::string> parts = SplitWhitespace(line);
      if (parts.size() >= 2 && parts[1] == "TYPE") {
        if (parts.size() != 4) {
          return Status::ParseError("malformed TYPE line: " + line);
        }
        if (parts[3] != "counter" && parts[3] != "gauge" &&
            parts[3] != "histogram") {
          return Status::ParseError("unknown metric type in: " + line);
        }
        if (!seen_families.insert(parts[2]).second) {
          return Status::ParseError("duplicate TYPE for family " + parts[2] +
                                    " (series must be contiguous)");
        }
        if (current != nullptr) {
          Status validated = ValidateFamily(*current);
          if (!validated.ok()) return validated;
        }
        exposition.families.push_back({parts[2], parts[3], {}});
        current = &exposition.families.back();
      }
      continue;  // # HELP and other comments
    }
    ExpositionSeries series;
    Status parsed = ParseSampleLine(line, &series);
    if (!parsed.ok()) return parsed;
    if (current == nullptr) {
      return Status::ParseError("sample before any TYPE line: " + line);
    }
    if (series.name != current->name) {
      bool suffixed = false;
      if (current->type == "histogram" &&
          StartsWith(series.name, current->name)) {
        std::string suffix = series.name.substr(current->name.size());
        if (suffix == "_bucket" || suffix == "_sum" || suffix == "_count") {
          series.suffix = suffix;
          suffixed = true;
        }
      }
      if (!suffixed) {
        return Status::ParseError("sample " + series.name +
                                  " does not belong to family " + current->name);
      }
    }
    current->series.push_back(std::move(series));
  }
  if (current != nullptr) {
    Status validated = ValidateFamily(*current);
    if (!validated.ok()) return validated;
  }
  return exposition;
}

}  // namespace bigdawg::obs
