#include "obs/slow_query_log.h"

#include <cstdio>
#include <cstdlib>

namespace bigdawg::obs {

namespace {

double ThresholdFromEnv() {
  const char* env = std::getenv("BIGDAWG_SLOW_MS");
  if (env == nullptr || env[0] == '\0') return SlowQueryLog::kDefaultThresholdMs;
  char* end = nullptr;
  double ms = std::strtod(env, &end);
  if (end == env || ms < 0) return SlowQueryLog::kDefaultThresholdMs;
  return ms;
}

}  // namespace

std::string SlowQueryEntry::ToLine() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.3f", latency_ms);
  std::string line = "q" + std::to_string(query_id);
  line += session < 0 ? " session=-" : " session=" + std::to_string(session);
  line += " island=" + island;
  line += " status=" + status;
  line += " latency_ms=" + std::string(buf);
  line += " attempts=" + std::to_string(attempts);
  line += " failovers=" + std::to_string(failovers);
  line += trace_id < 0 ? " trace=-" : " trace=" + std::to_string(trace_id);
  line += " query=" + query;
  return line;
}

SlowQueryLog::SlowQueryLog(double threshold_ms, size_t capacity)
    : threshold_ms_(threshold_ms < 0 ? ThresholdFromEnv() : threshold_ms),
      capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(entry));
  if (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<SlowQueryEntry> SlowQueryLog::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> out(ring_.begin(), ring_.end());
  ring_.clear();
  return out;
}

int64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string SlowQueryLog::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", threshold_ms_);
  std::string out = "slow queries: threshold_ms=" + std::string(buf) +
                    " retained=" + std::to_string(ring_.size()) +
                    " total=" + std::to_string(total_) + "\n";
  for (const SlowQueryEntry& entry : ring_) {
    out += entry.ToLine();
    out += "\n";
  }
  return out;
}

}  // namespace bigdawg::obs
