#ifndef BIGDAWG_OBS_ADMIN_SERVER_H_
#define BIGDAWG_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/thread_pool.h"

namespace bigdawg::obs {

/// \brief A parsed admin request. Only the request line matters to the
/// admin surface; headers are read (to find the end of the request) and
/// discarded.
struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/metrics" (query string stripped)
  std::string query;   // raw text after '?', "" when absent
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct AdminServerConfig {
  /// TCP port to bind; 0 asks the kernel for an ephemeral port (tests),
  /// readable via port() after Start().
  uint16_t port = 0;
  /// Loopback by default: the admin surface is an operator tool, not a
  /// public API.
  std::string bind_address = "127.0.0.1";
  /// Connection-handling workers (a common::ThreadPool, created on
  /// Start). Scrapes are short, so a small pool suffices.
  size_t num_workers = 2;
  /// Request-size cap; larger requests get 431.
  size_t max_request_bytes = 8192;
  /// Per-connection socket send/receive timeout.
  double io_timeout_ms = 5000;
};

/// \brief A minimal embedded HTTP/1.1 server for the admin surface
/// (metrics scrapes, health probes, trace and slow-query dumps).
///
/// Off by default in every sense that matters: constructing one costs a
/// few maps; the listening socket, the acceptor thread, and the worker
/// pool only exist between Start() and Stop(). Requests are served off
/// the repo's existing ThreadPool; each connection handles one request
/// and closes (Connection: close), which keeps the state machine trivial
/// and is exactly how Prometheus scrapes behave.
///
/// Routing is exact-path: register handlers with Route() before Start().
/// Handlers run on pool workers, so they must be thread-safe; everything
/// the admin endpoints expose already is (metrics registry, tracer ring,
/// slow-query log, monitor).
class AdminServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit AdminServer(AdminServerConfig config = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers `handler` for exact path `path`. Call before Start();
  /// routes are immutable while the server runs.
  void Route(std::string path, Handler handler);

  /// Binds, listens, and spawns the acceptor thread + worker pool.
  /// FailedPrecondition when already running; IOError on socket failure.
  Status Start();

  /// Stops accepting, drains in-flight requests, joins every thread.
  /// Idempotent; also called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 to the kernel-assigned one); 0 when
  /// not running.
  uint16_t port() const { return port_; }

  const AdminServerConfig& config() const { return config_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  AdminServerConfig config_;
  std::map<std::string, Handler> routes_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Blocking one-shot HTTP GET against a local admin server — the scrape
/// side used by tests, examples, and the check.sh smoke pass. Parses the
/// status line and Content-Type; `body` is everything after the header
/// block.
Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& path,
                             double timeout_ms = 5000);

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_ADMIN_SERVER_H_
