#ifndef BIGDAWG_OBS_METRICS_H_
#define BIGDAWG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bigdawg::obs {

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double-quote, and newline become \\, \", and \n.
std::string EscapeLabelValue(const std::string& value);

/// Builds a series name `family{k1="v1",k2="v2"}` with every label value
/// escaped; no labels yields the bare family name. All call sites that
/// interpolate runtime strings (island names, engine names) into series
/// names go through this, so a hostile or merely unlucky label value can
/// never corrupt the exposition.
std::string SeriesName(
    const std::string& family,
    const std::vector<std::pair<std::string, std::string>>& labels);

/// \brief Monotonically increasing counter. Increment is a single relaxed
/// atomic add, safe from any thread with no lock.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Instantaneous value. Doubles, so it can carry latencies and
/// ratios as well as occupancy counts.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with cumulative-`le` semantics matching
/// the Prometheus client model. An observation is two relaxed atomic adds
/// plus a CAS loop for the sum; bucket bounds are fixed at construction so
/// the hot path never allocates or locks.
///
/// Buckets optionally carry an *exemplar*: the trace_id (and observed
/// value) of the most recent sample that landed in the bucket, emitted in
/// the OpenMetrics `# {trace_id="..."} value` form. That makes a bad p95
/// bucket in /metrics one hop from a concrete retained trace via
/// /traces?id=... — observe with a negative trace_id (or the plain
/// overload) and the bucket's exemplar is untouched, so exposition stays
/// byte-identical when tracing or profiling is off.
class Histogram {
 public:
  /// `bounds` are the inclusive bucket upper bounds, strictly increasing.
  /// A +Inf overflow bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v) { Observe(v, -1); }
  /// Observe with an exemplar: `trace_id` >= 0 stamps the sample's bucket
  /// with (trace_id, v); negative leaves the bucket's exemplar alone.
  void Observe(double v, int64_t trace_id);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Raw (non-cumulative) count of bucket `i`; `i == bounds().size()` is
  /// the +Inf overflow bucket.
  int64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// trace_id of bucket `i`'s most recent exemplar-carrying sample; -1
  /// when the bucket never saw one.
  int64_t BucketExemplarTrace(size_t i) const {
    return exemplars_[i].trace_id.load(std::memory_order_relaxed);
  }
  /// The observed value recorded with bucket `i`'s exemplar.
  double BucketExemplarValue(size_t i) const {
    return exemplars_[i].value.load(std::memory_order_relaxed);
  }

 private:
  /// Two relaxed stores: a reader racing an update may pair the new
  /// trace_id with the previous value (or vice versa). Exemplars are
  /// debugging breadcrumbs, not invariants — either pairing points at a
  /// real recent sample of the bucket, which is all they promise.
  struct Exemplar {
    std::atomic<int64_t> trace_id{-1};
    std::atomic<double> value{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> counts_;  // bounds_.size() + 1
  std::vector<Exemplar> exemplars_;           // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Bounded reservoir of recent samples plus a running count/sum:
/// mean over everything ever recorded, quantiles over the retained window.
///
/// NOT internally synchronized — callers guard it with a mutex they
/// already hold (the query service and Monitor both record under their own
/// locks). Memory is capped at `capacity` samples no matter how many
/// recordings arrive; this is the one ring-buffer implementation behind
/// every p50/p95 in the codebase.
class SampleWindow {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit SampleWindow(size_t capacity = kDefaultCapacity);

  void Record(double v);

  /// Total recordings ever (not just those still in the window).
  int64_t count() const { return count_; }
  /// Mean over every recording ever.
  double mean() const { return count_ == 0 ? 0.0 : total_ / count_; }
  /// Quantile over the retained window; 0 when empty. q in [0, 1].
  double Quantile(double q) const;

  size_t window_size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::vector<double> ring_;
  size_t next_ = 0;
  int64_t count_ = 0;
  double total_ = 0.0;
};

/// \brief Named metrics, created on first use, dumped in the Prometheus
/// text exposition format.
///
/// Registration (name -> slot) takes a mutex, but the returned pointers
/// are stable for the registry's lifetime, so call sites resolve a metric
/// once and then update it lock-free. Label sets are encoded in the name:
/// `bigdawg_queries_total{outcome="completed"}`. DumpPrometheus groups
/// series into families (the name before `{`) and emits one `# TYPE` line
/// per family.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` are the bucket upper bounds; ignored when the histogram
  /// already exists.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  std::string DumpPrometheus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Registers the `bigdawg_build_info{version,git_sha,build_type}` gauge
/// (constant 1) so every scrape identifies the binary behind it —
/// sanitizer builds included, since build_type carries the CMake build
/// type the library was compiled under. Values are baked in at compile
/// time via BIGDAWG_VERSION / BIGDAWG_GIT_SHA / BIGDAWG_BUILD_TYPE.
/// Idempotent per registry.
void RegisterBuildInfo(MetricsRegistry* registry);

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_METRICS_H_
