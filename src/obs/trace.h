#ifndef BIGDAWG_OBS_TRACE_H_
#define BIGDAWG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/clock.h"

namespace bigdawg::obs {

/// \brief One node of a finished trace: where a query execution spent its
/// time. `start_ms` is relative to the root span's start; children appear
/// in emission order; tags in insertion order.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
  std::vector<std::pair<std::string, std::string>> tags;
  std::vector<TraceSpan> children;

  /// First tag with `key`, or null.
  const std::string* FindTag(const std::string& key) const;
  /// First direct child named `name`, or null.
  const TraceSpan* FindChild(const std::string& child_name) const;
};

/// Deterministic indented rendering of a span tree — the golden-trace
/// format. One line per span: `name <start>ms +<duration>ms k=v ...`,
/// children indented two spaces per depth, all times %.3f.
std::string DumpSpanTree(const TraceSpan& root);

/// \brief Span recorder for ONE query execution.
///
/// Confined to the thread running that execution — no locking. The query
/// service creates one per traced query, threads it through
/// core::ExecContext, and finalizes it into the Tracer when the query
/// completes. StartSpan parents the new span under the innermost open
/// span, so the tree mirrors the call structure (query -> attempt ->
/// scope -> cast -> shim -> ...).
class Trace {
 public:
  Trace(const Clock* clock, std::string root_name);

  Trace(Trace&&) = default;
  Trace& operator=(Trace&&) = default;

  /// Opens a child of the innermost open span; returns its id.
  int64_t StartSpan(std::string name);
  void EndSpan(int64_t id);
  void Tag(int64_t id, std::string key, std::string value);

  int64_t root() const { return 0; }
  const Clock* clock() const { return clock_; }

  /// Ends every still-open span at Now() and assembles the tree.
  /// Consumes the trace: call as std::move(trace).Finish().
  TraceSpan Finish() &&;

 private:
  struct Rec {
    std::string name;
    Clock::TimePoint start;
    Clock::TimePoint end;
    int64_t parent = -1;
    bool open = true;
    std::vector<std::pair<std::string, std::string>> tags;
  };

  const Clock* clock_;
  std::vector<Rec> recs_;
  std::vector<int64_t> stack_;  // open-span ids, innermost last
};

/// \brief RAII span that no-ops entirely — no allocation, no clock read —
/// when constructed with a null trace. Emission sites pass `ctx->trace`
/// unconditionally and guard only their tag-value construction, which is
/// how tracing stays near-free when disabled.
class SpanGuard {
 public:
  SpanGuard(Trace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->StartSpan(name);
  }
  ~SpanGuard() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  void Tag(const char* key, const std::string& value) {
    if (trace_ != nullptr) trace_->Tag(id_, key, value);
  }

 private:
  Trace* trace_;
  int64_t id_ = -1;
};

/// \brief One retained trace: its process-unique id (the link target of
/// /traces?id=..., histogram exemplars, and slow-query-log entries) plus
/// whether tail-based retention considers it worth keeping past FIFO age
/// (slow over the threshold, or finished non-OK).
struct RetainedTrace {
  int64_t trace_id = -1;
  bool important = false;
  TraceSpan root;
};

/// \brief Process-level sink of finished traces (bounded ring with
/// tail-based retention).
///
/// Disabled by default: enabled() is one relaxed atomic load and nothing
/// else happens on the query path until a test, an operator, or the
/// BIGDAWG_TRACE=1 environment variable turns it on. The Monitor consumes
/// FinishedTraces()/DrainFinished() to refine engine/query-class
/// affinities from real span timings.
///
/// Every recorded trace is stamped with a monotonically increasing
/// trace_id. Retention is FIFO with a tail bias: past kMaxFinished the
/// oldest *uninteresting* trace is evicted first, so slow
/// (root duration >= slow_threshold_ms) and error (root `status` tag not
/// "OK") traces survive a busy second of fast successes instead of being
/// overwritten within milliseconds. Only when every retained trace is
/// interesting does plain FIFO resume. Memory stays capped at
/// kMaxFinished traces either way.
class Tracer {
 public:
  static constexpr size_t kMaxFinished = 128;

  /// Honors BIGDAWG_TRACE=1 (enable) and BIGDAWG_SLOW_MS (importance
  /// threshold, default 100 ms — the slow-query log's default) in the
  /// environment.
  Tracer();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Root duration (ms) at or above which a trace counts as important for
  /// tail retention. The query service aligns this with its slow-query
  /// threshold at construction.
  double slow_threshold_ms() const;
  void SetSlowThresholdMs(double ms);

  /// Stores a finished root span and returns its assigned trace_id.
  /// Past kMaxFinished the oldest unimportant trace is dropped (the
  /// oldest important one only when nothing unimportant remains).
  int64_t Record(TraceSpan root);

  /// Snapshot of retained span trees, oldest first.
  std::vector<TraceSpan> FinishedTraces() const;
  /// Snapshot of retained traces with ids/importance, oldest first.
  std::vector<RetainedTrace> Retained() const;
  /// The retained trace with this id; NotFound once evicted (or never
  /// recorded).
  Result<RetainedTrace> Find(int64_t trace_id) const;
  /// Moves the retained traces out, leaving the ring empty.
  std::vector<TraceSpan> DrainFinished();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  double slow_threshold_ms_;
  int64_t next_trace_id_ = 1;
  std::deque<RetainedTrace> finished_;
};

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_TRACE_H_
