#ifndef BIGDAWG_OBS_TRACE_H_
#define BIGDAWG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.h"

namespace bigdawg::obs {

/// \brief One node of a finished trace: where a query execution spent its
/// time. `start_ms` is relative to the root span's start; children appear
/// in emission order; tags in insertion order.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
  std::vector<std::pair<std::string, std::string>> tags;
  std::vector<TraceSpan> children;

  /// First tag with `key`, or null.
  const std::string* FindTag(const std::string& key) const;
  /// First direct child named `name`, or null.
  const TraceSpan* FindChild(const std::string& child_name) const;
};

/// Deterministic indented rendering of a span tree — the golden-trace
/// format. One line per span: `name <start>ms +<duration>ms k=v ...`,
/// children indented two spaces per depth, all times %.3f.
std::string DumpSpanTree(const TraceSpan& root);

/// \brief Span recorder for ONE query execution.
///
/// Confined to the thread running that execution — no locking. The query
/// service creates one per traced query, threads it through
/// core::ExecContext, and finalizes it into the Tracer when the query
/// completes. StartSpan parents the new span under the innermost open
/// span, so the tree mirrors the call structure (query -> attempt ->
/// scope -> cast -> shim -> ...).
class Trace {
 public:
  Trace(const Clock* clock, std::string root_name);

  Trace(Trace&&) = default;
  Trace& operator=(Trace&&) = default;

  /// Opens a child of the innermost open span; returns its id.
  int64_t StartSpan(std::string name);
  void EndSpan(int64_t id);
  void Tag(int64_t id, std::string key, std::string value);

  int64_t root() const { return 0; }
  const Clock* clock() const { return clock_; }

  /// Ends every still-open span at Now() and assembles the tree.
  /// Consumes the trace: call as std::move(trace).Finish().
  TraceSpan Finish() &&;

 private:
  struct Rec {
    std::string name;
    Clock::TimePoint start;
    Clock::TimePoint end;
    int64_t parent = -1;
    bool open = true;
    std::vector<std::pair<std::string, std::string>> tags;
  };

  const Clock* clock_;
  std::vector<Rec> recs_;
  std::vector<int64_t> stack_;  // open-span ids, innermost last
};

/// \brief RAII span that no-ops entirely — no allocation, no clock read —
/// when constructed with a null trace. Emission sites pass `ctx->trace`
/// unconditionally and guard only their tag-value construction, which is
/// how tracing stays near-free when disabled.
class SpanGuard {
 public:
  SpanGuard(Trace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->StartSpan(name);
  }
  ~SpanGuard() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  void Tag(const char* key, const std::string& value) {
    if (trace_ != nullptr) trace_->Tag(id_, key, value);
  }

 private:
  Trace* trace_;
  int64_t id_ = -1;
};

/// \brief Process-level sink of finished traces (bounded ring).
///
/// Disabled by default: enabled() is one relaxed atomic load and nothing
/// else happens on the query path until a test, an operator, or the
/// BIGDAWG_TRACE=1 environment variable turns it on. The Monitor consumes
/// FinishedTraces()/DrainFinished() to refine engine/query-class
/// affinities from real span timings.
class Tracer {
 public:
  static constexpr size_t kMaxFinished = 128;

  Tracer();  // honors BIGDAWG_TRACE=1 in the environment

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Stores a finished root span, dropping the oldest past kMaxFinished.
  void Record(TraceSpan root);

  /// Snapshot of retained traces, oldest first.
  std::vector<TraceSpan> FinishedTraces() const;
  /// Moves the retained traces out, leaving the ring empty.
  std::vector<TraceSpan> DrainFinished();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceSpan> finished_;
};

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_TRACE_H_
