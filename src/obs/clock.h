#ifndef BIGDAWG_OBS_CLOCK_H_
#define BIGDAWG_OBS_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace bigdawg::obs {

/// \brief The time source every timing-dependent component reads.
///
/// Deadlines, retry backoff, circuit-breaker open windows, fault-injector
/// down-windows, and trace span timestamps all go through a Clock so the
/// test suite can drive time deterministically with a FakeClock instead of
/// sleeping and hoping. Production code uses the process-wide SystemClock
/// (Clock::System()). The interface is const: reading time and sleeping
/// are side-effect-free from the caller's point of view, which lets a
/// `const Clock*` be shared freely across threads.
class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  virtual TimePoint Now() const = 0;

  /// Blocks for *up to* `d`. May return early — a FakeClock wakes its
  /// sleepers whenever fake time moves — so callers that must wait out a
  /// full interval loop on Now() (see exec::InterruptibleBackoff).
  virtual void SleepFor(Duration d) const = 0;

  /// The process-wide monotonic wall clock.
  static const Clock* System();

  static Duration FromMillis(double ms) {
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, std::milli>(ms));
  }
  static double ToMillis(Duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  }
};

/// \brief std::chrono::steady_clock, really sleeping.
class SystemClock final : public Clock {
 public:
  TimePoint Now() const override;
  void SleepFor(Duration d) const override;
};

/// \brief Step-controlled test clock.
///
/// kManual (the default): time moves only when the test calls Advance;
/// SleepFor parks the calling thread in short real-time slices — so
/// cancellation and deadline polls in the sleeping code keep running —
/// until fake time moves. sleepers() lets a test synchronize with a query
/// that has entered a backoff sleep before advancing or cancelling.
///
/// kAutoAdvance: SleepFor advances fake time by the requested duration and
/// returns immediately. Backoffs, injected latency, and deadline math all
/// play out instantly but in exact fake-time order, which is what makes
/// golden-trace durations reproducible byte-for-byte.
class FakeClock final : public Clock {
 public:
  enum class Mode { kManual, kAutoAdvance };

  explicit FakeClock(Mode mode = Mode::kManual);

  TimePoint Now() const override;
  void SleepFor(Duration d) const override;

  void set_mode(Mode mode);

  void Advance(Duration d);
  void AdvanceMs(double ms) { Advance(FromMillis(ms)); }

  /// Threads currently parked inside SleepFor.
  int64_t sleepers() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable TimePoint now_;
  Mode mode_;
  mutable int64_t sleepers_ = 0;
};

}  // namespace bigdawg::obs

#endif  // BIGDAWG_OBS_CLOCK_H_
