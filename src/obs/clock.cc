#include "obs/clock.h"

#include <thread>

namespace bigdawg::obs {

Clock::TimePoint SystemClock::Now() const {
  return std::chrono::steady_clock::now();
}

void SystemClock::SleepFor(Duration d) const {
  if (d > Duration::zero()) std::this_thread::sleep_for(d);
}

const Clock* Clock::System() {
  static const SystemClock clock;
  return &clock;
}

// Start fake time well away from the epoch so subtracting a backoff or
// breaker window from "now" can never underflow the time_point.
FakeClock::FakeClock(Mode mode)
    : now_(TimePoint{} + std::chrono::hours(1)), mode_(mode) {}

Clock::TimePoint FakeClock::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void FakeClock::set_mode(Mode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = mode;
}

void FakeClock::SleepFor(Duration d) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (mode_ == Mode::kAutoAdvance) {
    if (d > Duration::zero()) {
      now_ += d;
      cv_.notify_all();
    }
    return;
  }
  // Manual mode: park until fake time moves, waking every ~1 ms of real
  // time so the caller's cancellation/deadline re-checks stay live even
  // if the test never advances the clock.
  ++sleepers_;
  const TimePoint seen = now_;
  cv_.wait_for(lock, std::chrono::milliseconds(1),
               [&] { return now_ != seen; });
  --sleepers_;
}

void FakeClock::Advance(Duration d) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ += d;
  cv_.notify_all();
}

int64_t FakeClock::sleepers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleepers_;
}

}  // namespace bigdawg::obs
