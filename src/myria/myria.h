#ifndef BIGDAWG_MYRIA_MYRIA_H_
#define BIGDAWG_MYRIA_MYRIA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/expression.h"
#include "relational/table.h"

namespace bigdawg::myria {

using relational::Expr;
using relational::ExprPtr;
using relational::Table;

/// \brief Supplies base relations to a Myria plan by name. The polystore
/// wires this to shims over Postgres- and SciDB-class engines.
using Resolver = std::function<Result<Table>(const std::string&)>;

/// \brief Node kinds of the Myria logical algebra: standard relational
/// operators extended with iteration (the paper's "relational algebra
/// extended with iteration").
enum class OpKind : int {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kAggregate,
  kIterate,
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// \brief Aggregate spec for kAggregate nodes.
struct MyriaAgg {
  std::string func;    // count | sum | avg | min | max
  std::string column;  // aggregated column ("" for count)
  std::string alias;   // output name
};

/// \brief A logical plan node. Fields are used according to `kind`.
struct PlanNode {
  OpKind kind = OpKind::kScan;

  // kScan
  std::string relation;

  // kSelect
  ExprPtr predicate;

  // kProject. `project_aliases`, when non-empty, must parallel `columns`
  // and renames each output ("" keeps the input name) — needed to align
  // iteration step schemas with the init schema.
  std::vector<std::string> columns;
  std::vector<std::string> project_aliases;

  // kJoin (equi-join)
  std::string left_column;
  std::string right_column;

  // kAggregate
  std::vector<std::string> group_by;
  std::vector<MyriaAgg> aggregates;

  // kIterate: result = fixpoint of step applied to init. Inside `step`,
  // the special relation name "$iter" refers to the previous iteration's
  // result (union semantics, dedup on all columns).
  int64_t max_iterations = 100;

  std::vector<PlanPtr> children;

  /// Deep copy (expressions cloned).
  PlanPtr Clone() const;
  std::string ToString(int indent = 0) const;
};

/// Plan builders.
PlanPtr Scan(std::string relation);
PlanPtr Select(PlanPtr child, ExprPtr predicate);
PlanPtr Project(PlanPtr child, std::vector<std::string> columns,
                std::vector<std::string> aliases = {});
PlanPtr Join(PlanPtr left, PlanPtr right, std::string left_column,
             std::string right_column);
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<MyriaAgg> aggregates);
PlanPtr Iterate(PlanPtr init, PlanPtr step, int64_t max_iterations);

/// \brief Counters filled during execution (used by optimizer tests and
/// the island monitor).
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t intermediate_rows = 0;  // rows flowing out of non-root operators
  int64_t iterations = 0;
};

/// \brief Executes a plan against the resolver. `stats` may be null.
Result<Table> ExecutePlan(const PlanNode& plan, const Resolver& resolver,
                          ExecStats* stats);

/// \brief Catalog metadata the optimizer consults: base-relation row
/// counts and schemas.
struct CatalogStats {
  std::function<Result<size_t>(const std::string&)> row_count;
  std::function<Result<Schema>(const std::string&)> schema;
};

/// \brief Output schema of a plan, derived from catalog schemas.
Result<Schema> PlanSchema(const PlanNode& plan, const CatalogStats& catalog);

/// \brief Estimated output cardinality of a plan.
size_t EstimateRows(const PlanNode& plan, const CatalogStats& catalog);

/// \brief Myria's rule-based optimizer:
///  1. selection pushdown through joins (predicates referencing one side),
///  2. join input ordering: the smaller estimated input becomes the hash
///     build side (join outputs keep left-then-right column order, so
///     swapped joins are re-projected to the original order),
///  3. adjacent selection fusion (AND).
PlanPtr Optimize(const PlanPtr& plan, const CatalogStats& catalog);

}  // namespace bigdawg::myria

#endif  // BIGDAWG_MYRIA_MYRIA_H_
