#include "myria/myria.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace bigdawg::myria {

namespace {
constexpr char kIterRelation[] = "$iter";
}

PlanPtr PlanNode::Clone() const {
  auto out = std::make_shared<PlanNode>();
  out->kind = kind;
  out->relation = relation;
  out->predicate = predicate ? predicate->Clone() : nullptr;
  out->columns = columns;
  out->project_aliases = project_aliases;
  out->left_column = left_column;
  out->right_column = right_column;
  out->group_by = group_by;
  out->aggregates = aggregates;
  out->max_iterations = max_iterations;
  for (const PlanPtr& c : children) out->children.push_back(c->Clone());
  return out;
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream oss;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  oss << pad;
  switch (kind) {
    case OpKind::kScan:
      oss << "Scan(" << relation << ")";
      break;
    case OpKind::kSelect:
      oss << "Select(" << (predicate ? predicate->ToString() : "?") << ")";
      break;
    case OpKind::kProject:
      oss << "Project(" << bigdawg::Join(columns, ", ") << ")";
      break;
    case OpKind::kJoin:
      oss << "Join(" << left_column << " = " << right_column << ")";
      break;
    case OpKind::kAggregate: {
      oss << "Aggregate(group=[" << bigdawg::Join(group_by, ", ") << "], aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << aggregates[i].func << "(" << aggregates[i].column << ")";
      }
      oss << "])";
      break;
    }
    case OpKind::kIterate:
      oss << "Iterate(max=" << max_iterations << ")";
      break;
  }
  oss << "\n";
  for (const PlanPtr& c : children) oss << c->ToString(indent + 1);
  return oss.str();
}

PlanPtr Scan(std::string relation) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kScan;
  n->relation = std::move(relation);
  return n;
}

PlanPtr Select(PlanPtr child, ExprPtr predicate) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kSelect;
  n->predicate = std::move(predicate);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Project(PlanPtr child, std::vector<std::string> columns,
                std::vector<std::string> aliases) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kProject;
  n->columns = std::move(columns);
  n->project_aliases = std::move(aliases);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Join(PlanPtr left, PlanPtr right, std::string left_column,
             std::string right_column) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kJoin;
  n->left_column = std::move(left_column);
  n->right_column = std::move(right_column);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<MyriaAgg> aggregates) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kAggregate;
  n->group_by = std::move(group_by);
  n->aggregates = std::move(aggregates);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Iterate(PlanPtr init, PlanPtr step, int64_t max_iterations) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kIterate;
  n->max_iterations = max_iterations;
  n->children.push_back(std::move(init));
  n->children.push_back(std::move(step));
  return n;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

Result<Table> ExecuteNode(const PlanNode& plan, const Resolver& resolver,
                          ExecStats* stats);

Result<Table> ExecuteSelectNode(const PlanNode& plan, const Resolver& resolver,
                                ExecStats* stats) {
  BIGDAWG_ASSIGN_OR_RETURN(Table input, ExecuteNode(*plan.children[0], resolver, stats));
  ExprPtr pred = plan.predicate->Clone();
  BIGDAWG_RETURN_NOT_OK(pred->Bind(input.schema()));
  Table out(input.schema());
  for (const Row& row : input.rows()) {
    BIGDAWG_ASSIGN_OR_RETURN(Value v, pred->Eval(row));
    if (!v.is_null() && v.type() == DataType::kBool && v.bool_unchecked()) {
      out.AppendUnchecked(row);
    }
  }
  return out;
}

Result<Table> ExecuteProjectNode(const PlanNode& plan, const Resolver& resolver,
                                 ExecStats* stats) {
  BIGDAWG_ASSIGN_OR_RETURN(Table input, ExecuteNode(*plan.children[0], resolver, stats));
  if (!plan.project_aliases.empty() &&
      plan.project_aliases.size() != plan.columns.size()) {
    return Status::InvalidArgument("project aliases must parallel columns");
  }
  std::vector<size_t> indices;
  std::vector<Field> fields;
  for (size_t i = 0; i < plan.columns.size(); ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(size_t idx, input.schema().Resolve(plan.columns[i]));
    indices.push_back(idx);
    Field field = input.schema().field(idx);
    if (!plan.project_aliases.empty() && !plan.project_aliases[i].empty()) {
      field.name = plan.project_aliases[i];
    }
    fields.push_back(std::move(field));
  }
  Table out{Schema(std::move(fields))};
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

Result<Table> ExecuteJoinNode(const PlanNode& plan, const Resolver& resolver,
                              ExecStats* stats) {
  BIGDAWG_ASSIGN_OR_RETURN(Table left, ExecuteNode(*plan.children[0], resolver, stats));
  BIGDAWG_ASSIGN_OR_RETURN(Table right, ExecuteNode(*plan.children[1], resolver, stats));
  BIGDAWG_ASSIGN_OR_RETURN(size_t li, left.schema().Resolve(plan.left_column));
  BIGDAWG_ASSIGN_OR_RETURN(size_t ri, right.schema().Resolve(plan.right_column));

  Schema combined = left.schema().Concat(right.schema(), "right");
  Table out(combined);
  std::unordered_map<Value, std::vector<const Row*>, ValueHash> hash_table;
  hash_table.reserve(right.num_rows());
  for (const Row& r : right.rows()) {
    if (r[ri].is_null()) continue;
    hash_table[r[ri]].push_back(&r);
  }
  for (const Row& l : left.rows()) {
    if (l[li].is_null()) continue;
    auto it = hash_table.find(l[li]);
    if (it == hash_table.end()) continue;
    for (const Row* r : it->second) {
      Row joined = l;
      joined.insert(joined.end(), r->begin(), r->end());
      out.AppendUnchecked(std::move(joined));
    }
  }
  return out;
}

Result<Table> ExecuteAggregateNode(const PlanNode& plan, const Resolver& resolver,
                                   ExecStats* stats) {
  BIGDAWG_ASSIGN_OR_RETURN(Table input, ExecuteNode(*plan.children[0], resolver, stats));
  std::vector<size_t> group_idx;
  std::vector<Field> out_fields;
  for (const std::string& g : plan.group_by) {
    BIGDAWG_ASSIGN_OR_RETURN(size_t idx, input.schema().Resolve(g));
    group_idx.push_back(idx);
    out_fields.push_back(input.schema().field(idx));
  }
  struct AggSpec {
    std::string func;
    size_t column = 0;
    bool count_all = false;
  };
  std::vector<AggSpec> specs;
  for (const MyriaAgg& a : plan.aggregates) {
    AggSpec spec;
    spec.func = ToLower(a.func);
    if (spec.func == "count" && a.column.empty()) {
      spec.count_all = true;
    } else {
      BIGDAWG_ASSIGN_OR_RETURN(spec.column, input.schema().Resolve(a.column));
    }
    DataType out_type;
    if (spec.func == "count") {
      out_type = DataType::kInt64;
    } else if (spec.func == "min" || spec.func == "max") {
      out_type = spec.count_all ? DataType::kDouble
                                : input.schema().field(spec.column).type;
    } else if (spec.func == "sum" || spec.func == "avg") {
      out_type = DataType::kDouble;
    } else {
      return Status::InvalidArgument("unknown aggregate: " + a.func);
    }
    std::string name = a.alias.empty() ? spec.func + "_" + a.column : a.alias;
    out_fields.emplace_back(std::move(name), out_type);
    specs.push_back(spec);
  }

  struct GroupState {
    std::vector<int64_t> counts;
    std::vector<double> sums;
    std::vector<Value> mins;
    std::vector<Value> maxs;
    int64_t total = 0;
  };
  std::unordered_map<Row, GroupState, RowHash> groups;
  std::vector<Row> order;
  for (const Row& row : input.rows()) {
    Row key;
    key.reserve(group_idx.size());
    for (size_t idx : group_idx) key.push_back(row[idx]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      GroupState gs;
      gs.counts.assign(specs.size(), 0);
      gs.sums.assign(specs.size(), 0.0);
      gs.mins.assign(specs.size(), Value());
      gs.maxs.assign(specs.size(), Value());
      it = groups.emplace(key, std::move(gs)).first;
      order.push_back(key);
    }
    GroupState& gs = it->second;
    ++gs.total;
    for (size_t s = 0; s < specs.size(); ++s) {
      if (specs[s].count_all) continue;
      const Value& v = row[specs[s].column];
      if (v.is_null()) continue;
      ++gs.counts[s];
      Result<double> num = v.ToNumeric();
      if (num.ok()) gs.sums[s] += *num;
      if (gs.mins[s].is_null() || v.Compare(gs.mins[s]) < 0) gs.mins[s] = v;
      if (gs.maxs[s].is_null() || v.Compare(gs.maxs[s]) > 0) gs.maxs[s] = v;
    }
  }
  if (plan.group_by.empty() && groups.empty()) {
    GroupState gs;
    gs.counts.assign(specs.size(), 0);
    gs.sums.assign(specs.size(), 0.0);
    gs.mins.assign(specs.size(), Value());
    gs.maxs.assign(specs.size(), Value());
    Row key;
    groups.emplace(key, std::move(gs));
    order.push_back(key);
  }

  Table out{Schema(std::move(out_fields))};
  for (const Row& key : order) {
    const GroupState& gs = groups.at(key);
    Row row = key;
    for (size_t s = 0; s < specs.size(); ++s) {
      const AggSpec& spec = specs[s];
      if (spec.func == "count") {
        row.push_back(Value(spec.count_all ? gs.total : gs.counts[s]));
      } else if (spec.func == "sum") {
        row.push_back(gs.counts[s] == 0 ? Value::Null() : Value(gs.sums[s]));
      } else if (spec.func == "avg") {
        row.push_back(gs.counts[s] == 0
                          ? Value::Null()
                          : Value(gs.sums[s] / static_cast<double>(gs.counts[s])));
      } else if (spec.func == "min") {
        row.push_back(gs.mins[s]);
      } else {
        row.push_back(gs.maxs[s]);
      }
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

// Deduplicates rows in place (first occurrence kept, order preserved).
void DedupRows(std::vector<Row>* rows) {
  std::unordered_set<size_t> seen_hashes;
  std::vector<Row> out;
  for (Row& row : *rows) {
    size_t h = HashRow(row);
    bool dup = false;
    if (!seen_hashes.insert(h).second) {
      for (const Row& kept : out) {
        if (kept == row) {
          dup = true;
          break;
        }
      }
    }
    if (!dup) out.push_back(std::move(row));
  }
  *rows = std::move(out);
}

Result<Table> ExecuteIterateNode(const PlanNode& plan, const Resolver& resolver,
                                 ExecStats* stats) {
  BIGDAWG_ASSIGN_OR_RETURN(Table current,
                           ExecuteNode(*plan.children[0], resolver, stats));
  {
    std::vector<Row> rows = current.rows();
    DedupRows(&rows);
    current = Table(current.schema(), std::move(rows));
  }
  for (int64_t iter = 0; iter < plan.max_iterations; ++iter) {
    if (stats != nullptr) ++stats->iterations;
    // Overlay resolver: "$iter" refers to the current result.
    Resolver overlay = [&current, &resolver](const std::string& name) -> Result<Table> {
      if (name == kIterRelation) return current;
      return resolver(name);
    };
    BIGDAWG_ASSIGN_OR_RETURN(Table step, ExecuteNode(*plan.children[1], overlay, stats));
    if (!(step.schema() == current.schema())) {
      return Status::InvalidArgument(
          "iterate step schema [" + step.schema().ToString() +
          "] differs from init schema [" + current.schema().ToString() + "]");
    }
    std::vector<Row> merged = current.rows();
    merged.insert(merged.end(), step.rows().begin(), step.rows().end());
    DedupRows(&merged);
    if (merged.size() == current.num_rows()) break;  // fixpoint
    current = Table(current.schema(), std::move(merged));
  }
  return current;
}

Result<Table> ExecuteNode(const PlanNode& plan, const Resolver& resolver,
                          ExecStats* stats) {
  Result<Table> result = [&]() -> Result<Table> {
    switch (plan.kind) {
      case OpKind::kScan: {
        BIGDAWG_ASSIGN_OR_RETURN(Table t, resolver(plan.relation));
        if (stats != nullptr) stats->rows_scanned += static_cast<int64_t>(t.num_rows());
        return t;
      }
      case OpKind::kSelect:
        return ExecuteSelectNode(plan, resolver, stats);
      case OpKind::kProject:
        return ExecuteProjectNode(plan, resolver, stats);
      case OpKind::kJoin:
        return ExecuteJoinNode(plan, resolver, stats);
      case OpKind::kAggregate:
        return ExecuteAggregateNode(plan, resolver, stats);
      case OpKind::kIterate:
        return ExecuteIterateNode(plan, resolver, stats);
    }
    return Status::Internal("unhandled plan kind");
  }();
  if (result.ok() && stats != nullptr) {
    stats->intermediate_rows += static_cast<int64_t>(result->num_rows());
  }
  return result;
}

}  // namespace

Result<Table> ExecutePlan(const PlanNode& plan, const Resolver& resolver,
                          ExecStats* stats) {
  return ExecuteNode(plan, resolver, stats);
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

Result<Schema> PlanSchema(const PlanNode& plan, const CatalogStats& catalog) {
  switch (plan.kind) {
    case OpKind::kScan:
      return catalog.schema(plan.relation);
    case OpKind::kSelect:
      return PlanSchema(*plan.children[0], catalog);
    case OpKind::kProject: {
      BIGDAWG_ASSIGN_OR_RETURN(Schema child, PlanSchema(*plan.children[0], catalog));
      std::vector<Field> fields;
      for (size_t i = 0; i < plan.columns.size(); ++i) {
        BIGDAWG_ASSIGN_OR_RETURN(size_t idx, child.Resolve(plan.columns[i]));
        Field field = child.field(idx);
        if (!plan.project_aliases.empty() && i < plan.project_aliases.size() &&
            !plan.project_aliases[i].empty()) {
          field.name = plan.project_aliases[i];
        }
        fields.push_back(std::move(field));
      }
      return Schema(std::move(fields));
    }
    case OpKind::kJoin: {
      BIGDAWG_ASSIGN_OR_RETURN(Schema left, PlanSchema(*plan.children[0], catalog));
      BIGDAWG_ASSIGN_OR_RETURN(Schema right, PlanSchema(*plan.children[1], catalog));
      return left.Concat(right, "right");
    }
    case OpKind::kAggregate: {
      BIGDAWG_ASSIGN_OR_RETURN(Schema child, PlanSchema(*plan.children[0], catalog));
      std::vector<Field> fields;
      for (const std::string& g : plan.group_by) {
        BIGDAWG_ASSIGN_OR_RETURN(size_t idx, child.Resolve(g));
        fields.push_back(child.field(idx));
      }
      for (const MyriaAgg& a : plan.aggregates) {
        std::string func = ToLower(a.func);
        DataType type = DataType::kDouble;
        if (func == "count") {
          type = DataType::kInt64;
        } else if (func == "min" || func == "max") {
          BIGDAWG_ASSIGN_OR_RETURN(size_t idx, child.Resolve(a.column));
          type = child.field(idx).type;
        }
        fields.emplace_back(a.alias.empty() ? func + "_" + a.column : a.alias, type);
      }
      return Schema(std::move(fields));
    }
    case OpKind::kIterate:
      return PlanSchema(*plan.children[0], catalog);
  }
  return Status::Internal("unhandled plan kind");
}

size_t EstimateRows(const PlanNode& plan, const CatalogStats& catalog) {
  switch (plan.kind) {
    case OpKind::kScan: {
      Result<size_t> n = catalog.row_count(plan.relation);
      return n.ok() ? *n : 1000;
    }
    case OpKind::kSelect:
      return std::max<size_t>(1, EstimateRows(*plan.children[0], catalog) / 3);
    case OpKind::kProject:
      return EstimateRows(*plan.children[0], catalog);
    case OpKind::kJoin: {
      size_t l = EstimateRows(*plan.children[0], catalog);
      size_t r = EstimateRows(*plan.children[1], catalog);
      return std::max<size_t>(1, std::min(l, r));
    }
    case OpKind::kAggregate:
      return std::max<size_t>(1, EstimateRows(*plan.children[0], catalog) / 10);
    case OpKind::kIterate:
      return EstimateRows(*plan.children[0], catalog) * 2;
  }
  return 1000;
}

namespace {

// Column names referenced by an expression tree.
void CollectColumns(const Expr* expr, std::set<std::string>* out) {
  if (const auto* col = dynamic_cast<const relational::ColumnExpr*>(expr)) {
    out->insert(col->name());
    return;
  }
  if (const auto* bin = dynamic_cast<const relational::BinaryExpr*>(expr)) {
    CollectColumns(&bin->left(), out);
    CollectColumns(&bin->right(), out);
    return;
  }
  // Unary and function nodes hide children behind the interface; a bindable
  // probe against a candidate schema is used instead (see ResolvesAgainst).
}

// Whether every column the predicate mentions resolves in `schema`.
bool ResolvesAgainst(const Expr& predicate, const Schema& schema) {
  ExprPtr probe = predicate.Clone();
  return probe->Bind(schema).ok();
}

PlanPtr OptimizeNode(PlanPtr plan, const CatalogStats& catalog);

// Rule 1: Select over Join -> push to the side that can bind it.
PlanPtr PushDownSelect(PlanPtr select_node, const CatalogStats& catalog) {
  PlanPtr join = select_node->children[0];
  Result<Schema> left_schema = PlanSchema(*join->children[0], catalog);
  Result<Schema> right_schema = PlanSchema(*join->children[1], catalog);
  if (left_schema.ok() && ResolvesAgainst(*select_node->predicate, *left_schema)) {
    join->children[0] =
        Select(join->children[0], select_node->predicate->Clone());
    return join;
  }
  if (right_schema.ok() && ResolvesAgainst(*select_node->predicate, *right_schema)) {
    join->children[1] =
        Select(join->children[1], select_node->predicate->Clone());
    return join;
  }
  return select_node;
}

// Rule 2: make the smaller input the hash build (right) side when the two
// sides share no column names (so reprojection restores the output order).
PlanPtr ReorderJoin(PlanPtr join, const CatalogStats& catalog) {
  size_t left_rows = EstimateRows(*join->children[0], catalog);
  size_t right_rows = EstimateRows(*join->children[1], catalog);
  if (right_rows <= left_rows) return join;
  Result<Schema> ls = PlanSchema(*join->children[0], catalog);
  Result<Schema> rs = PlanSchema(*join->children[1], catalog);
  if (!ls.ok() || !rs.ok()) return join;
  for (const Field& f : ls->fields()) {
    if (rs->Contains(f.name)) return join;  // clash: skip the rewrite
  }
  // Swapped join + projection back to the original column order.
  PlanPtr swapped = Join(join->children[1], join->children[0],
                         join->right_column, join->left_column);
  std::vector<std::string> original_order;
  for (const Field& f : ls->fields()) original_order.push_back(f.name);
  for (const Field& f : rs->fields()) original_order.push_back(f.name);
  return Project(std::move(swapped), std::move(original_order));
}

PlanPtr OptimizeNode(PlanPtr plan, const CatalogStats& catalog) {
  // Optimize children first.
  for (PlanPtr& child : plan->children) child = OptimizeNode(child, catalog);

  // Rule 3: fuse adjacent selects.
  if (plan->kind == OpKind::kSelect &&
      plan->children[0]->kind == OpKind::kSelect) {
    PlanPtr inner = plan->children[0];
    ExprPtr fused = relational::Bin(relational::BinaryOp::kAnd,
                                    plan->predicate->Clone(),
                                    inner->predicate->Clone());
    return OptimizeNode(Select(inner->children[0], std::move(fused)), catalog);
  }

  if (plan->kind == OpKind::kSelect &&
      plan->children[0]->kind == OpKind::kJoin) {
    PlanPtr pushed = PushDownSelect(plan, catalog);
    if (pushed != plan) return OptimizeNode(pushed, catalog);
  }

  if (plan->kind == OpKind::kJoin) {
    return ReorderJoin(plan, catalog);
  }
  return plan;
}

}  // namespace

PlanPtr Optimize(const PlanPtr& plan, const CatalogStats& catalog) {
  return OptimizeNode(plan->Clone(), catalog);
}

}  // namespace bigdawg::myria
