#include "common/binary_io.h"

#include "common/macros.h"

namespace bigdawg {

void BinaryWriter::PutValue(const Value& v) {
  PutUint8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      PutUint8(v.bool_unchecked() ? 1 : 0);
      break;
    case DataType::kInt64:
      PutInt64(v.int64_unchecked());
      break;
    case DataType::kDouble:
      PutDouble(v.double_unchecked());
      break;
    case DataType::kString:
      PutString(v.string_unchecked());
      break;
  }
}

void BinaryWriter::PutRow(const Row& row) {
  PutUint32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(v);
}

void BinaryWriter::PutSchema(const Schema& schema) {
  PutUint32(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    PutString(f.name);
    PutUint8(static_cast<uint8_t>(f.type));
  }
}

Status BinaryReader::GetRaw(void* out, size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("binary read past end (pos=" + std::to_string(pos_) +
                              ", need=" + std::to_string(n) +
                              ", size=" + std::to_string(data_.size()) + ")");
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetUint8() {
  uint8_t v = 0;
  BIGDAWG_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::GetUint32() {
  uint32_t v = 0;
  BIGDAWG_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::GetInt64() {
  int64_t v = 0;
  BIGDAWG_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::GetDouble() {
  double v = 0;
  BIGDAWG_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  BIGDAWG_ASSIGN_OR_RETURN(uint32_t len, GetUint32());
  if (pos_ + len > data_.size()) {
    return Status::OutOfRange("string read past end");
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<Value> BinaryReader::GetValue() {
  BIGDAWG_ASSIGN_OR_RETURN(uint8_t tag, GetUint8());
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      BIGDAWG_ASSIGN_OR_RETURN(uint8_t b, GetUint8());
      return Value(b != 0);
    }
    case DataType::kInt64: {
      BIGDAWG_ASSIGN_OR_RETURN(int64_t v, GetInt64());
      return Value(v);
    }
    case DataType::kDouble: {
      BIGDAWG_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value(v);
    }
    case DataType::kString: {
      BIGDAWG_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value(std::move(s));
    }
  }
  return Status::ParseError("bad value tag: " + std::to_string(tag));
}

Result<Row> BinaryReader::GetRow() {
  BIGDAWG_ASSIGN_OR_RETURN(uint32_t n, GetUint32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(Value v, GetValue());
    row.push_back(std::move(v));
  }
  return row;
}

Result<Schema> BinaryReader::GetSchema() {
  BIGDAWG_ASSIGN_OR_RETURN(uint32_t n, GetUint32());
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BIGDAWG_ASSIGN_OR_RETURN(std::string name, GetString());
    BIGDAWG_ASSIGN_OR_RETURN(uint8_t tag, GetUint8());
    if (tag > static_cast<uint8_t>(DataType::kString)) {
      return Status::ParseError("bad type tag in schema: " + std::to_string(tag));
    }
    fields.emplace_back(std::move(name), static_cast<DataType>(tag));
  }
  return Schema(std::move(fields));
}

}  // namespace bigdawg
