#ifndef BIGDAWG_COMMON_MACROS_H_
#define BIGDAWG_COMMON_MACROS_H_

#include "common/result.h"
#include "common/status.h"

/// Propagates a non-OK Status to the caller.
#define BIGDAWG_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::bigdawg::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define BIGDAWG_CONCAT_IMPL(x, y) x##y
#define BIGDAWG_CONCAT(x, y) BIGDAWG_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define BIGDAWG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = tmp.MoveValueUnsafe()

#define BIGDAWG_ASSIGN_OR_RETURN(lhs, expr) \
  BIGDAWG_ASSIGN_OR_RETURN_IMPL(BIGDAWG_CONCAT(_result_, __COUNTER__), lhs, expr)

#endif  // BIGDAWG_COMMON_MACROS_H_
