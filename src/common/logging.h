#ifndef BIGDAWG_COMMON_LOGGING_H_
#define BIGDAWG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace bigdawg {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

/// Captures an optional message streamed after a failed check.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckFailureStream() { CheckFailed(expr_, file_, line_, stream_.str()); }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace bigdawg

#define BIGDAWG_LOG(level)                                                   \
  ::bigdawg::internal::LogMessage(::bigdawg::LogLevel::k##level, __FILE__,   \
                                  __LINE__)

/// Internal-invariant check; aborts with file:line on failure. Active in all
/// build types (database kernels prefer loud corruption detection).
#define BIGDAWG_CHECK(cond)                                             \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::bigdawg::internal::CheckFailureStream(#cond, __FILE__, __LINE__)

#define BIGDAWG_CHECK_OK(expr)                                \
  do {                                                        \
    ::bigdawg::Status _st = (expr);                           \
    BIGDAWG_CHECK(_st.ok()) << _st.ToString();                \
  } while (false)

#endif  // BIGDAWG_COMMON_LOGGING_H_
