#ifndef BIGDAWG_COMMON_LOGGING_H_
#define BIGDAWG_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace bigdawg {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" | "info" | "warn"/"warning" | "error" (any case) or a
/// numeric 0-3 into a level; false on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Re-reads BIGDAWG_LOG from the environment and applies it (unset or
/// unparsable leaves the level unchanged). Runs automatically once at
/// process start; exposed so tests and long-lived tools can re-apply.
void InitLogLevelFromEnv();

/// \brief Where formatted log lines go. `component` is the subsystem tag
/// ("" when untagged), `message` the fully formatted line (no trailing
/// newline). Invoked under the logging mutex, so sinks need no locking of
/// their own, but must not log re-entrantly.
using LogSink =
    std::function<void(LogLevel level, const char* component,
                       const std::string& message)>;

/// Installs a sink (tests capture output; embedders forward to their own
/// logging stack). Null restores the default stderr sink. Thread-safe.
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : LogMessage(level, "", file, line) {}
  LogMessage(LogLevel level, const char* component, const char* file,
             int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

/// Captures an optional message streamed after a failed check.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckFailureStream() { CheckFailed(expr_, file_, line_, stream_.str()); }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace bigdawg

#define BIGDAWG_LOG(level)                                                   \
  ::bigdawg::internal::LogMessage(::bigdawg::LogLevel::k##level, __FILE__,   \
                                  __LINE__)

/// Component-tagged variant: BIGDAWG_CLOG(Warn, "exec") << ...; the tag
/// shows up in the line prefix and reaches the sink separately, so an
/// embedder can route subsystems independently.
#define BIGDAWG_CLOG(level, component)                                       \
  ::bigdawg::internal::LogMessage(::bigdawg::LogLevel::k##level, component,  \
                                  __FILE__, __LINE__)

/// Internal-invariant check; aborts with file:line on failure. Active in all
/// build types (database kernels prefer loud corruption detection).
#define BIGDAWG_CHECK(cond)                                             \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::bigdawg::internal::CheckFailureStream(#cond, __FILE__, __LINE__)

#define BIGDAWG_CHECK_OK(expr)                                \
  do {                                                        \
    ::bigdawg::Status _st = (expr);                           \
    BIGDAWG_CHECK(_st.ok()) << _st.ToString();                \
  } while (false)

#endif  // BIGDAWG_COMMON_LOGGING_H_
