#include "common/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace bigdawg {

bool Token::IsKeyword(const std::string& kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (is_ident_start(c)) {
      while (i < n && is_ident(sql[i])) ++i;
      out.push_back({TokenType::kIdentifier, sql.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_float = true;
        ++i;
      }
      out.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                     sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          text += sql[i++];
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      out.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Multi-char symbols first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" || two == "::") {
        out.push_back({TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = ",()*=<>+-/%.;[]{}:";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

const Token& TokenCursor::Peek(size_t lookahead) const {
  size_t idx = pos_ + lookahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

Token TokenCursor::Next() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenCursor::ConsumeKeyword(const std::string& kw) {
  if (Peek().IsKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::ConsumeSymbol(const std::string& sym) {
  if (Peek().IsSymbol(sym)) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectKeyword(const std::string& kw) {
  if (!ConsumeKeyword(kw)) {
    return Status::ParseError("expected keyword '" + kw + "', got '" +
                              Peek().text + "'");
  }
  return Status::OK();
}

Status TokenCursor::ExpectSymbol(const std::string& sym) {
  if (!ConsumeSymbol(sym)) {
    return Status::ParseError("expected '" + sym + "', got '" + Peek().text + "'");
  }
  return Status::OK();
}

Result<std::string> TokenCursor::ExpectIdentifier() {
  if (Peek().type != TokenType::kIdentifier) {
    return Status::ParseError("expected identifier, got '" + Peek().text + "'");
  }
  return Next().text;
}

}  // namespace bigdawg
