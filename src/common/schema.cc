#include "common/schema.h"

#include <sstream>

namespace bigdawg {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in schema [" +
                          ToString() + "]");
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).ok();
}

Result<size_t> Schema::Resolve(const std::string& name) const {
  Result<size_t> exact = IndexOf(name);
  if (exact.ok()) return exact;
  size_t name_dot = name.rfind('.');
  if (name_dot != std::string::npos) {
    // Qualified reference against unqualified fields (e.g. "r.drug" binding
    // to an aggregate output column "drug"): match on the reference's tail
    // if that tail is itself unambiguous among unqualified fields.
    std::string tail = name.substr(name_dot + 1);
    size_t found = fields_.size();
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == tail) {
        if (found != fields_.size()) return exact;  // ambiguous: keep NotFound
        found = i;
      }
    }
    if (found != fields_.size()) return found;
    return exact;
  }
  size_t found = fields_.size();
  for (size_t i = 0; i < fields_.size(); ++i) {
    const std::string& fname = fields_[i].name;
    size_t dot = fname.rfind('.');
    if (dot == std::string::npos) continue;
    if (fname.compare(dot + 1, std::string::npos, name) == 0) {
      if (found != fields_.size()) {
        return Status::InvalidArgument("ambiguous column reference '" + name +
                                       "' in schema [" + ToString() + "]");
      }
      found = i;
    }
  }
  if (found == fields_.size()) return exact;
  return found;
}

Status Schema::AddField(Field field) {
  if (Contains(field.name)) {
    return Status::AlreadyExists("column already exists: " + field.name);
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != fields_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(fields_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != fields_[i].type) {
      return Status::TypeError("column '" + fields_[i].name + "' expects " +
                               DataTypeToString(fields_[i].type) + ", got " +
                               DataTypeToString(row[i].type()));
    }
  }
  return Status::OK();
}

Schema Schema::Concat(const Schema& other, const std::string& right_prefix) const {
  std::vector<Field> out = fields_;
  for (const Field& f : other.fields_) {
    std::string name = f.name;
    bool clash = false;
    for (const Field& mine : fields_) {
      if (mine.name == name) {
        clash = true;
        break;
      }
    }
    if (clash) name = right_prefix + "." + name;
    out.emplace_back(std::move(name), f.type);
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << fields_[i].name << ":" << DataTypeToString(fields_[i].type);
  }
  return oss.str();
}

}  // namespace bigdawg
