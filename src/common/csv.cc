#include "common/csv.h"

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace bigdawg {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string RowsToCsv(const Schema& schema, const std::vector<Row>& rows) {
  std::ostringstream oss;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) oss << ",";
    oss << QuoteField(schema.field(i).name + ":" +
                      DataTypeToString(schema.field(i).type));
  }
  oss << "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << ",";
      oss << QuoteField(row[i].ToString());
    }
    oss << "\n";
  }
  return oss.str();
}

Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV line: " + line);
  fields.push_back(std::move(cur));
  return fields;
}

Result<std::pair<Schema, std::vector<Row>>> CsvToRows(const std::string& csv) {
  std::vector<std::string> lines;
  {
    // Split on newlines outside quotes.
    std::string cur;
    bool in_quotes = false;
    for (char c : csv) {
      if (c == '"') in_quotes = !in_quotes;
      if (c == '\n' && !in_quotes) {
        lines.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) lines.push_back(std::move(cur));
  }
  if (lines.empty()) return Status::ParseError("empty CSV input");

  BIGDAWG_ASSIGN_OR_RETURN(std::vector<std::string> header, SplitCsvLine(lines[0]));
  std::vector<Field> fields;
  for (const std::string& h : header) {
    size_t colon = h.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("CSV header field missing type: " + h);
    }
    BIGDAWG_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(h.substr(colon + 1)));
    fields.emplace_back(h.substr(0, colon), type);
  }
  Schema schema{std::move(fields)};

  std::vector<Row> rows;
  rows.reserve(lines.size() - 1);
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    BIGDAWG_ASSIGN_OR_RETURN(std::vector<std::string> cells, SplitCsvLine(lines[i]));
    if (cells.size() != schema.num_fields()) {
      return Status::ParseError("CSV row " + std::to_string(i) + " has " +
                                std::to_string(cells.size()) + " cells, expected " +
                                std::to_string(schema.num_fields()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      BIGDAWG_ASSIGN_OR_RETURN(Value v, Value::Parse(cells[c], schema.field(c).type));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return std::make_pair(std::move(schema), std::move(rows));
}

}  // namespace bigdawg
