#include "common/value.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <sstream>

namespace bigdawg {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

Result<DataType> DataTypeFromString(const std::string& name) {
  if (name == "null") return DataType::kNull;
  if (name == "bool") return DataType::kBool;
  if (name == "int64" || name == "int" || name == "bigint") return DataType::kInt64;
  if (name == "double" || name == "float8" || name == "real") return DataType::kDouble;
  if (name == "string" || name == "text" || name == "varchar") return DataType::kString;
  return Status::InvalidArgument("unknown data type name: " + name);
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

Result<bool> Value::AsBool() const {
  if (auto* v = std::get_if<bool>(&data_)) return *v;
  return Status::TypeError("value is not bool: " + ToString());
}

Result<int64_t> Value::AsInt64() const {
  if (auto* v = std::get_if<int64_t>(&data_)) return *v;
  return Status::TypeError("value is not int64: " + ToString());
}

Result<double> Value::AsDouble() const {
  if (auto* v = std::get_if<double>(&data_)) return *v;
  return Status::TypeError("value is not double: " + ToString());
}

Result<std::string> Value::AsString() const {
  if (auto* v = std::get_if<std::string>(&data_)) return *v;
  return Status::TypeError("value is not string: " + ToString());
}

Result<double> Value::ToNumeric() const {
  if (auto* i = std::get_if<int64_t>(&data_)) return static_cast<double>(*i);
  if (auto* d = std::get_if<double>(&data_)) return *d;
  return Status::TypeError("value is not numeric: " + ToString());
}

std::string Value::ToString() const {
  switch (data_.index()) {
    case 0:
      return "null";
    case 1:
      return std::get<bool>(data_) ? "true" : "false";
    case 2:
      return std::to_string(std::get<int64_t>(data_));
    case 3: {
      std::ostringstream oss;
      oss << std::get<double>(data_);
      return oss.str();
    }
    case 4:
      return std::get<std::string>(data_);
  }
  return "null";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type() == target) return *this;
  switch (target) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      if (auto* i = std::get_if<int64_t>(&data_)) return Value(*i != 0);
      if (auto* d = std::get_if<double>(&data_)) return Value(*d != 0.0);
      if (auto* s = std::get_if<std::string>(&data_)) {
        if (*s == "true" || *s == "1") return Value(true);
        if (*s == "false" || *s == "0") return Value(false);
        return Status::TypeError("cannot cast string to bool: " + *s);
      }
      break;
    }
    case DataType::kInt64: {
      if (auto* b = std::get_if<bool>(&data_)) return Value(static_cast<int64_t>(*b));
      if (auto* d = std::get_if<double>(&data_)) {
        return Value(static_cast<int64_t>(*d));
      }
      if (auto* s = std::get_if<std::string>(&data_)) {
        return Parse(*s, DataType::kInt64);
      }
      break;
    }
    case DataType::kDouble: {
      if (auto* b = std::get_if<bool>(&data_)) return Value(*b ? 1.0 : 0.0);
      if (auto* i = std::get_if<int64_t>(&data_)) return Value(static_cast<double>(*i));
      if (auto* s = std::get_if<std::string>(&data_)) {
        return Parse(*s, DataType::kDouble);
      }
      break;
    }
    case DataType::kString:
      return Value(ToString());
  }
  return Status::TypeError(std::string("unsupported cast from ") +
                           DataTypeToString(type()) + " to " +
                           DataTypeToString(target));
}

Result<Value> Value::Parse(const std::string& text, DataType type) {
  if (text == "null") return Value::Null();
  if (text.empty() && type != DataType::kString) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      if (text == "true" || text == "1") return Value(true);
      if (text == "false" || text == "0") return Value(false);
      return Status::ParseError("cannot parse bool: " + text);
    }
    case DataType::kInt64: {
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("cannot parse int64: " + text);
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("cannot parse double: " + text);
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(text);
  }
  return Status::ParseError("cannot parse value: " + text);
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  const DataType ta = type();
  const DataType tb = other.type();
  if (IsNumeric(ta) && IsNumeric(tb)) {
    return CompareDoubles(*ToNumeric(), *other.ToNumeric());
  }
  if (ta != tb) return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
  switch (ta) {
    case DataType::kBool: {
      const bool a = std::get<bool>(data_);
      const bool b = std::get<bool>(other.data_);
      return (a == b) ? 0 : (a ? 1 : -1);
    }
    case DataType::kString: {
      const int c = std::get<std::string>(data_).compare(std::get<std::string>(other.data_));
      return (c < 0) ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (data_.index()) {
    case 0:
      return 0x9e3779b97f4a7c15ULL;
    case 1:
      return std::get<bool>(data_) ? 0x5bd1e995 : 0xdeadbeef;
    case 2: {
      // Hash integral values as doubles so 3 and 3.0 collide (they compare
      // equal under Compare()).
      return std::hash<double>()(static_cast<double>(std::get<int64_t>(data_)));
    }
    case 3:
      return std::hash<double>()(std::get<double>(data_));
    case 4:
      return std::hash<std::string>()(std::get<std::string>(data_));
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678;
  for (const Value& v : row) {
    h = h * 1000003 ^ v.Hash();
  }
  return h ^ row.size();
}

}  // namespace bigdawg
