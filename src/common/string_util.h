#ifndef BIGDAWG_COMMON_STRING_UTIL_H_
#define BIGDAWG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bigdawg {

/// Splits on `sep`, keeping empty pieces ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// ASCII lowercase / uppercase.
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive equality (ASCII).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Number of non-overlapping occurrences of `needle` in `haystack`.
size_t CountOccurrences(std::string_view haystack, std::string_view needle);

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_STRING_UTIL_H_
