#include "common/thread_pool.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace bigdawg {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    if (max_queue_ > 0 && queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "ThreadPool: task threw (%s); tasks must report errors "
                   "via Status, not exceptions\n",
                   e.what());
      std::abort();
    } catch (...) {
      std::fprintf(stderr,
                   "ThreadPool: task threw a non-std::exception; tasks must "
                   "report errors via Status, not exceptions\n");
      std::abort();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace bigdawg
