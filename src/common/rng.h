#ifndef BIGDAWG_COMMON_RNG_H_
#define BIGDAWG_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace bigdawg {

/// \brief Deterministic splitmix64-based RNG.
///
/// Used everywhere randomness is needed (data generators, sampling, workload
/// drivers) so every experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64 random bits.
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextUint64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_RNG_H_
