#ifndef BIGDAWG_COMMON_SCHEMA_H_
#define BIGDAWG_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace bigdawg {

/// \brief A named, typed column.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  Field() = default;
  Field(std::string name_in, DataType type_in)
      : name(std::move(name_in)), type(type_in) {}

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered list of fields describing a relation (or tuple stream).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the column named `name` (case-sensitive); NotFound otherwise.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Resolves a possibly-qualified reference: exact match first; for an
  /// unqualified `name`, falls back to the unique field whose part after the
  /// last '.' equals `name` (ambiguous matches are an error). Used to bind
  /// column references over join schemas whose fields are "alias.column".
  Result<size_t> Resolve(const std::string& name) const;

  /// Appends a field; AlreadyExists on duplicate names.
  Status AddField(Field field);

  /// Validates that a row positionally matches this schema; NULL cells are
  /// allowed in any column.
  Status ValidateRow(const Row& row) const;

  /// Schema of `this ++ other`; duplicate names are disambiguated with a
  /// prefix ("<prefix>.<name>") applied to the right side.
  Schema Concat(const Schema& other, const std::string& right_prefix) const;

  /// "name:type, name:type, ..."
  std::string ToString() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_SCHEMA_H_
