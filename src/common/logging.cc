#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace bigdawg {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_log_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " -- ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace bigdawg
