#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/status.h"

namespace bigdawg {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

/// Guards the sink pointer and serializes emission, so a custom sink
/// never sees interleaved lines and swapping sinks mid-traffic is safe.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& SinkSlot() {
  static LogSink sink;  // empty = default stderr sink
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Applies BIGDAWG_LOG once before main() runs; harmless when unset.
const bool g_env_level_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") *level = LogLevel::kDebug;
  else if (lower == "info" || lower == "1") *level = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning" || lower == "2") *level = LogLevel::kWarn;
  else if (lower == "error" || lower == "3") *level = LogLevel::kError;
  else return false;
  return true;
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("BIGDAWG_LOG");
  if (env == nullptr || env[0] == '\0') return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) SetLogLevel(level);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* component, const char* file,
                       int line)
    : enabled_(static_cast<int>(level) >= g_log_level.load()),
      level_(level),
      component_(component) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_);
    if (component_ != nullptr && component_[0] != '\0') {
      stream_ << " " << component_;
    }
    stream_ << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(level_, component_ == nullptr ? "" : component_, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " -- ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace bigdawg
