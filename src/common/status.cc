#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace bigdawg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::TypeError(std::string msg) {
  return Status(StatusCode::kTypeError, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::Aborted(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
Status Status::Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}

const std::string& Status::message() const {
  static const std::string* const kEmpty = new std::string();
  return state_ ? state_->msg : *kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const { Abort(""); }

void Status::Abort(const std::string& context) const {
  if (ok()) return;
  std::fprintf(stderr, "Status::Abort %s%s%s\n", context.c_str(),
               context.empty() ? "" : ": ", ToString().c_str());
  std::abort();
}

}  // namespace bigdawg
