#include "common/columnar.h"

namespace bigdawg::common {

ColumnSlice BuildColumnSlice(const Schema& schema, const std::vector<Row>& rows,
                             size_t idx) {
  ColumnSlice slice;
  slice.name = schema.field(idx).name;
  slice.declared_type = schema.field(idx).type;
  slice.values.reserve(rows.size());
  slice.null_bitmap.assign((rows.size() + 63) / 64, 0);
  for (size_t r = 0; r < rows.size(); ++r) {
    const Value& v = rows[r][idx];
    slice.values.push_back(v);
    if (v.is_null()) {
      slice.null_bitmap[r >> 6] |= uint64_t{1} << (r & 63);
      ++slice.null_count;
    }
    slice.byte_size += ValueByteSize(v);
  }
  return slice;
}

}  // namespace bigdawg::common
