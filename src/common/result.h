#ifndef BIGDAWG_COMMON_RESULT_H_
#define BIGDAWG_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace bigdawg {

/// \brief A value-or-error holder, modeled on arrow::Result.
///
/// Exactly one of {value, error status} is held. Constructing from an OK
/// Status is a programming error and aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : holder_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : holder_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (this->status().ok()) {
      Status::Internal("Result constructed from OK status").Abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(holder_); }

  /// The error status; Status::OK() if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(holder_);
  }

  /// Value accessors; abort if an error is held (check ok() first).
  const T& ValueOrDie() const& {
    EnsureOk();
    return std::get<T>(holder_);
  }
  T& ValueOrDie() & {
    EnsureOk();
    return std::get<T>(holder_);
  }
  T&& ValueOrDie() && {
    EnsureOk();
    return std::move(std::get<T>(holder_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, leaving the Result unspecified.
  T MoveValueUnsafe() { return std::move(std::get<T>(holder_)); }

  /// Returns the value or `alternative` when an error is held.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(holder_) : std::move(alternative);
  }

 private:
  void EnsureOk() const {
    if (!ok()) std::get<Status>(holder_).Abort("Result::ValueOrDie");
  }

  std::variant<T, Status> holder_;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_RESULT_H_
