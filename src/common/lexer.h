#ifndef BIGDAWG_COMMON_LEXER_H_
#define BIGDAWG_COMMON_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace bigdawg {

enum class TokenType : int {
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

/// \brief One lexical token; `text` holds the identifier/literal/symbol
/// spelling (string literals are unquoted and unescaped).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;

  bool IsSymbol(const std::string& s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword test (keywords are plain identifiers).
  bool IsKeyword(const std::string& kw) const;
};

/// \brief Tokenizes a SQL(-ish) string. Comments ("--" to end of line) are
/// skipped. Multi-char symbols recognized: <=, >=, <>, !=, ::.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// \brief Cursor over a token stream with the usual Peek/Consume helpers;
/// shared by the SQL parser and the polystore SCOPE/CAST parser.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t lookahead = 0) const;
  Token Next();
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  /// If the next token is the given keyword/symbol, consume it.
  bool ConsumeKeyword(const std::string& kw);
  bool ConsumeSymbol(const std::string& sym);

  /// Consume-or-error variants.
  Status ExpectKeyword(const std::string& kw);
  Status ExpectSymbol(const std::string& sym);
  Result<std::string> ExpectIdentifier();

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_LEXER_H_
