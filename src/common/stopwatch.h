#ifndef BIGDAWG_COMMON_STOPWATCH_H_
#define BIGDAWG_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace bigdawg {

/// \brief Monotonic wall-clock stopwatch used by benches and the monitor.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_STOPWATCH_H_
