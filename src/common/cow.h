#ifndef BIGDAWG_COMMON_COW_H_
#define BIGDAWG_COMMON_COW_H_

#include <atomic>
#include <memory>
#include <utility>

namespace bigdawg::common {

/// \brief Mixin carried by every copy-on-write representation ("block"):
/// an explicit count of the CowPtr handles that reference it.
///
/// Why not shared_ptr::use_count()? Its load is relaxed, so observing
/// count == 1 does not happen-after the other owner's last read — a
/// mutation decided on it races with that read (and TSan flags it). Here
/// handle destruction decrements with release and the thaw decision loads
/// with acquire, so "I am the only owner" synchronizes with every former
/// owner's final access before any in-place write.
///
/// Copying a rep yields a fresh count of zero: the clone has no handles
/// yet; whoever adopts it registers itself.
struct CowCount {
  mutable std::atomic<long> cow_owners{0};

  CowCount() = default;
  CowCount(const CowCount&) : cow_owners(0) {}
  CowCount& operator=(const CowCount&) { return *this; }
};

/// \brief A handle to an immutable, refcounted representation with
/// copy-on-write mutation.
///
/// Copies and moves are pointer swaps (one atomic bump). `Mutable()` is
/// the only write path: it clones the rep first iff any other handle —
/// or the pinned shared-empty singleton — still references it, so data
/// reachable from two handles is never written through either.
///
/// Default-constructed and moved-from handles reference a static empty
/// rep whose count is pinned above one; they are fully usable (reads see
/// an empty value) and mutating them clones, never corrupts the shared
/// singleton. The rep type must derive from CowCount and be
/// default- and copy-constructible.
template <typename Rep>
class CowPtr {
 public:
  CowPtr() : rep_(EmptyRep()) { Retain(); }
  /// Adopts a freshly built rep (no other handles may exist for it).
  explicit CowPtr(std::shared_ptr<Rep> rep)
      : rep_(rep == nullptr ? EmptyRep() : std::move(rep)) {
    Retain();
  }
  CowPtr(const CowPtr& o) : rep_(o.rep_) { Retain(); }
  CowPtr(CowPtr&& o) noexcept : rep_(std::move(o.rep_)) {
    o.rep_ = EmptyRep();
    o.Retain();
  }
  CowPtr& operator=(const CowPtr& o) {
    if (rep_ != o.rep_) {
      ReleaseRef();
      rep_ = o.rep_;
      Retain();
    }
    return *this;
  }
  CowPtr& operator=(CowPtr&& o) noexcept {
    if (this != &o) {
      ReleaseRef();
      rep_ = std::move(o.rep_);
      o.rep_ = EmptyRep();
      o.Retain();
    }
    return *this;
  }
  ~CowPtr() { ReleaseRef(); }

  const Rep& operator*() const { return *rep_; }
  const Rep* operator->() const { return rep_.get(); }
  const Rep* get() const { return rep_.get(); }

  /// True when both handles reference the same rep (zero-copy aliases).
  bool SharesWith(const CowPtr& o) const { return rep_ == o.rep_; }

  /// True when no other handle references the rep — mutation through
  /// this handle cannot be observed elsewhere.
  bool Unique() const {
    return rep_->cow_owners.load(std::memory_order_acquire) == 1;
  }

  /// The write path: returns a rep this handle exclusively owns, cloning
  /// the current one first when it is shared.
  Rep* Mutable() {
    if (!Unique()) {
      std::shared_ptr<Rep> fresh = std::make_shared<Rep>(*rep_);
      fresh->cow_owners.store(1, std::memory_order_relaxed);
      ReleaseRef();
      rep_ = std::move(fresh);
    }
    return rep_.get();
  }

 private:
  void Retain() { rep_->cow_owners.fetch_add(1, std::memory_order_relaxed); }
  void ReleaseRef() {
    if (rep_ != nullptr) {
      rep_->cow_owners.fetch_sub(1, std::memory_order_release);
    }
  }

  static const std::shared_ptr<Rep>& EmptyRep() {
    // The singleton holds one pinned reference, so any live handle sees
    // a count >= 2 and Mutable() always clones.
    static const std::shared_ptr<Rep>* kEmpty = [] {
      auto rep = std::make_shared<Rep>();
      rep->cow_owners.store(1, std::memory_order_relaxed);
      return new std::shared_ptr<Rep>(std::move(rep));
    }();
    return *kEmpty;
  }

  std::shared_ptr<Rep> rep_;
};

}  // namespace bigdawg::common

#endif  // BIGDAWG_COMMON_COW_H_
