#ifndef BIGDAWG_COMMON_CSV_H_
#define BIGDAWG_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"

namespace bigdawg {

/// \brief Serializes rows to RFC-4180-ish CSV (quotes fields containing
/// comma/quote/newline). This is the *file-based* CAST path the paper says
/// direct binary casts should beat (experiment C4).
std::string RowsToCsv(const Schema& schema, const std::vector<Row>& rows);

/// \brief Parses CSV produced by RowsToCsv back into typed rows.
///
/// The first line must be the header "name:type,..." exactly as written by
/// RowsToCsv; field values are parsed with Value::Parse.
Result<std::pair<Schema, std::vector<Row>>> CsvToRows(const std::string& csv);

/// \brief Splits a single CSV record honoring quotes; ParseError on an
/// unterminated quote.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line);

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_CSV_H_
