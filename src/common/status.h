#ifndef BIGDAWG_COMMON_STATUS_H_
#define BIGDAWG_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace bigdawg {

/// \brief Machine-readable category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kIOError = 6,
  kInternal = 7,
  kFailedPrecondition = 8,
  kTypeError = 9,
  kParseError = 10,
  kAborted = 11,
  kResourceExhausted = 12,
  kDeadlineExceeded = 13,
  kCancelled = 14,
  kUnavailable = 15,
};

/// \brief Returns a stable human-readable name, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation (Arrow/RocksDB idiom).
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. All library APIs that can fail return Status or Result<T>;
/// exceptions are not thrown across library boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status IOError(std::string msg);
  static Status Internal(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status TypeError(std::string msg);
  static Status ParseError(std::string msg);
  static Status Aborted(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status DeadlineExceeded(std::string msg);
  static Status Cancelled(std::string msg);
  /// A transient engine failure: the operation may succeed if retried
  /// (possibly against a replica). The only code the resilient execution
  /// layer retries.
  static Status Unavailable(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process if not OK. For use in tests and examples only.
  void Abort() const;
  void Abort(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK; keeps sizeof(Status) == sizeof(void*).
  std::unique_ptr<State> state_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_STATUS_H_
