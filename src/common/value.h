#ifndef BIGDAWG_COMMON_VALUE_H_
#define BIGDAWG_COMMON_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace bigdawg {

/// \brief Logical column/cell types shared by every engine in the polystore.
enum class DataType : int {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

/// \brief Stable lowercase name ("int64", "double", ...).
const char* DataTypeToString(DataType type);

/// \brief Parses a lowercase type name; error on unknown names.
Result<DataType> DataTypeFromString(const std::string& name);

/// \brief True if the type is kInt64 or kDouble.
bool IsNumeric(DataType type);

/// \brief A dynamically typed cell value.
///
/// This is the lingua franca that rows, array cells, stream tuples, and
/// associative-array entries are expressed in when they cross engine
/// boundaries (e.g. through a CAST).
class Value {
 public:
  /// Constructs a NULL value.
  Value() = default;
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(int v) : data_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// Checked accessors: TypeError when the held type differs.
  Result<bool> AsBool() const;
  Result<int64_t> AsInt64() const;
  Result<double> AsDouble() const;
  Result<std::string> AsString() const;

  /// Unchecked accessors: abort on type mismatch; for hot paths after a
  /// schema check.
  bool bool_unchecked() const { return std::get<bool>(data_); }
  int64_t int64_unchecked() const { return std::get<int64_t>(data_); }
  double double_unchecked() const { return std::get<double>(data_); }
  const std::string& string_unchecked() const { return std::get<std::string>(data_); }

  /// Numeric coercion: int64 and double convert to double; TypeError
  /// otherwise (including NULL).
  Result<double> ToNumeric() const;

  /// Display form: NULL prints as "null", strings print verbatim.
  std::string ToString() const;

  /// Coerces this value to `target`. NULL stays NULL under every target.
  /// Numeric widening/narrowing and string round-trips are supported;
  /// lossy double->int64 truncates toward zero.
  Result<Value> CastTo(DataType target) const;

  /// Parses text into a typed value ("null" and "" parse to NULL except
  /// under kString, where only "null" does).
  static Result<Value> Parse(const std::string& text, DataType type);

  /// Total ordering used by ORDER BY and sorted stores: NULL sorts first;
  /// cross-type numeric compares use double semantics; otherwise compares
  /// by (type, payload). Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric 3 and 3.0 hash alike).
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// \brief A tuple of cell values; rows are positionally matched to a Schema.
using Row = std::vector<Value>;

/// \brief Hash of a full row (order-sensitive), for hash joins/aggregation.
size_t HashRow(const Row& row);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct RowHash {
  size_t operator()(const Row& r) const { return HashRow(r); }
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_VALUE_H_
