#ifndef BIGDAWG_COMMON_BINARY_IO_H_
#define BIGDAWG_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"

namespace bigdawg {

/// \brief Append-only binary encoder used by the direct (non-file) CAST path
/// and by the stream engine's command log.
class BinaryWriter {
 public:
  void PutUint8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutUint32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutInt64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutUint32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  void PutSchema(const Schema& schema);

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// \brief Sequential decoder matching BinaryWriter; every accessor is
/// bounds-checked and returns OutOfRange past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetUint8();
  Result<uint32_t> GetUint32();
  Result<int64_t> GetInt64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<Row> GetRow();
  Result<Schema> GetSchema();

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status GetRaw(void* out, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_BINARY_IO_H_
