#ifndef BIGDAWG_COMMON_VARINT_H_
#define BIGDAWG_COMMON_VARINT_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace bigdawg::common {

/// LEB128-style varints: 7 payload bits per byte, high bit = continue.
/// Small counts and offsets — the overwhelming majority in columnar
/// headers — encode in one byte instead of a fixed eight.

inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Zigzag mapping so small-magnitude negatives stay short:
/// 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void PutVarintSigned(std::string* out, int64_t v) {
  PutVarint64(out, ZigZagEncode(v));
}

/// \brief Bounds-checked varint reader over a byte buffer.
class VarintReader {
 public:
  VarintReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit VarintReader(const std::string& data)
      : VarintReader(data.data(), data.size()) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Result<uint64_t> GetVarint64() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Status::InvalidArgument("truncated varint");
      if (shift >= 64) return Status::InvalidArgument("varint too long");
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Result<int64_t> GetVarintSigned() {
    Result<uint64_t> raw = GetVarint64();
    if (!raw.ok()) return raw.status();
    return ZigZagDecode(*raw);
  }

  Result<uint8_t> GetByte() {
    if (pos_ >= size_) return Status::InvalidArgument("truncated byte");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<const char*> GetBytes(size_t n) {
    if (n > size_ - pos_) return Status::InvalidArgument("truncated bytes");
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace bigdawg::common

#endif  // BIGDAWG_COMMON_VARINT_H_
