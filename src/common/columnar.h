#ifndef BIGDAWG_COMMON_COLUMNAR_H_
#define BIGDAWG_COMMON_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace bigdawg::common {

/// \brief Wire/resident size of one cell: 1 byte per NULL, string length
/// for strings, 8 bytes per scalar. The single formula behind block byte
/// metadata, cast-cache accounting, and CAST trace span sizes.
inline int64_t ValueByteSize(const Value& v) {
  if (v.is_null()) return 1;
  if (v.type() == DataType::kString) {
    return static_cast<int64_t>(v.string_unchecked().size());
  }
  return 8;
}

/// \brief One immutable column of a block: contiguous values plus a null
/// bitmap. Built once per (block, column) and shared by reference — every
/// later read of the same column is a pointer swap, not a copy.
struct ColumnSlice {
  std::string name;
  DataType declared_type = DataType::kNull;
  /// Contiguous per-row values (nulls included, so indices line up with
  /// row numbers).
  std::vector<Value> values;
  /// Bit i set <=> values[i] is null; 64 rows per word.
  std::vector<uint64_t> null_bitmap;
  int64_t null_count = 0;
  /// Sum of ValueByteSize over the column.
  int64_t byte_size = 0;

  bool IsNull(size_t i) const {
    return (null_bitmap[i >> 6] >> (i & 63)) & 1u;
  }
};

/// \brief Builds the slice for column `idx` of row-major storage.
ColumnSlice BuildColumnSlice(const Schema& schema, const std::vector<Row>& rows,
                             size_t idx);

/// \brief A cheap, shared view of one column. Copying a view copies one
/// shared_ptr; the underlying slice lives as long as any view (or the
/// owning block) does, so views stay valid after the source table handle
/// is destroyed or reassigned.
class ColumnView {
 public:
  ColumnView() = default;
  explicit ColumnView(std::shared_ptr<const ColumnSlice> slice)
      : slice_(std::move(slice)) {}

  bool valid() const { return slice_ != nullptr; }
  size_t size() const { return slice_ == nullptr ? 0 : slice_->values.size(); }
  bool empty() const { return size() == 0; }

  const Value& operator[](size_t i) const { return slice_->values[i]; }
  bool IsNull(size_t i) const { return slice_->IsNull(i); }
  int64_t null_count() const { return slice_ == nullptr ? 0 : slice_->null_count; }
  int64_t byte_size() const { return slice_ == nullptr ? 0 : slice_->byte_size; }
  const std::string& name() const { return slice_->name; }
  DataType declared_type() const { return slice_->declared_type; }

  /// Contiguous value storage (for iteration / bulk feeds).
  const std::vector<Value>& values() const {
    static const std::vector<Value> kEmpty;
    return slice_ == nullptr ? kEmpty : slice_->values;
  }
  std::vector<Value>::const_iterator begin() const { return values().begin(); }
  std::vector<Value>::const_iterator end() const { return values().end(); }

  /// Materializing escape hatch for callers that need an owned vector.
  std::vector<Value> ToVector() const { return values(); }

  const std::shared_ptr<const ColumnSlice>& slice() const { return slice_; }

 private:
  std::shared_ptr<const ColumnSlice> slice_;
};

}  // namespace bigdawg::common

#endif  // BIGDAWG_COMMON_COLUMNAR_H_
