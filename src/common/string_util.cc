#include "common/string_util.h"

#include <cctype>

namespace bigdawg {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

size_t CountOccurrences(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  size_t count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

}  // namespace bigdawg
