#ifndef BIGDAWG_COMMON_THREAD_POOL_H_
#define BIGDAWG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bigdawg {

/// \brief A fixed-size worker pool used by the polystore executor to run
/// per-engine subqueries concurrently.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_THREAD_POOL_H_
