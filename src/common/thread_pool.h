#ifndef BIGDAWG_COMMON_THREAD_POOL_H_
#define BIGDAWG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace bigdawg {

/// \brief A fixed-size worker pool used by the polystore executor to run
/// per-engine subqueries concurrently.
///
/// Task contract: tasks must not throw. The polystore reports failures
/// through Status/Result, never exceptions; a task that does throw is a
/// programming error, and the worker aborts the process with a clear
/// message rather than corrupting state via undefined behavior.
/// (SubmitWithResult is the exception-safe variant: std::packaged_task
/// captures a throw into the returned future.)
class ThreadPool {
 public:
  /// `max_queue` bounds the number of *queued* (not yet running) tasks
  /// TrySubmit will accept; 0 means unbounded.
  explicit ThreadPool(size_t num_threads, size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task unconditionally; tasks must not throw.
  void Submit(std::function<void()> task);

  /// Bounded-queue variant: enqueues the task unless the pending queue is
  /// at `max_queue()` (or the pool is stopping). Returns false on reject —
  /// the caller keeps ownership of the work and degrades gracefully
  /// instead of growing the queue without bound.
  bool TrySubmit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result. Exceptions
  /// thrown by `fn` are captured into the future (std::packaged_task),
  /// so this variant is exempt from the no-throw contract.
  template <typename F>
  auto SubmitWithResult(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Submit([task] { (*task)(); });
    return result;
  }

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }
  size_t max_queue() const { return max_queue_; }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t max_queue_ = 0;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace bigdawg

#endif  // BIGDAWG_COMMON_THREAD_POOL_H_
