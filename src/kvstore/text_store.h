#ifndef BIGDAWG_KVSTORE_TEXT_STORE_H_
#define BIGDAWG_KVSTORE_TEXT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "kvstore/kvstore.h"

namespace bigdawg::kvstore {

/// \brief A document match returned by text search.
struct DocMatch {
  std::string doc_id;
  std::string owner;   // e.g. patient id the note belongs to
  int64_t score = 0;   // occurrence count of the query in the document
};

/// \brief Tokenizes text into lowercase alphanumeric terms.
std::vector<std::string> TokenizeText(const std::string& text);

/// \brief Free-text documents stored in the key-value engine using the
/// Accumulo/D4M indexing idiom.
///
/// Key layout inside the backing KvStore:
///   (doc:<id>,  "meta", "owner")          -> owner id
///   (doc:<id>,  "doc",  "text")           -> raw document text
///   (term:<t>,  "idx",  <doc id>)         -> term frequency (decimal string)
///
/// Searches run tablet-side via ApplyToRange — a term lookup is one sorted
/// range scan over "term:<t>" rows.
class TextStore {
 public:
  TextStore() = default;

  TextStore(const TextStore&) = delete;
  TextStore& operator=(const TextStore&) = delete;

  /// Adds (or replaces) a document and indexes its terms.
  Status AddDocument(const std::string& doc_id, const std::string& owner,
                     const std::string& text);

  Result<std::string> GetText(const std::string& doc_id) const;
  Result<std::string> GetOwner(const std::string& doc_id) const;

  /// Documents containing every term (AND semantics). Score = sum of term
  /// frequencies.
  std::vector<DocMatch> SearchAllTerms(const std::vector<std::string>& terms) const;

  /// Documents whose raw text contains `phrase` (exact substring,
  /// case-insensitive). Score = number of occurrences. Implemented as a
  /// candidate term scan (first phrase token) + verification read, the
  /// speculative-then-validate pattern.
  std::vector<DocMatch> SearchPhrase(const std::string& phrase) const;

  /// Owners with at least `min_docs` documents matching the phrase — the
  /// demo query shape: "patients with >= 3 notes saying 'very sick'".
  std::vector<std::pair<std::string, int64_t>> OwnersWithPhraseCount(
      const std::string& phrase, int64_t min_docs) const;

  /// All document ids, in sorted order.
  std::vector<std::string> ListDocumentIds() const;

  size_t num_documents() const { return num_docs_; }
  const KvStore& backing_store() const { return store_; }

 private:
  KvStore store_;
  size_t num_docs_ = 0;
};

}  // namespace bigdawg::kvstore

#endif  // BIGDAWG_KVSTORE_TEXT_STORE_H_
