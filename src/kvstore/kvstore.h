#ifndef BIGDAWG_KVSTORE_KVSTORE_H_
#define BIGDAWG_KVSTORE_KVSTORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace bigdawg::kvstore {

/// \brief An Accumulo-style key: (row, column family, column qualifier),
/// ordered lexicographically by each component in turn.
struct Key {
  std::string row;
  std::string family;
  std::string qualifier;

  Key() = default;
  Key(std::string row_in, std::string family_in, std::string qualifier_in)
      : row(std::move(row_in)),
        family(std::move(family_in)),
        qualifier(std::move(qualifier_in)) {}

  bool operator<(const Key& other) const {
    if (row != other.row) return row < other.row;
    if (family != other.family) return family < other.family;
    return qualifier < other.qualifier;
  }
  bool operator==(const Key& other) const {
    return row == other.row && family == other.family &&
           qualifier == other.qualifier;
  }

  std::string ToString() const { return row + ":" + family + ":" + qualifier; }
};

/// \brief One key/value entry returned by scans.
struct Cell {
  Key key;
  std::string value;
};

/// \brief Range + column restrictions for a scan. Empty strings mean
/// "unbounded" / "no filter".
struct ScanOptions {
  std::string start_row;        // inclusive; "" = from the beginning
  std::string end_row;          // inclusive; "" = to the end
  std::string family;           // exact family filter
  std::string qualifier_prefix; // qualifier must start with this
  size_t limit = 0;             // 0 = unlimited
};

/// \brief A sorted key-value store (the Accumulo stand-in).
///
/// The store keeps cells in a single ordered map (the "tablet"). Mutations
/// are last-writer-wins. Server-side iterator logic is modeled by
/// ScanOptions filtering plus the ApplyToRange callback, which runs under
/// the read lock like an Accumulo iterator stack would run tablet-side.
class KvStore {
 public:
  KvStore() = default;

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  void Put(Key key, std::string value);
  void PutBatch(std::vector<Cell> cells);

  Result<std::string> Get(const Key& key) const;
  bool Contains(const Key& key) const;

  /// Removes one cell; NotFound if absent.
  Status Delete(const Key& key);
  /// Removes every cell of a row; returns the number removed.
  size_t DeleteRow(const std::string& row);

  /// Materializing scan.
  std::vector<Cell> Scan(const ScanOptions& options) const;

  /// Streaming scan ("server-side iterator"): the callback sees each
  /// matching cell in key order and returns false to stop.
  void ApplyToRange(const ScanOptions& options,
                    const std::function<bool(const Cell&)>& fn) const;

  /// Distinct rows intersecting the options.
  std::vector<std::string> ScanRows(const ScanOptions& options) const;

  size_t size() const;

 private:
  static bool Matches(const Key& key, const ScanOptions& options);

  mutable std::shared_mutex mu_;
  std::map<Key, std::string> cells_;
};

}  // namespace bigdawg::kvstore

#endif  // BIGDAWG_KVSTORE_KVSTORE_H_
