#include "kvstore/text_store.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "common/macros.h"
#include "common/string_util.h"

namespace bigdawg::kvstore {

namespace {
constexpr char kDocPrefix[] = "doc:";
constexpr char kTermPrefix[] = "term:";
}  // namespace

std::vector<std::string> TokenizeText(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

Status TextStore::AddDocument(const std::string& doc_id, const std::string& owner,
                              const std::string& text) {
  if (doc_id.empty()) return Status::InvalidArgument("empty document id");
  const std::string doc_row = kDocPrefix + doc_id;
  const bool replacing = store_.Contains(Key(doc_row, "doc", "text"));
  if (replacing) {
    // Drop old term postings before re-indexing.
    Result<std::string> old_text = store_.Get(Key(doc_row, "doc", "text"));
    if (old_text.ok()) {
      for (const std::string& term : TokenizeText(*old_text)) {
        // Idempotent: repeated terms delete the same posting.
        (void)store_.Delete(Key(kTermPrefix + term, "idx", doc_id));
      }
    }
  }

  std::vector<Cell> batch;
  batch.push_back({Key(doc_row, "meta", "owner"), owner});
  batch.push_back({Key(doc_row, "doc", "text"), text});

  std::map<std::string, int64_t> freq;
  for (const std::string& term : TokenizeText(text)) ++freq[term];
  for (const auto& [term, count] : freq) {
    batch.push_back({Key(kTermPrefix + term, "idx", doc_id), std::to_string(count)});
  }
  store_.PutBatch(std::move(batch));
  if (!replacing) ++num_docs_;
  return Status::OK();
}

Result<std::string> TextStore::GetText(const std::string& doc_id) const {
  return store_.Get(Key(kDocPrefix + doc_id, "doc", "text"));
}

Result<std::string> TextStore::GetOwner(const std::string& doc_id) const {
  return store_.Get(Key(kDocPrefix + doc_id, "meta", "owner"));
}

std::vector<std::string> TextStore::ListDocumentIds() const {
  std::vector<std::string> out;
  ScanOptions options;
  options.family = "doc";
  store_.ApplyToRange(options, [&out](const Cell& cell) {
    // Rows are "doc:<id>".
    out.push_back(cell.key.row.substr(sizeof(kDocPrefix) - 1));
    return true;
  });
  return out;
}

std::vector<DocMatch> TextStore::SearchAllTerms(
    const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};
  // Gather postings for each term; intersect.
  std::map<std::string, int64_t> intersection;  // doc -> summed tf
  bool first = true;
  for (const std::string& raw_term : terms) {
    std::string term = ToLower(raw_term);
    std::map<std::string, int64_t> postings;
    ScanOptions options;
    options.start_row = kTermPrefix + term;
    options.end_row = options.start_row;
    options.family = "idx";
    store_.ApplyToRange(options, [&postings](const Cell& cell) {
      postings[cell.key.qualifier] = std::strtoll(cell.value.c_str(), nullptr, 10);
      return true;
    });
    if (first) {
      intersection = std::move(postings);
      first = false;
    } else {
      std::map<std::string, int64_t> merged;
      for (const auto& [doc, tf] : intersection) {
        auto it = postings.find(doc);
        if (it != postings.end()) merged[doc] = tf + it->second;
      }
      intersection = std::move(merged);
    }
    if (intersection.empty()) return {};
  }
  std::vector<DocMatch> out;
  out.reserve(intersection.size());
  for (const auto& [doc, score] : intersection) {
    DocMatch m;
    m.doc_id = doc;
    m.score = score;
    Result<std::string> owner = GetOwner(doc);
    if (owner.ok()) m.owner = *owner;
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(), [](const DocMatch& a, const DocMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  return out;
}

std::vector<DocMatch> TextStore::SearchPhrase(const std::string& phrase) const {
  std::vector<std::string> tokens = TokenizeText(phrase);
  if (tokens.empty()) return {};
  // Speculate: candidate docs are those containing all tokens (via index);
  // validate: read the raw text and count exact phrase occurrences.
  std::vector<DocMatch> candidates = SearchAllTerms(tokens);
  const std::string needle = ToLower(phrase);
  std::vector<DocMatch> out;
  for (DocMatch& m : candidates) {
    Result<std::string> text = GetText(m.doc_id);
    if (!text.ok()) continue;
    size_t occurrences = CountOccurrences(ToLower(*text), needle);
    if (occurrences > 0) {
      m.score = static_cast<int64_t>(occurrences);
      out.push_back(std::move(m));
    }
  }
  std::sort(out.begin(), out.end(), [](const DocMatch& a, const DocMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  return out;
}

std::vector<std::pair<std::string, int64_t>> TextStore::OwnersWithPhraseCount(
    const std::string& phrase, int64_t min_docs) const {
  std::map<std::string, int64_t> owner_docs;
  for (const DocMatch& m : SearchPhrase(phrase)) {
    ++owner_docs[m.owner];
  }
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [owner, count] : owner_docs) {
    if (count >= min_docs) out.emplace_back(owner, count);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace bigdawg::kvstore
