#include "kvstore/kvstore.h"

#include <mutex>

#include "common/string_util.h"

namespace bigdawg::kvstore {

void KvStore::Put(Key key, std::string value) {
  std::unique_lock lock(mu_);
  cells_.insert_or_assign(std::move(key), std::move(value));
}

void KvStore::PutBatch(std::vector<Cell> cells) {
  std::unique_lock lock(mu_);
  for (Cell& c : cells) {
    cells_.insert_or_assign(std::move(c.key), std::move(c.value));
  }
}

Result<std::string> KvStore::Get(const Key& key) const {
  std::shared_lock lock(mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) return Status::NotFound("no cell: " + key.ToString());
  return it->second;
}

bool KvStore::Contains(const Key& key) const {
  std::shared_lock lock(mu_);
  return cells_.count(key) > 0;
}

Status KvStore::Delete(const Key& key) {
  std::unique_lock lock(mu_);
  if (cells_.erase(key) == 0) {
    return Status::NotFound("no cell: " + key.ToString());
  }
  return Status::OK();
}

size_t KvStore::DeleteRow(const std::string& row) {
  std::unique_lock lock(mu_);
  auto begin = cells_.lower_bound(Key(row, "", ""));
  auto it = begin;
  size_t removed = 0;
  while (it != cells_.end() && it->first.row == row) {
    it = cells_.erase(it);
    ++removed;
  }
  return removed;
}

bool KvStore::Matches(const Key& key, const ScanOptions& options) {
  if (!options.family.empty() && key.family != options.family) return false;
  if (!options.qualifier_prefix.empty() &&
      !StartsWith(key.qualifier, options.qualifier_prefix)) {
    return false;
  }
  return true;
}

void KvStore::ApplyToRange(const ScanOptions& options,
                           const std::function<bool(const Cell&)>& fn) const {
  std::shared_lock lock(mu_);
  auto it = options.start_row.empty()
                ? cells_.begin()
                : cells_.lower_bound(Key(options.start_row, "", ""));
  size_t emitted = 0;
  for (; it != cells_.end(); ++it) {
    if (!options.end_row.empty() && it->first.row > options.end_row) break;
    if (!Matches(it->first, options)) continue;
    Cell cell{it->first, it->second};
    if (!fn(cell)) return;
    if (options.limit != 0 && ++emitted >= options.limit) return;
  }
}

std::vector<Cell> KvStore::Scan(const ScanOptions& options) const {
  std::vector<Cell> out;
  ApplyToRange(options, [&out](const Cell& cell) {
    out.push_back(cell);
    return true;
  });
  return out;
}

std::vector<std::string> KvStore::ScanRows(const ScanOptions& options) const {
  std::vector<std::string> rows;
  ApplyToRange(options, [&rows](const Cell& cell) {
    if (rows.empty() || rows.back() != cell.key.row) rows.push_back(cell.key.row);
    return true;
  });
  return rows;
}

size_t KvStore::size() const {
  std::shared_lock lock(mu_);
  return cells_.size();
}

}  // namespace bigdawg::kvstore
