#include "mimic/mimic.h"

#include <cmath>

#include "common/macros.h"

namespace bigdawg::mimic {

namespace {

constexpr double kPi = 3.14159265358979323846;

const char* kRaces[] = {"white", "black", "asian", "hispanic"};
const char* kSexes[] = {"F", "M"};
const char* kDiagnoses[] = {"sepsis", "cardiac", "trauma", "respiratory",
                            "renal"};
const char* kDrugs[] = {"heparin", "aspirin", "statin", "insulin",
                        "vancomycin", "furosemide"};
const char* kLabTests[] = {"lactate", "creatinine", "hemoglobin", "wbc"};

const char* kFirstNames[] = {"alex", "blake", "casey", "drew",  "eli",
                             "fran", "gray",  "harper", "indy", "jo"};
const char* kLastNames[] = {"adams", "baker", "chen", "diaz", "evans",
                            "fox",   "garcia", "hall", "ito",  "jones"};

// Global race effect on stay length (black > white) and the sepsis-only
// reversal (white > black), the Figure 2 pattern.
double BaseStayDays(const std::string& race, const std::string& diagnosis,
                    int64_t severity, Rng* rng) {
  double base;
  if (race == "white") base = 4.0;
  else if (race == "black") base = 7.0;
  else if (race == "asian") base = 5.5;
  else base = 6.0;
  if (diagnosis == "sepsis") {
    // Reversal: white sepsis admissions run long, black ones short.
    if (race == "white") base = 10.0;
    else if (race == "black") base = 4.5;
  }
  // Sicker admissions stay longer (gives the regression demo signal).
  base += static_cast<double>(severity - 1) * 0.9;
  return std::max(1.0, base + rng->NextGaussian() * 0.8);
}

std::string NoteText(int64_t severity, const std::string& drug, Rng* rng) {
  std::string text;
  if (severity >= 3) {
    text += "Patient remains very sick. ";
    if (rng->NextBool(0.5)) text += "Condition critical, very sick overnight. ";
  } else if (severity == 2) {
    text += "Patient stable but fatigued. ";
  } else {
    text += "Patient recovering well. ";
  }
  text += "Administered " + drug + ". ";
  if (rng->NextBool(0.3)) text += "Monitor heart rhythm closely. ";
  if (rng->NextBool(0.2)) text += "Family updated on status. ";
  return text;
}

}  // namespace

std::vector<double> SynthesizeEcg(double hr_bpm, int64_t samples, double hz,
                                  bool arrhythmia, Rng* rng) {
  std::vector<double> wave(static_cast<size_t>(samples));
  const double beat_hz = hr_bpm / 60.0;
  double phase = 0;
  double rate = beat_hz;
  for (int64_t i = 0; i < samples; ++i) {
    if (arrhythmia && rng->NextBool(0.01)) {
      // Beat-interval jitter: sudden rate excursions.
      rate = beat_hz * rng->NextDouble(1.2, 1.8);
    } else if (arrhythmia && rng->NextBool(0.02)) {
      rate = beat_hz;
    }
    phase += 2 * kPi * rate / hz;
    // Fundamental + sharper harmonics approximate the QRS spike.
    double v = std::sin(phase) + 0.5 * std::sin(2 * phase) +
               0.25 * std::sin(3 * phase);
    v += rng->NextGaussian() * 0.05;
    wave[static_cast<size_t>(i)] = v;
  }
  return wave;
}

Result<MimicData> Generate(const MimicConfig& config) {
  if (config.num_patients <= 0) {
    return Status::InvalidArgument("num_patients must be > 0");
  }
  if (config.waveform_hz <= 0 || config.waveform_seconds <= 0) {
    return Status::InvalidArgument("waveform shape must be positive");
  }
  Rng rng(config.seed);
  MimicData data;

  data.patients = relational::Table{Schema(
      {Field("patient_id", DataType::kInt64), Field("name", DataType::kString),
       Field("age", DataType::kInt64), Field("sex", DataType::kString),
       Field("race", DataType::kString), Field("resting_hr", DataType::kDouble)})};
  data.admissions = relational::Table{Schema(
      {Field("admit_id", DataType::kInt64), Field("patient_id", DataType::kInt64),
       Field("diagnosis", DataType::kString), Field("severity", DataType::kInt64),
       Field("stay_days", DataType::kDouble), Field("race", DataType::kString)})};
  data.labs = relational::Table{Schema(
      {Field("lab_id", DataType::kInt64), Field("patient_id", DataType::kInt64),
       Field("test", DataType::kString), Field("value", DataType::kDouble)})};
  data.prescriptions = relational::Table{Schema(
      {Field("rx_id", DataType::kInt64), Field("patient_id", DataType::kInt64),
       Field("drug", DataType::kString), Field("dose", DataType::kDouble)})};

  const int64_t samples = config.waveform_seconds * config.waveform_hz;
  BIGDAWG_ASSIGN_OR_RETURN(
      data.waveforms,
      array::Array::Create(
          {array::Dimension("patient_id", 0, config.num_patients, 1),
           array::Dimension("t", 0, samples, std::min<int64_t>(samples, 1024))},
          {"mv"}));

  int64_t admit_id = 0, lab_id = 0, rx_id = 0;
  int64_t note_counter = 0;
  for (int64_t p = 0; p < config.num_patients; ++p) {
    const std::string race = kRaces[rng.NextBelow(4)];
    const std::string sex = kSexes[rng.NextBelow(2)];
    const std::string name = std::string(kFirstNames[rng.NextBelow(10)]) + " " +
                             kLastNames[rng.NextBelow(10)];
    const int64_t age = rng.NextInt(18, 95);
    const bool arrhythmia = rng.NextBool(config.arrhythmia_fraction);
    const double resting_hr =
        arrhythmia ? rng.NextDouble(95, 140) : rng.NextDouble(55, 90);
    data.has_arrhythmia.push_back(arrhythmia);
    data.resting_hr.push_back(resting_hr);
    BIGDAWG_RETURN_NOT_OK(data.patients.Append(
        {Value(p), Value(name), Value(age), Value(sex), Value(race),
         Value(resting_hr)}));

    // Admissions: 1-3 per patient.
    const int64_t admits = rng.NextInt(1, 3);
    int64_t max_severity = 1;
    for (int64_t a = 0; a < admits; ++a) {
      const std::string diagnosis = kDiagnoses[rng.NextBelow(5)];
      const int64_t severity = rng.NextInt(1, 4);
      max_severity = std::max(max_severity, severity);
      const double stay = BaseStayDays(race, diagnosis, severity, &rng);
      BIGDAWG_RETURN_NOT_OK(data.admissions.Append(
          {Value(admit_id++), Value(p), Value(diagnosis), Value(severity),
           Value(stay), Value(race)}));
    }

    // Labs.
    for (int64_t l = 0; l < config.labs_per_patient; ++l) {
      const std::string test = kLabTests[rng.NextBelow(4)];
      BIGDAWG_RETURN_NOT_OK(data.labs.Append(
          {Value(lab_id++), Value(p), Value(test),
           Value(rng.NextDouble(0.5, 12.0))}));
    }

    // Prescriptions: sicker patients more often get heparin.
    const int64_t rx_count = rng.NextInt(1, 3);
    std::string last_drug = "aspirin";
    for (int64_t r = 0; r < rx_count; ++r) {
      std::string drug = (max_severity >= 3 && rng.NextBool(0.6))
                             ? "heparin"
                             : kDrugs[rng.NextBelow(6)];
      last_drug = drug;
      BIGDAWG_RETURN_NOT_OK(data.prescriptions.Append(
          {Value(rx_id++), Value(p), Value(drug), Value(rng.NextDouble(0.5, 10.0))}));
    }

    // Notes.
    for (int64_t n = 0; n < config.notes_per_patient; ++n) {
      Note note;
      note.note_id = "note_" + std::to_string(note_counter++);
      note.patient_id = std::to_string(p);
      note.text = NoteText(max_severity, last_drug, &rng);
      data.notes.push_back(std::move(note));
    }

    // Waveform.
    std::vector<double> ecg = SynthesizeEcg(resting_hr, samples,
                                            static_cast<double>(config.waveform_hz),
                                            arrhythmia, &rng);
    for (int64_t t = 0; t < samples; ++t) {
      BIGDAWG_RETURN_NOT_OK(
          data.waveforms.Set({p, t}, {ecg[static_cast<size_t>(t)]}));
    }
  }
  return data;
}

Status LoadIntoBigDawg(const MimicData& data, core::BigDawg* dawg) {
  // Postgres: metadata + semi-structured tables.
  BIGDAWG_RETURN_NOT_OK(dawg->postgres().PutTable("patients", data.patients));
  BIGDAWG_RETURN_NOT_OK(dawg->postgres().PutTable("admissions", data.admissions));
  BIGDAWG_RETURN_NOT_OK(dawg->postgres().PutTable("labs", data.labs));
  BIGDAWG_RETURN_NOT_OK(
      dawg->postgres().PutTable("prescriptions", data.prescriptions));
  BIGDAWG_RETURN_NOT_OK(
      dawg->RegisterObject("patients", core::kEnginePostgres, "patients"));
  BIGDAWG_RETURN_NOT_OK(
      dawg->RegisterObject("admissions", core::kEnginePostgres, "admissions"));
  BIGDAWG_RETURN_NOT_OK(dawg->RegisterObject("labs", core::kEnginePostgres, "labs"));
  BIGDAWG_RETURN_NOT_OK(
      dawg->RegisterObject("prescriptions", core::kEnginePostgres, "prescriptions"));

  // SciDB: historical waveforms.
  BIGDAWG_RETURN_NOT_OK(dawg->scidb().PutArray("waveforms", data.waveforms));
  BIGDAWG_RETURN_NOT_OK(
      dawg->RegisterObject("waveforms", core::kEngineSciDb, "waveforms"));

  // Accumulo: notes.
  for (const Note& note : data.notes) {
    BIGDAWG_RETURN_NOT_OK(
        dawg->accumulo().AddDocument(note.note_id, note.patient_id, note.text));
  }
  BIGDAWG_RETURN_NOT_OK(dawg->RegisterObject("notes", core::kEngineAccumulo, "notes"));

  // S-Store: the live vitals stream (fed by the monitoring workflow).
  BIGDAWG_RETURN_NOT_OK(dawg->sstore().CreateStream(
      "vitals", Schema({Field("patient_id", DataType::kInt64),
                        Field("t", DataType::kInt64),
                        Field("mv", DataType::kDouble)}),
      /*retention=*/512));
  BIGDAWG_RETURN_NOT_OK(dawg->RegisterObject("vitals", core::kEngineSStore, "vitals"));
  return Status::OK();
}

}  // namespace bigdawg::mimic
