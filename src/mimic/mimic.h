#ifndef BIGDAWG_MIMIC_MIMIC_H_
#define BIGDAWG_MIMIC_MIMIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/array.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/bigdawg.h"
#include "relational/table.h"

namespace bigdawg::mimic {

/// \brief Generator parameters. Defaults produce a laptop-scale dataset
/// with the same modalities and rates as MIMIC II (waveforms at up to
/// 125 Hz, metadata, notes, labs, prescriptions).
struct MimicConfig {
  int64_t num_patients = 200;
  int64_t waveform_seconds = 8;
  int64_t waveform_hz = 125;
  int64_t notes_per_patient = 3;
  int64_t labs_per_patient = 4;
  double arrhythmia_fraction = 0.1;  // patients with abnormal rhythms
  uint64_t seed = 2015;
};

/// \brief One generated clinical note.
struct Note {
  std::string note_id;
  std::string patient_id;  // owner
  std::string text;
};

/// \brief The full synthetic MIMIC II dataset.
///
/// The admissions table embeds the Figure 2 signal: globally, 'black'
/// patients stay longer than 'white' patients, but within the sepsis
/// subpopulation the trend REVERSES — the deviation SeeDB should surface.
struct MimicData {
  relational::Table patients;      // patient_id, name, age, sex, race, resting_hr
  relational::Table admissions;    // admit_id, patient_id, diagnosis, severity,
                                   // stay_days, race (denormalized for SeeDB)
  relational::Table labs;          // lab_id, patient_id, test, value
  relational::Table prescriptions; // rx_id, patient_id, drug, dose
  std::vector<Note> notes;
  array::Array waveforms;          // dims (patient_id, t), attribute "mv"
  std::vector<bool> has_arrhythmia;  // per patient
  std::vector<double> resting_hr;    // per patient, bpm
};

/// \brief Generates the dataset deterministically from config.seed.
Result<MimicData> Generate(const MimicConfig& config);

/// \brief Synthesizes an ECG-like waveform: fundamental at the heart rate
/// plus harmonics and noise; arrhythmic signals carry beat-interval
/// jitter and an elevated rate.
std::vector<double> SynthesizeEcg(double hr_bpm, int64_t samples, double hz,
                                  bool arrhythmia, Rng* rng);

/// \brief Partitions the dataset across the polystore the way the demo
/// does (§3): metadata/labs/prescriptions -> Postgres, historical
/// waveforms -> SciDB, notes -> Accumulo; registers every object in the
/// catalog. Also declares the live "vitals" stream (S-Store) for the
/// monitoring workflow.
Status LoadIntoBigDawg(const MimicData& data, core::BigDawg* dawg);

}  // namespace bigdawg::mimic

#endif  // BIGDAWG_MIMIC_MIMIC_H_
